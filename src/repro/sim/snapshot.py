"""Engine snapshots: versioned capture/restore of live simulation state.

Everything else in the reproduction is picklable by construction —
trials, scenarios, faults, metrics — and this module closes the last
gap: a *running* simulation.  A :class:`Snapshot` captures the full
engine object graph in one pickle: routers (connection state, boundary
captures, random streams), channels (in-flight pipeline words, BCB
sidebands, installed fault transforms), endpoints (retry/backoff
state, queued messages, attached traffic sources mid-RNG-sequence),
fault-injector schedules, transient-fault duty cycles, FaultManager
suspicion/cooldown state and telemetry registries.  Because the whole
graph rides one pickle, shared identity is preserved: a message
sitting in both an endpoint queue and the network log restores as one
object, and bound-method hooks (the injector's pre-cycle hook, the
manager's failure listener) reconnect to their restored owners.

Restoring is *proven* transparent, not assumed: the
:mod:`repro.verify.resume_diff` harness requires that running N
cycles equals running N/2, snapshotting, restoring and running the
remaining N/2 — byte-identical message logs, latencies, retry counts
and metrics — across the same workload families the backend
equivalence proof covers, on all three engine backends and across
backend-switching restores.

Snapshots are **backend-portable**: engine-installed acceleration
state (activity maps, hot-channel sets, staging hooks, the vector
backend's structure-of-arrays mirror) is shed at capture and rebuilt
by the restoring backend's prepare pass at the first post-restore
run, so a snapshot taken under the dense reference engine restores
under the event-driven or vectorized one and vice versa
(``restore_engine(snap, backend="vector")``).

Snapshots are **versioned**: :data:`SNAPSHOT_FORMAT_VERSION` is
stamped into every capture and checked *before* any unpickling on
load, so schema drift fails loudly with :class:`SnapshotFormatError`
instead of silently corrupting a resumed run (the golden-fixture test
pins this gate).  Bump the version whenever the captured object
graph's shape changes incompatibly — renamed attributes, changed
pipeline encodings, new mandatory state (see ``docs/checkpointing.md``
for the policy).
"""

import hashlib
import pickle
import struct
from collections import namedtuple

#: Bump on any incompatible change to the captured object graph (and
#: regenerate ``tests/fixtures/golden_snapshot.bin``).
SNAPSHOT_FORMAT_VERSION = 1

#: File magic for saved snapshots.
MAGIC = b"METROSNAP\x00"

_HEADER = struct.Struct(">I")


class SnapshotFormatError(RuntimeError):
    """A saved snapshot cannot be used: bad magic or version mismatch."""


#: Outcome of :func:`restore`: the rebuilt engine, the rebuilt network
#: (None for engine-level snapshots) and whatever extras were captured.
Restored = namedtuple("Restored", ["kind", "engine", "network", "extras"])


class Snapshot:
    """One captured simulation state.

    :param backend: engine backend name at capture time (``"reference"``
        or ``"events"``); restore may target a different one.
    :param cycle: engine cycle at capture time.
    :param blob: the pickled object graph.
    :param meta: optional plain-data dict of caller metadata (workload
        parameters, soak progress); round-trips through save/load.
    """

    def __init__(self, backend, cycle, blob, meta=None, version=None):
        self.version = SNAPSHOT_FORMAT_VERSION if version is None else version
        self.backend = backend
        self.cycle = cycle
        self.blob = blob
        self.meta = dict(meta or {})

    @property
    def content_hash(self):
        """SHA-256 over the format version and captured graph."""
        digest = hashlib.sha256()
        digest.update(str(self.version).encode("ascii"))
        digest.update(self.blob)
        return digest.hexdigest()

    def cache_token(self):
        """Stable cache identity for trial-cache keys.

        A :class:`~repro.harness.parallel.TrialSpec` parameter with a
        ``cache_token`` method stays cacheable: two specs warm-started
        from snapshots with equal content hash exactly when their
        tokens match (see :func:`repro.harness.parallel._canonicalize`).
        """
        return "snapshot:sha256:" + self.content_hash

    def __repr__(self):
        return "<Snapshot v{} backend={} cycle={} {} bytes>".format(
            self.version, self.backend, self.cycle, len(self.blob)
        )

    # -- persistence ----------------------------------------------------

    def save(self, path):
        """Write ``MAGIC | version | envelope`` to ``path``."""
        envelope = pickle.dumps(
            {
                "backend": self.backend,
                "cycle": self.cycle,
                "meta": self.meta,
                "blob": self.blob,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        with open(path, "wb") as handle:
            handle.write(MAGIC)
            handle.write(_HEADER.pack(self.version))
            handle.write(envelope)
        return path

    @classmethod
    def load(cls, path):
        """Read a snapshot; the format gate runs before any unpickling.

        :raises SnapshotFormatError: not a snapshot file, or written by
            an incompatible format version.
        """
        with open(path, "rb") as handle:
            data = handle.read()
        if not data.startswith(MAGIC):
            raise SnapshotFormatError(
                "{}: not a METRO snapshot (bad magic)".format(path)
            )
        offset = len(MAGIC)
        if len(data) < offset + _HEADER.size:
            raise SnapshotFormatError("{}: truncated snapshot header".format(path))
        (version,) = _HEADER.unpack_from(data, offset)
        if version != SNAPSHOT_FORMAT_VERSION:
            raise SnapshotFormatError(
                "{}: snapshot format v{} is incompatible with this build "
                "(expected v{}); resuming from it would corrupt state — "
                "restart the run or use a matching build".format(
                    path, version, SNAPSHOT_FORMAT_VERSION
                )
            )
        envelope = pickle.loads(data[offset + _HEADER.size:])
        return cls(
            backend=envelope["backend"],
            cycle=envelope["cycle"],
            blob=envelope["blob"],
            meta=envelope["meta"],
            version=version,
        )


# ---------------------------------------------------------------------------
# Capture
# ---------------------------------------------------------------------------


def _backend_name(engine):
    from repro.sim.backends import BACKENDS

    for name, cls in BACKENDS.items():
        if type(engine) is cls:
            return name
    return type(engine).__name__


def _capture(kind, root, engine, extras, meta):
    blob = pickle.dumps(
        {"kind": kind, "root": root, "extras": extras},
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    return Snapshot(
        backend=_backend_name(engine),
        cycle=engine.cycle,
        blob=blob,
        meta=meta,
    )


def snapshot_engine(engine, extras=None, meta=None):
    """Capture a bare engine (and everything registered with it).

    ``extras`` may be any picklable value whose identity should be
    preserved *within* the captured graph (a fault injector, a traffic
    source, a message list); it comes back from :func:`restore` wired
    to the restored objects.  The live engine is not perturbed.
    """
    return _capture("engine", engine, engine, extras, meta)


def snapshot_network(network, extras=None, meta=None):
    """Capture a full :class:`~repro.network.builder.MetroNetwork`.

    The network's engine, routers, endpoints, channels, message log
    and telemetry ride along (they are one object graph).
    """
    return _capture("network", network, network.engine, extras, meta)


# ---------------------------------------------------------------------------
# Restore
# ---------------------------------------------------------------------------

#: Engine attributes that carry simulation state (as opposed to
#: backend-private acceleration state) and survive a backend transmute.
_CORE_ATTRS = (
    "cycle",
    "components",
    "observers",
    "channels",
    "deadline",
    "_pre_cycle_hooks",
    "_stop_requested",
)


def _transmute(engine, backend):
    """Swap ``engine`` to the ``backend`` class *in place*.

    In place matters: every restored component, network and hook holds
    references to this engine object, so replacing its class and
    backend-private state (rather than building a new engine) keeps the
    whole graph consistent.  Core simulation state is preserved
    verbatim; backend-private state starts fresh, exactly as it does
    after unpickling, and is rebuilt by the next run's prepare pass.
    """
    from repro.sim.backends import BACKENDS

    try:
        cls = BACKENDS[backend]
    except KeyError:
        raise ValueError(
            "unknown engine backend {!r} (choices: {})".format(
                backend, ", ".join(sorted(BACKENDS))
            )
        )
    if type(engine) is cls:
        return engine
    preserved = {name: engine.__dict__[name] for name in _CORE_ATTRS}
    fresh = cls()
    engine.__dict__ = fresh.__dict__
    engine.__dict__.update(preserved)
    engine.__class__ = cls
    return engine


def restore(snap, backend=None):
    """Rebuild the captured graph; returns a :class:`Restored`.

    :param backend: target engine backend name; None keeps the backend
        the snapshot was captured under.
    """
    payload = pickle.loads(snap.blob)
    kind = payload["kind"]
    if kind == "network":
        network = payload["root"]
        engine = network.engine
    else:
        network = None
        engine = payload["root"]
    if backend is None:
        backend = snap.backend
    engine = _transmute(engine, backend)
    return Restored(
        kind=kind, engine=engine, network=network, extras=payload["extras"]
    )


def restore_engine(snap, backend=None):
    """Rebuild an engine-level snapshot; returns the engine."""
    return restore(snap, backend=backend).engine


def restore_network(snap, backend=None):
    """Rebuild a network-level snapshot; returns a :class:`Restored`."""
    restored = restore(snap, backend=backend)
    if restored.network is None:
        raise ValueError(
            "snapshot holds a bare engine, not a network; use restore_engine"
        )
    return restored
