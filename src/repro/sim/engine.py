"""The two-phase synchronous simulation engine."""


class Engine:
    """Clocks a collection of components and channels in lockstep.

    Each call to :meth:`step` performs one cycle of the central clock:

    1. every registered component's ``tick(cycle)`` runs, reading the
       *current* channel outputs and staging new inputs;
    2. every channel advances its pipeline registers by one stage.

    Because reads see pre-tick state and writes are staged, the order in
    which components tick is irrelevant — the simulation is a faithful
    model of a fully synchronous design.
    """

    def __init__(self):
        self.cycle = 0
        self.components = []
        self.channels = []
        self._pre_cycle_hooks = []

    def add_component(self, component):
        """Register a clocked component; returns it for chaining."""
        self.components.append(component)
        return component

    def add_channel(self, channel):
        """Register a channel; returns it for chaining."""
        self.channels.append(channel)
        return channel

    def add_pre_cycle_hook(self, hook):
        """Register ``hook(engine)`` to run before each cycle's ticks.

        Used by the fault injector to flip faults on/off at scheduled
        cycles without being a component itself.
        """
        self._pre_cycle_hooks.append(hook)

    def step(self):
        """Advance the simulation by exactly one clock cycle."""
        for hook in self._pre_cycle_hooks:
            hook(self)
        cycle = self.cycle
        for component in self.components:
            component.tick(cycle)
        for channel in self.channels:
            channel.advance()
        self.cycle = cycle + 1

    def run(self, cycles):
        """Advance the simulation by ``cycles`` clock cycles."""
        for _ in range(cycles):
            self.step()

    def run_until(self, predicate, max_cycles=1000000):
        """Step until ``predicate(engine)`` is true or the cycle budget ends.

        Returns True if the predicate fired, False on budget exhaustion.
        The predicate is evaluated *before* each step so a condition
        that already holds costs zero cycles.
        """
        for _ in range(max_cycles):
            if predicate(self):
                return True
            self.step()
        return predicate(self)
