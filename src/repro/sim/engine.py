"""The two-phase synchronous simulation engine."""


class EngineDeadlineError(RuntimeError):
    """An :class:`Engine` tried to advance past its configured deadline.

    Raised by :meth:`Engine.step` so a runaway simulation (a livelocked
    trial inside a worker process, a predicate that can never fire)
    terminates with a diagnosable error instead of spinning forever.
    """


class Engine:
    """Clocks a collection of components and channels in lockstep.

    Each call to :meth:`step` performs one cycle of the central clock:

    1. every registered component's ``tick(cycle)`` runs, reading the
       *current* channel outputs and staging new inputs;
    2. every channel advances its pipeline registers by one stage.

    Because reads see pre-tick state and writes are staged, the order in
    which components tick is irrelevant — the simulation is a faithful
    model of a fully synchronous design.

    Two guards bound an engine's execution:

    * :meth:`stop` requests a cooperative stop: the current ``run`` /
      ``run_until`` loop finishes its cycle and returns early.  Safe to
      call from a component's ``tick`` or a pre-cycle hook.
    * :meth:`set_deadline` installs a hard cycle ceiling: stepping at
      or past it raises :class:`EngineDeadlineError`.  Worker processes
      use this so a runaway trial fails loudly instead of hanging a
      pool.

    The deadline takes precedence over every soft budget: a
    ``run_until`` whose ``max_cycles`` extends past the deadline raises
    :class:`EngineDeadlineError` at the deadline cycle rather than
    silently returning False at budget exhaustion (see
    ``tests/sim/test_engine_guards.py``).  Backends (see
    :mod:`repro.sim.backends`) must preserve both guards cycle-exactly.
    """

    def __init__(self):
        self.cycle = 0
        self.components = []
        self.observers = []
        self.channels = []
        self.deadline = None
        self._pre_cycle_hooks = []
        self._stop_requested = False

    def add_component(self, component):
        """Register a clocked component; returns it for chaining."""
        self.components.append(component)
        return component

    def add_observer(self, component):
        """Register a component that ticks after every ordinary one.

        Observers see each cycle's fully-staged state — every component
        has ticked, no channel has advanced yet — regardless of when
        other components are registered.  The conformance oracle uses
        this so attaching a traffic source after the oracle cannot
        stage words behind its back.
        """
        self.observers.append(component)
        return component

    def add_channel(self, channel):
        """Register a channel; returns it for chaining."""
        self.channels.append(channel)
        return channel

    def add_pre_cycle_hook(self, hook):
        """Register ``hook(engine)`` to run before each cycle's ticks.

        Used by the fault injector to flip faults on/off at scheduled
        cycles without being a component itself.
        """
        self._pre_cycle_hooks.append(hook)

    def stop(self):
        """Request that the innermost ``run``/``run_until`` loop return.

        The request is consumed by the next ``run``/``run_until`` call:
        each loop clears it on entry, so a stop only ever cancels the
        run during which it was raised.
        """
        self._stop_requested = True

    def set_deadline(self, cycle):
        """Refuse to step at or beyond absolute cycle ``cycle``.

        ``None`` clears the deadline.  The deadline is checked at the
        top of :meth:`step`, which raises :class:`EngineDeadlineError` —
        the simulation never silently runs past it.
        """
        if cycle is not None and cycle < self.cycle:
            raise ValueError(
                "deadline {} is already in the past (cycle {})".format(
                    cycle, self.cycle
                )
            )
        self.deadline = cycle

    def clear_deadline(self):
        """Remove any cycle deadline."""
        self.deadline = None

    def snapshot(self, extras=None, meta=None):
        """Capture this engine's full state as a picklable Snapshot.

        Everything registered with the engine — components, observers,
        channels, pre-cycle hooks — rides along, as do the guard states
        (:meth:`stop` requests and :meth:`set_deadline` deadlines), so
        a restored engine resumes exactly where this one stands.  The
        live engine is not perturbed.  See :mod:`repro.sim.snapshot`.
        """
        from repro.sim.snapshot import snapshot_engine

        return snapshot_engine(self, extras=extras, meta=meta)

    def wake(self, obj):
        """Nudge a component or channel that was mutated out-of-band.

        The dense reference engine visits everything every cycle, so
        this is a no-op here.  Event-driven backends override it to
        re-schedule parked components (and re-heat idle channels) when
        a fault strikes, a message is submitted from outside a tick, or
        a scan operation drives a wire.  Callers may invoke it
        unconditionally — it is always safe, never required for
        correctness on this engine.
        """

    def step(self):
        """Advance the simulation by exactly one clock cycle."""
        if self.deadline is not None and self.cycle >= self.deadline:
            raise EngineDeadlineError(
                "engine reached its deadline of {} cycles".format(self.deadline)
            )
        for hook in self._pre_cycle_hooks:
            hook(self)
        cycle = self.cycle
        for component in self.components:
            component.tick(cycle)
        for observer in self.observers:
            observer.tick(cycle)
        for channel in self.channels:
            channel.advance()
        self.cycle = cycle + 1

    def run(self, cycles):
        """Advance the simulation by up to ``cycles`` clock cycles.

        Returns early (without error) if a component calls :meth:`stop`
        mid-run; ``cycles=0`` performs no steps at all.
        """
        self._stop_requested = False
        for _ in range(cycles):
            self.step()
            if self._stop_requested:
                break

    def run_until(self, predicate, max_cycles=1000000):
        """Step until ``predicate(engine)`` is true or the cycle budget ends.

        Returns True if the predicate fired, False on budget exhaustion.
        The predicate is evaluated *before* each step so a condition
        that already holds costs zero cycles; ``max_cycles=0``
        consistently means "check, never step" — the predicate is
        evaluated exactly once and no cycle is consumed.  A
        :meth:`stop` request raised during the run ends it after the
        current cycle, returning the predicate's value at that point.
        """
        if max_cycles < 0:
            raise ValueError(
                "max_cycles must be >= 0, got {}".format(max_cycles)
            )
        self._stop_requested = False
        for _ in range(max_cycles):
            if predicate(self):
                return True
            self.step()
            if self._stop_requested:
                break
        return bool(predicate(self))
