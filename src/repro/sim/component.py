"""Base class for clocked components."""


class Component:
    """A synchronously clocked element of a METRO network simulation.

    Subclasses implement :meth:`tick`, which is called exactly once per
    simulated clock cycle.  During ``tick`` a component may *read* the
    current outputs of its attached channels and *stage* new words into
    them; staged words only become visible after every component has
    ticked (two-phase update), exactly like registers clocked from a
    single central clock.
    """

    #: Human-readable identifier, assigned by the network builder.
    name = "component"

    def tick(self, cycle):
        """Advance one clock cycle.

        :param cycle: the current cycle number (0-based).
        """
        raise NotImplementedError

    def __repr__(self):
        return "<{} {}>".format(type(self).__name__, self.name)
