"""Base class for clocked components."""

# ---------------------------------------------------------------------------
# Activity protocol (optional, duck-typed)
# ---------------------------------------------------------------------------
# The event-driven backend (:mod:`repro.sim.backends`) asks components
# how much of a cycle they actually need via ``activity_state()``:
#
# * ``ACTIVE`` — the component holds live state; its full ``tick`` must
#   run every cycle.
# * ``POLL``   — the component is idle except for an external input
#   poll (a traffic source); the backend calls the cheaper
#   ``fast_poll(cycle)`` instead of ``tick``.
# * ``PARKED`` — a full tick is provably a no-op; the component is
#   skipped until an attached channel carries a word or something wakes
#   it explicitly (``Engine.wake``).
#
# Components that don't implement the protocol are legal: the backend
# detects them and degrades to the dense reference sweep.  Compare
# states with ``is`` — implementations must return these exact objects.

ACTIVE = "active"
POLL = "poll"
PARKED = "parked"


class Component:
    """A synchronously clocked element of a METRO network simulation.

    Subclasses implement :meth:`tick`, which is called exactly once per
    simulated clock cycle.  During ``tick`` a component may *read* the
    current outputs of its attached channels and *stage* new words into
    them; staged words only become visible after every component has
    ticked (two-phase update), exactly like registers clocked from a
    single central clock.
    """

    #: Human-readable identifier, assigned by the network builder.
    name = "component"

    def tick(self, cycle):
        """Advance one clock cycle.

        :param cycle: the current cycle number (0-based).
        """
        raise NotImplementedError

    def __repr__(self):
        return "<{} {}>".format(type(self).__name__, self.name)
