"""Simulation engine backends.

The reference :class:`~repro.sim.engine.Engine` is a dense two-phase
sweep: every component ticks and every channel advances every cycle.
That is simple and obviously correct, but on a lightly loaded network
almost all of that work is provably a no-op — an idle METRO router
reads silence on every forward port, writes ``None`` into its boundary
capture registers, and stages nothing.

:class:`EventEngine` is a drop-in replacement that skips exactly that
provable no-op work and nothing else:

* Components expose the activity protocol of
  :mod:`repro.sim.component` (``activity_state`` / ``fast_poll`` /
  ``on_park`` / ``attached_channels``).  ``PARKED`` components are
  skipped entirely; ``POLL`` components (idle endpoints with a traffic
  source) run a reduced poll; ``ACTIVE`` components tick normally, in
  registration order, so traces, logs and telemetry events appear in
  exactly the reference order.
* A parked component is re-scheduled when any pipe of an attached
  channel carries a word toward it, when a pre-cycle hook (the fault
  injector) or an out-of-tick mutator calls :meth:`EventEngine.wake`,
  or — conservatively — at the start of every ``run``/``run_until``
  call (external code may mutate anything between runs, so each run
  begins with one dense warm-up cycle).
* Channels live in a *hot set*: a channel is advanced only while it
  holds words in flight or a component just staged into it.  An
  all-idle channel costs nothing per cycle.
* When the network is completely quiet except for predictable future
  events (a trace-driven traffic source, a scheduled fault), ``run``
  compresses the idle gap in O(1) by jumping the cycle counter to the
  next event.  Unpredictable sources (Bernoulli traffic) disable
  compression but still benefit from the POLL fast path.

Equivalence is *by construction* — a skipped tick is one the reference
engine would have executed with no observable effect, and a spuriously
woken component just runs its full (idempotent-on-idle) tick — and is
*checked* by :mod:`repro.verify.backend_diff`, which replays random
scenarios, fault injections and chaos soaks on both backends and
requires byte-identical results.

Components outside the protocol (cascade groups, waveform recorders,
ad-hoc test components) are detected at preparation time and the
engine degrades to the dense reference sweep for the whole run —
slower, never wrong.
"""

from repro.sim.channel import Channel
from repro.sim.component import ACTIVE, PARKED, POLL
from repro.sim.engine import Engine, EngineDeadlineError

#: ``next_event_cycle`` return meaning "no future event at all".
NEVER = float("inf")


class EventEngine(Engine):
    """Activity-gated event-driven engine (the ``"events"`` backend)."""

    def __init__(self):
        Engine.__init__(self)
        #: True when a registered component predates the activity
        #: protocol; the engine then runs the dense reference sweep.
        self.degraded = False
        self._prepared = False
        self._states = {}
        self._woken = set()
        #: The hot channel set is a stable object: channels carry a
        #: bound reference to its ``add`` (the staging hook), so it is
        #: cleared and refilled in place, never reassigned.
        self._hot = set()
        #: component -> [registered channel, ...] (for wake re-heating)
        self._adjacent = {}
        #: channel -> (a_side component or None, b_side component or None)
        self._attached = {}
        self._ticked = []
        #: True when every idle-poll source and pre-cycle hook can name
        #: its next event cycle; precomputed per run so Bernoulli-load
        #: runs skip the per-cycle compression probe entirely.
        self._compressible = False
        #: Cycles the idle-run compressor skipped (visible for tests
        #: and benchmarks; no functional role).
        self.compressed_cycles = 0

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------

    #: Everything _prepare() rebuilds from scratch at the next run;
    #: dropping it keeps snapshots free of bound-to-this-engine hooks
    #: and makes restore a plain "re-prepare on first step".
    _TRANSIENT_ATTRS = (
        "_states",
        "_woken",
        "_hot",
        "_adjacent",
        "_attached",
        "_ticked",
    )

    def __getstate__(self):
        state = dict(self.__dict__)
        for name in self._TRANSIENT_ATTRS:
            state.pop(name, None)
        state["_prepared"] = False
        state["_compressible"] = False
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._states = {}
        self._woken = set()
        self._hot = set()
        self._adjacent = {}
        self._attached = {}
        self._ticked = []

    # ------------------------------------------------------------------
    # Registration (invalidates the prepared maps)
    # ------------------------------------------------------------------

    def add_component(self, component):
        self._prepared = False
        return Engine.add_component(self, component)

    def add_channel(self, channel):
        self._prepared = False
        return Engine.add_channel(self, channel)

    def add_pre_cycle_hook(self, hook):
        # Compressibility depends on the hook set (a fault injector
        # attached mid-life must be re-probed).
        self._prepared = False
        return Engine.add_pre_cycle_hook(self, hook)

    # ------------------------------------------------------------------
    # Preparation: adjacency maps + conservative reset
    # ------------------------------------------------------------------

    _PROTOCOL = ("activity_state", "attached_channels", "on_park")

    def _prepare(self):
        """(Re)build wiring maps; mark everything active/hot.

        Called at the start of every run so that any wiring or state
        mutation performed between runs — attaching traffic, applying
        faults, poking router internals from a test — is absorbed by
        one conservative dense cycle instead of needing a wake call.
        """
        self.degraded = False
        self._compressible = False
        for component in self.components:
            if not all(hasattr(component, name) for name in self._PROTOCOL):
                self.degraded = True
                self._prepared = True
                return
        states = self._states = {}
        adjacent = self._adjacent = {}
        attached = {}
        hot_add = self._hot.add
        for channel in self.channels:
            attached[channel] = [None, None]
            channel.hot_hook = hot_add
        for component in self.components:
            states[component] = ACTIVE
            entries = []
            for channel, is_a_side in component.attached_channels():
                sides = attached.get(channel)
                if sides is None:
                    # Wired to a channel the engine never registered
                    # (ad-hoc test harnesses): the reference engine
                    # would never advance it, so neither may we —
                    # leave it out of the maps entirely.
                    continue
                sides[0 if is_a_side else 1] = component
                entries.append(channel)
            adjacent[component] = entries
            hook = getattr(component, "wake_hook", False)
            if hook is None or callable(hook):
                component.wake_hook = self.wake
        self._attached = {
            channel: tuple(sides) for channel, sides in attached.items()
        }
        for channel, (a_side, b_side) in self._attached.items():
            channel._ev_rec = (
                channel._a_to_b,
                channel._b_to_a,
                channel._bcb_a_to_b,
                channel._bcb_b_to_a,
                a_side,
                b_side,
            )
        self._woken.clear()
        self._hot.clear()
        self._hot.update(self.channels)
        self._compressible = self._probe_compressible()
        self._prepared = True

    def _probe_compressible(self):
        """Can every future event source name its next event cycle?

        Probed once per run (sources and hooks only change between
        runs): a hook owner without ``next_event_cycle`` or a component
        whose hint is currently ``None`` (a Bernoulli traffic source —
        it consumes randomness every cycle, so its next arrival is
        unknowable) rules compression out for the whole run, letting
        ``run`` skip the per-cycle probe.  Components with *no* hint
        method are fine here — they are re-checked dynamically if they
        ever reach the POLL state.
        """
        for hook in self._pre_cycle_hooks:
            owner = getattr(hook, "__self__", None)
            if not hasattr(owner, "next_event_cycle"):
                return False
        for component in self.components:
            probe = getattr(component, "next_event_cycle", None)
            if probe is not None and probe() is None:
                return False
        return True

    # ------------------------------------------------------------------
    # Wake API (fault injection, external submits, scan operations)
    # ------------------------------------------------------------------

    def wake(self, obj):
        """Re-schedule ``obj`` (a component or channel) immediately.

        Safe to call at any time with any object; unknown objects are
        ignored.  Component wakes also re-heat the component's attached
        channels (an out-of-tick mutator may have staged words into
        them), and resynchronize the component's notion of time via its
        optional ``on_wake(cycle)`` hook.
        """
        if isinstance(obj, Channel):
            if self._prepared and not self.degraded:
                pair = self._attached.get(obj)
                if pair is not None:
                    # Unregistered channels stay out of the hot set:
                    # the reference engine never advances them.
                    self._hot.add(obj)
                    for component in pair:
                        if component is not None:
                            self._woken.add(component)
            return
        on_wake = getattr(obj, "on_wake", None)
        if on_wake is not None:
            on_wake(self.cycle - 1 if self.cycle > 0 else 0)
        if self._prepared and not self.degraded:
            self._woken.add(obj)
            for channel in self._adjacent.get(obj, ()):
                self._hot.add(channel)

    # ------------------------------------------------------------------
    # The clock
    # ------------------------------------------------------------------

    def step(self):
        if not self._prepared:
            self._prepare()
        if self.degraded:
            Engine.step(self)
            return
        if self.deadline is not None and self.cycle >= self.deadline:
            raise EngineDeadlineError(
                "engine reached its deadline of {} cycles".format(self.deadline)
            )
        for hook in self._pre_cycle_hooks:
            hook(self)
        cycle = self.cycle
        states = self._states
        woken = self._woken
        if woken:
            for component in woken:
                states[component] = ACTIVE
            woken.clear()
        ticked = self._ticked
        del ticked[:]
        tick_append = ticked.append
        for component in self.components:
            state = states[component]
            if state is ACTIVE:
                component.tick(cycle)
                tick_append(component)
            elif state is POLL:
                # A poll stages nothing (channel heating is handled by
                # the staging hook anyway) and can only create work;
                # its return value says whether it did.
                if component.fast_poll(cycle):
                    states[component] = ACTIVE
        for observer in self.observers:
            observer.tick(cycle)
        # Channels staged into this cycle added themselves to the hot
        # set via their staging hook; no scan needed.
        hot = self._hot
        if hot:
            woken_add = woken.add
            cold = []
            for channel in hot:
                channel.advance()
                p_ab, p_ba, p_bab, p_bba, a_side, b_side = channel._ev_rec
                if b_side is not None and (
                    p_ab.slots[-1] is not None or p_bab.slots[-1] is not None
                ):
                    woken_add(b_side)
                if a_side is not None and (
                    p_ba.slots[-1] is not None or p_bba.slots[-1] is not None
                ):
                    woken_add(a_side)
                if not (
                    p_ab.occupied
                    or p_ba.occupied
                    or p_bab.occupied
                    or p_bba.occupied
                ):
                    cold.append(channel)
            for channel in cold:
                hot.discard(channel)
        # Re-classification is deliberately throttled: parking *late* is
        # always safe (a spurious tick on idle state is a no-op — only a
        # missed wake can diverge), so the park check runs every fourth
        # cycle instead of every cycle.  Active components usually stay
        # active for tens of cycles (an open connection), making the
        # per-cycle check pure overhead.
        if cycle & 3 == 3:
            for component in ticked:
                after = component.activity_state()
                if after is not ACTIVE:
                    states[component] = after
                    if after is PARKED:
                        component.on_park()
        self.cycle = cycle + 1

    # ------------------------------------------------------------------
    # Runs (with idle-gap compression)
    # ------------------------------------------------------------------

    def run(self, cycles):
        self._prepare()
        if self.degraded:
            return Engine.run(self, cycles)
        self._stop_requested = False
        end = self.cycle + cycles
        while self.cycle < end:
            if self._compressible:
                target = self._compression_target()
                if target is not None and target > self.cycle + 1:
                    jump = min(target, end)
                    self.compressed_cycles += jump - self.cycle
                    self.cycle = jump
                    if self.cycle >= end:
                        break
            self.step()
            if self._stop_requested:
                break

    def run_until(self, predicate, max_cycles=1000000):
        # No compression: the predicate contract is "evaluated before
        # each step", and an opaque predicate may observe any cycle.
        self._prepare()
        return Engine.run_until(self, predicate, max_cycles)

    def _compression_target(self):
        """Cycle of the next possible event, or None if unknowable.

        Compression requires proof that *nothing at all* can happen
        until the target: no words in flight, no component active or
        freshly woken, and every remaining event source — POLL
        components, pre-cycle hooks, and observers — able to name its
        next event cycle.  Observers sample every cycle by default, so
        any observer without a ``next_event_cycle`` hint (the oracle,
        the telemetry hub) vetoes compression outright; observers that
        only act at known boundaries (the telemetry stream, the run
        watchdog) provide the hint and ride along compression-free.
        """
        if (
            not self._compressible
            or self.degraded
            or self._hot
            or self._woken
        ):
            return None
        nearest = NEVER
        for observer in self.observers:
            probe = getattr(observer, "next_event_cycle", None)
            if probe is None:
                return None
            nxt = probe()
            if nxt is None:
                return None
            if nxt < nearest:
                nearest = nxt
        states = self._states
        for component in self.components:
            state = states[component]
            if state is ACTIVE:
                return None
            if state is POLL:
                probe = getattr(component, "next_event_cycle", None)
                if probe is None:
                    return None
                nxt = probe()
                if nxt is None:
                    return None
                if nxt < nearest:
                    nearest = nxt
        for hook in self._pre_cycle_hooks:
            owner = getattr(hook, "__self__", None)
            probe = getattr(owner, "next_event_cycle", None)
            if probe is None:
                return None
            nxt = probe()
            if nxt is None:
                return None
            if nxt < nearest:
                nearest = nxt
        if self.deadline is not None and self.deadline < nearest:
            nearest = self.deadline
        return nearest


#: Registered engine backends.  ``"reference"`` is the dense two-phase
#: sweep; ``"events"`` the activity-gated event-driven engine;
#: ``"vector"`` (registered below by :mod:`repro.sim.vector`) the
#: structure-of-arrays engine for saturated loads.
BACKENDS = {
    "reference": Engine,
    "events": EventEngine,
}


def make_engine(backend="reference"):
    """Instantiate an engine by backend name.

    :raises ValueError: unknown backend name (the message lists the
        registered choices).
    """
    try:
        factory = BACKENDS[backend]
    except KeyError:
        raise ValueError(
            "unknown engine backend {!r} (choices: {})".format(
                backend, ", ".join(sorted(BACKENDS))
            )
        )
    return factory()


# The vector backend registers itself into BACKENDS on import; pulling
# it in here makes every entry point that knows this registry (CLI,
# sweeps, snapshot transmute) see all three backends.  Import last:
# repro.sim.vector imports EventEngine from this module.
from repro.sim import vector as _vector  # noqa: E402,F401  isort:skip
