"""Pipelined, half-duplex, point-to-point channels.

The METRO architecture models the wire between two components as a
number of pipeline registers (paper, Section 5.1, *Variable Turn
Delay*): a properly series-terminated point-to-point connection looks
like a pure time delay, trimmed to an integral number of clock cycles.
:class:`Channel` implements exactly that abstraction.

A channel joins an *A side* (upstream: an endpoint source port or a
router backward port) to a *B side* (downstream: the next stage's
forward port or an endpoint receive port).  Each direction is a shift
register of ``delay`` stages.  Data is half-duplex at the protocol
level — only the side that currently owns the connection drives data —
but the reverse shift register is always present because the
backward-control-bit (BCB) sideband used for fast path reclamation
travels against the data flow on its own wire.

Channels are also the natural place to model *link faults*: a fault
function installed on a channel transforms (or kills) words as they
emerge from the pipeline, which is indistinguishable, to the attached
components, from a broken or noisy wire.
"""


class _Pipe:
    """A unidirectional shift register of ``delay`` word slots.

    Tracks its occupancy so that fully-empty pipes (the common case —
    idle wires and the rarely-used BCB sidebands) advance in O(1).
    """

    __slots__ = ("slots", "staged", "delay", "occupied")

    def __init__(self, delay):
        self.delay = delay
        self.slots = [None] * delay
        self.staged = None
        self.occupied = 0

    def push(self, word):
        self.staged = word

    def head(self):
        return self.slots[-1]

    def advance(self):
        staged = self.staged
        if self.occupied == 0 and staged is None:
            return
        slots = self.slots
        leaving = slots[-1]
        for index in range(len(slots) - 1, 0, -1):
            slots[index] = slots[index - 1]
        slots[0] = staged
        self.staged = None
        self.occupied += (staged is not None) - (leaving is not None)

    def flush(self):
        self.slots = [None] * self.delay
        self.staged = None
        self.occupied = 0

    def occupancy(self):
        return self.occupied


class Channel:
    """A bidirectional pipelined wire with a BCB sideband.

    :param delay: pipeline depth in clock cycles (the paper's ``vtd``);
        must be at least 1 — even the shortest wire registers its value.
    :param name: identifier used in traces and error messages.
    """

    __slots__ = (
        "name",
        "delay",
        "_a_to_b",
        "_b_to_a",
        "_bcb_b_to_a",
        "_bcb_a_to_b",
        "fault_a_to_b",
        "fault_b_to_a",
        "dead",
        "half_duplex_violations",
        "telemetry",
        "hot_hook",
        "_ev_rec",
    )

    def __init__(self, delay=1, name="channel"):
        if delay < 1:
            raise ValueError("channel delay must be >= 1, got {}".format(delay))
        self.name = name
        self.delay = delay
        self._a_to_b = _Pipe(delay)
        self._b_to_a = _Pipe(delay)
        self._bcb_b_to_a = _Pipe(delay)
        self._bcb_a_to_b = _Pipe(delay)
        #: Optional fault transforms, applied to words as they arrive.
        #: Each is ``callable(word) -> word_or_None`` or None for a
        #: healthy wire.  Set by the fault injector.
        self.fault_a_to_b = None
        self.fault_b_to_a = None
        #: A dead channel delivers nothing in either direction.
        self.dead = False
        #: Half-duplex monitor: counts cycles where both directions
        #: carried a DATA word at once.  Control tokens (DROP aborts
        #: against the grain, the BCB sideband) are signaling, not
        #: payload, and are exempt.  Purely observational — words still
        #: flow, as they would in hardware where simultaneous driving
        #: produces garbage; a nonzero count means a protocol bug.
        self.half_duplex_violations = 0
        #: Set by TelemetryHub.bind to count wire activity; None (the
        #: default) keeps the advance hot path free of telemetry work.
        self.telemetry = None
        #: Set by the event-driven engine backend: called with this
        #: channel whenever a word is staged onto it, so the engine
        #: learns a sleeping wire went hot without scanning.  None (the
        #: default, and always under the reference engine) costs one
        #: branch per send.
        self.hot_hook = None
        #: Event-engine advance record ``(pipe, pipe, pipe, pipe,
        #: a_component, b_component)``; built by the backend's prepare
        #: pass so its advance loop avoids repeated attribute chains.
        self._ev_rec = None

    #: Engine-installed acceleration state, rebuilt by the event
    #: backend's prepare pass; never part of a snapshot.
    _TRANSIENT_SLOTS = ("hot_hook", "_ev_rec")

    def __getstate__(self):
        return {
            name: getattr(self, name)
            for name in self.__slots__
            if name not in self._TRANSIENT_SLOTS
        }

    def __setstate__(self, state):
        for name, value in state.items():
            setattr(self, name, value)
        self.hot_hook = None
        self._ev_rec = None

    @property
    def a(self):
        """The upstream end of this channel."""
        return ChannelEnd(self, "a")

    @property
    def b(self):
        """The downstream end of this channel."""
        return ChannelEnd(self, "b")

    def advance(self):
        """Shift all four pipelines by one cycle (phase two of a tick)."""
        down = self._a_to_b.staged
        up = self._b_to_a.staged
        if down is not None or up is not None:
            if (
                down is not None
                and up is not None
                and down.kind == "data"
                and up.kind == "data"
            ):
                self.half_duplex_violations += 1
            if self.telemetry is not None:
                self.telemetry.channel_activity(self, down, up)
        for pipe in (self._a_to_b, self._b_to_a, self._bcb_b_to_a, self._bcb_a_to_b):
            if pipe.occupied or pipe.staged is not None:
                pipe.advance()

    # -- side-specific accessors used by ChannelEnd -------------------

    def _send(self, side, word):
        if side == "a":
            self._a_to_b.push(word)
        else:
            self._b_to_a.push(word)
        if self.hot_hook is not None:
            self.hot_hook(self)

    def _recv(self, side):
        if side == "a":
            word = self._b_to_a.head()
            fault = self.fault_b_to_a
        else:
            word = self._a_to_b.head()
            fault = self.fault_a_to_b
        if self.dead:
            return None
        if fault is not None and word is not None:
            word = fault(word)
        return word

    def _send_bcb(self, side, value):
        if side == "a":
            self._bcb_a_to_b.push(value)
        else:
            self._bcb_b_to_a.push(value)
        if self.hot_hook is not None:
            self.hot_hook(self)

    def _recv_bcb(self, side):
        if self.dead:
            return None
        if side == "a":
            return self._bcb_b_to_a.head()
        return self._bcb_a_to_b.head()

    def in_flight(self):
        """Number of words currently inside the channel (both directions)."""
        return self._a_to_b.occupancy() + self._b_to_a.occupancy()

    def __repr__(self):
        return "<Channel {} delay={}>".format(self.name, self.delay)


class ChannelEnd:
    """One side of a :class:`Channel`, as seen by an attached component.

    ``send``/``recv`` move data words; ``send_bcb``/``recv_bcb`` move
    backward-control-bit pulses, which always travel *toward the other
    side* regardless of the current data direction.

    Pipe references are cached per end: these four methods are the
    hottest calls in a simulation (every port of every component, every
    cycle), so they index the pipes directly instead of dispatching
    through the channel.
    """

    __slots__ = ("channel", "side", "_tx", "_rx", "_bcb_tx", "_bcb_rx", "_rx_fault")

    def __init__(self, channel, side):
        if side not in ("a", "b"):
            raise ValueError("side must be 'a' or 'b', got {!r}".format(side))
        self.channel = channel
        self.side = side
        if side == "a":
            self._tx = channel._a_to_b
            self._rx = channel._b_to_a
            self._bcb_tx = channel._bcb_a_to_b
            self._bcb_rx = channel._bcb_b_to_a
            self._rx_fault = "fault_b_to_a"
        else:
            self._tx = channel._b_to_a
            self._rx = channel._a_to_b
            self._bcb_tx = channel._bcb_b_to_a
            self._bcb_rx = channel._bcb_a_to_b
            self._rx_fault = "fault_a_to_b"

    @property
    def delay(self):
        return self.channel.delay

    def send(self, word):
        """Stage ``word`` onto the wire toward the other side."""
        self._tx.staged = word
        hook = self.channel.hot_hook
        if hook is not None:
            hook(self.channel)

    def recv(self):
        """Read the word arriving at this side this cycle (or None)."""
        channel = self.channel
        if channel.dead:
            return None
        word = self._rx.slots[-1]
        if word is None:
            return None
        fault = getattr(channel, self._rx_fault)
        if fault is not None:
            word = fault(word)
        return word

    def send_bcb(self, value):
        """Stage a backward-control pulse toward the other side.

        ``value`` is the stage count carried by the fast-reclamation
        drop: the blocking router sends 1 and every router that
        propagates the drop increments it, so the source learns the
        routing stage in which blocking occurred (paper, Section 5.1,
        *Path Reclamation*).
        """
        self._bcb_tx.staged = value
        hook = self.channel.hot_hook
        if hook is not None:
            hook(self.channel)

    def recv_bcb(self):
        """Read the backward-control pulse arriving this cycle (or None)."""
        if self.channel.dead:
            return None
        return self._bcb_rx.slots[-1]

    def __repr__(self):
        return "<ChannelEnd {}.{}>".format(self.channel.name, self.side)
