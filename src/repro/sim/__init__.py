"""Synchronous, cycle-accurate simulation kernel.

METRO networks are globally clocked: every router and wire advances in
lockstep from a central clock (paper, Section 3).  This package provides
the two-phase simulation engine that models that clock:

* :class:`~repro.sim.component.Component` — anything with per-cycle
  behaviour (routers, endpoints, fault injectors).
* :class:`~repro.sim.channel.Channel` — a point-to-point wire modeled as
  ``delay`` pipeline registers in each direction, matching the paper's
  wire-as-pipeline-registers assumption (Section 5.1, Variable Turn
  Delay), plus the backward-control-bit (BCB) sideband used for fast
  path reclamation.
* :class:`~repro.sim.engine.Engine` — steps all components, then
  advances all channels, so evaluation order never matters.
* :class:`~repro.sim.trace.Trace` — optional event recording.
* :mod:`repro.sim.snapshot` — versioned capture/restore of live engine
  state (checkpointing, warm starts, crash-safe soaks).
"""

from repro.sim.channel import Channel, ChannelEnd
from repro.sim.component import Component
from repro.sim.engine import Engine
from repro.sim.snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    Snapshot,
    SnapshotFormatError,
    restore_engine,
    restore_network,
    snapshot_engine,
    snapshot_network,
)
from repro.sim.trace import Trace, TraceEvent

__all__ = [
    "Channel",
    "ChannelEnd",
    "Component",
    "Engine",
    "SNAPSHOT_FORMAT_VERSION",
    "Snapshot",
    "SnapshotFormatError",
    "Trace",
    "TraceEvent",
    "restore_engine",
    "restore_network",
    "snapshot_engine",
    "snapshot_network",
]
