"""Vectorized structure-of-arrays engine backend (the ``"vector"`` backend).

The event-driven :class:`~repro.sim.backends.EventEngine` wins big on
idle networks but converges toward the dense sweep under saturation —
when every channel is hot and every component active, skipping idle
work skips nothing.  The saturated regime is exactly where the paper's
Figure 3 knee and the large experiments live, so this backend attacks
the *per-cycle constant factor* instead of the amount of work:

* **Structure of arrays.**  The word *kind* occupying every pipeline
  slot of every registered channel lives in one dense ``int8`` numpy
  matrix (one row per pipe, one column per stage), alongside a flat
  head-kind vector, per-channel in-flight counters, and index-aligned
  component state/record arrays replacing the per-cycle dict walks.
  Multi-stage channel advancement is a whole-array roll + gather over
  the moved rows; single-stage channels (``delay == 1``, the paper's
  common case) collapse to one scalar head-kind store, which is both
  the roll and the gather for a one-column row.  Idle-port checks,
  idle-receiver checks and arrival wakes become integer reads on the
  head-kind vector — no attribute chains, no ``Word`` inspection.
* **Python stays authoritative.**  The actual :class:`~repro.core.words.Word`
  objects still move through the real ``_Pipe`` objects every cycle;
  the arrays are a *decision layer* mirroring only the kinds.  Every
  observer, oracle, telemetry probe, predicate and snapshot sees
  exactly the reference data structures at all times — the arrays are
  rebuilt from scratch by ``_prepare`` and never serialized.
* **Steady-state fast paths.**  The router's per-port FSM and the
  endpoint's protocol edges remain Python, but their common steady
  states — forwarding and reversing words, counting silence, flushing
  a draining pipeline, emitting the reversal STATUS word, the TURN
  and DROP pipe-exit transitions, streaming and awaiting a reply —
  are replayed by a check-then-apply fast path performing the
  reference tick's exact effects.  The check pass is free of side
  effects, so *anything* uncommon — a routing decision, a DROP at
  pipe entry, a watchdog about to fire, a live fault transform, an
  active mutation, a trace/telemetry sink that would record — simply
  bails out to the full reference ``tick`` for that component and
  cycle.  Because every connection state *transition* either bails or
  is replayed exactly, the per-router active/idle port partition is
  invariant between full ticks and is cached; silent idle ports cost
  nothing at all (their boundary registers are only rewritten when
  the observed value actually changes).  Equivalence is by
  construction and checked byte-for-byte by
  :mod:`repro.verify.backend_diff`.

Degradation mirrors :class:`EventEngine`: foreign components degrade
the whole run to the dense reference sweep, and when numpy is absent
the backend transparently behaves exactly like the events backend
(slower, never wrong).  An optional numba JIT for the multi-stage
array roll sits behind ``REPRO_JIT=1`` and is import-guarded —
absence of numba is silently ignored.

This module also hosts the *backend-layer* seeded mutations
(``repro.core.mutation.BACKEND_MUTATIONS``): deliberate bugs in the
array bookkeeping used by ``tests/verify`` to prove the equivalence
prover and the protocol oracle notice when the accelerated engine
drifts from the reference semantics.
"""

import os
from bisect import insort

from repro.core import mutation as _mutation
from repro.core import words as W
from repro.core.router import (
    BLOCKED_STATE,
    DISCARD_STATE,
    FORWARD_STATE,
    IDLE_STATE,
    MetroRouter,
    REVERSED_STATE,
    SETUP_STATE,
)
from repro.endpoint.interface import (
    _AWAIT_REPLY,
    _RX_AWAIT_CLOSE,
    _RX_COLLECT,
    _RX_IDLE,
    _RX_REPLY,
    _STREAMING,
    Endpoint,
)
from repro.sim.backends import NEVER, EventEngine
from repro.sim.component import ACTIVE, PARKED
from repro.sim.engine import Engine, EngineDeadlineError

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a hard dep today
    _np = None

# -- word-kind codes in the structure-of-arrays mirror ---------------------

KIND_EMPTY = 0
KIND_DATA = 1
KIND_IDLE = 2
KIND_TURN = 3
KIND_DROP = 4
KIND_STATUS = 5
#: BCB sideband pipes carry bare stage-count integers, not Words.
KIND_BCB = 6

KIND_CODES = {W.DATA: KIND_DATA, W.IDLE: KIND_IDLE, W.TURN: KIND_TURN,
              W.DROP: KIND_DROP, W.STATUS: KIND_STATUS}

_IDLE_WORD = W.IDLE_WORD
_CRC_TABLE = W.Checksum._TABLE

# -- optional numba JIT for the array roll (REPRO_JIT=1) -------------------

JIT_REQUESTED = os.environ.get("REPRO_JIT", "") == "1"
JIT_ACTIVE = False


def _roll_rows(kind, rows, staged, headcol):
    """Shift the selected pipe rows one stage and insert the staged codes."""
    kind[rows, 1:] = kind[rows, :-1]
    kind[rows, 0] = staged


if JIT_REQUESTED and _np is not None:  # pragma: no cover - optional dep
    try:
        from numba import njit as _njit
    except ImportError:
        _njit = None
    if _njit is not None:
        @_njit(cache=True)
        def _jit_roll_rows(kind, rows, staged, headcol):
            for i in range(rows.shape[0]):
                row = rows[i]
                for col in range(headcol[row], 0, -1):
                    kind[row, col] = kind[row, col - 1]
                kind[row, 0] = staged[i]

        _roll_rows = _jit_roll_rows
        JIT_ACTIVE = True


class _RouterRec:
    """Per-router fast-path wiring, rebuilt at every ``_prepare``."""

    __slots__ = (
        "fwd",
        "bwd",
        "owned",
        "ports",
        "dirty",
        "dirty_all",
        "force_slow",
        "i_base",
    )
    is_router = True

    def __init__(self):
        #: ``(fwd_port, rx_pipe, tx_pipe, channel, rx_row, rx_fault_name)``
        #: for every wired forward port, in port order.
        self.fwd = []
        #: ``(rx_pipe, tx_pipe, bcb_rx_pipe, channel, rx_fault_name)`` or
        #: None per backward port.
        self.bwd = []
        #: Backward-port indices currently owned by a connection (the
        #: BCB service gate); refreshed after every full tick.
        self.owned = []
        #: ``(conn, fwd_entry)`` pairs in port order.  Conn identity is
        #: valid between refreshes because the one operation replacing
        #: a connection object (`_begin_drain`) runs inside a reference
        #: handler, and every handler call marks the wiring stale.
        self.ports = []
        #: Boundary registers written non-None last fast cycle (must
        #: be reset to None before the write can be elided again).
        self.dirty = []
        self.dirty_all = True
        #: Take the full reference tick next cycle.  Set by any wake of
        #: the router (faults, scan, teardown) and at build time so the
        #: first cycle after a prepare absorbs out-of-band mutation.
        self.force_slow = True
        self.i_base = 0


class _EndpointRec:
    """Per-endpoint fast-path wiring, rebuilt at every ``_prepare``."""

    __slots__ = ("recv", "src")
    is_router = False

    def __init__(self):
        #: ``(port, rx_row, recv_state, channel, rx_pipe, rx_fault_name,
        #: tx_pipe)`` per receive port (the ``_RecvState`` objects are
        #: created once per endpoint and mutated in place, so caching
        #: them here is identity-safe).
        self.recv = []
        #: ``(end, channel, rx_row, rx_pipe, rx_fault_name, bcb_rx_pipe)``
        #: per source port.
        self.src = []


class VectorEngine(EventEngine):
    """Structure-of-arrays vectorized engine (the ``"vector"`` backend)."""

    def __init__(self):
        EventEngine.__init__(self)
        self._vec_ready = False
        self._init_vec_transients()

    def _init_vec_transients(self):
        self._kindm = None
        self._chocc = []
        self._headcol = None
        self._headk = []
        self._crecs = {}
        self._frecs = {}
        self._comp_list = []
        self._comp_index = {}
        self._state_arr = []
        self._rec_arr = []
        self._run_list = []
        self._in_run = []

    # ------------------------------------------------------------------
    # Snapshot support: the whole array layer is transient
    # ------------------------------------------------------------------

    _TRANSIENT_ATTRS = EventEngine._TRANSIENT_ATTRS + (
        "_kindm",
        "_chocc",
        "_headcol",
        "_headk",
        "_crecs",
        "_frecs",
        "_comp_list",
        "_comp_index",
        "_state_arr",
        "_rec_arr",
        "_run_list",
        "_in_run",
    )

    def __getstate__(self):
        state = EventEngine.__getstate__(self)
        state["_vec_ready"] = False
        return state

    def __setstate__(self, state):
        EventEngine.__setstate__(self, state)
        self._vec_ready = False
        self._init_vec_transients()

    # ------------------------------------------------------------------
    # Preparation: build the structure-of-arrays mirror
    # ------------------------------------------------------------------

    def _prepare(self):
        EventEngine._prepare(self)
        self._vec_ready = False
        if self.degraded or _np is None:
            # No numpy (or foreign components): run as the parent
            # backend would.  Slower, never wrong.
            return
        channels = self.channels
        n_rows = 4 * len(channels)
        dmax = 1
        for channel in channels:
            if channel.delay > dmax:
                dmax = channel.delay
        kindm = _np.zeros((n_rows, dmax), dtype=_np.int8)
        chocc = [0] * len(channels)
        headcol = _np.zeros(n_rows, dtype=_np.int64)
        kcodes = KIND_CODES
        crecs = {}
        row_of = {}
        for ci, channel in enumerate(channels):
            base = 4 * ci
            # Row order matches _ev_rec: a->b, b->a, bcb a->b, bcb b->a.
            pipes = (
                channel._a_to_b,
                channel._b_to_a,
                channel._bcb_a_to_b,
                channel._bcb_b_to_a,
            )
            a_side, b_side = self._attached[channel]
            crecs[channel] = (
                ci, base, pipes, a_side, b_side, channel.delay == 1, channel
            )
            for k in range(4):
                pipe = pipes[k]
                row = base + k
                row_of[pipe] = row
                headcol[row] = pipe.delay - 1
                for col, word in enumerate(pipe.slots):
                    if word is None:
                        continue
                    kindm[row, col] = KIND_BCB if k >= 2 else kcodes[word.kind]
                    chocc[ci] += 1
        self._kindm = kindm
        self._chocc = chocc
        self._headcol = headcol
        if n_rows:
            self._headk = kindm[
                _np.arange(n_rows, dtype=_np.int64), headcol
            ].tolist()
        else:
            self._headk = []
        self._crecs = crecs
        frecs = {}
        for component in self.components:
            # Exact types only: a subclass may override tick semantics
            # the fast paths replay, so it gets full ticks instead.
            if type(component) is MetroRouter:
                rec = self._build_router_rec(component, row_of)
            elif type(component) is Endpoint:
                rec = self._build_endpoint_rec(component, row_of)
            else:
                rec = None
            if rec is not None:
                frecs[component] = rec
        self._frecs = frecs
        # Index-aligned component arrays replace the per-cycle dict
        # walk of the events backend.
        comp_list = list(self.components)
        states = self._states
        self._comp_list = comp_list
        self._comp_index = {c: i for i, c in enumerate(comp_list)}
        self._state_arr = [states[c] for c in comp_list]
        self._rec_arr = [frecs.get(c) for c in comp_list]
        self._in_run = [s is not PARKED for s in self._state_arr]
        in_run = self._in_run
        self._run_list = [i for i in range(len(comp_list)) if in_run[i]]
        self._vec_ready = True

    def _build_router_rec(self, router, row_of):
        rec = _RouterRec()
        rec.i_base = router.params.i
        for fp, end in enumerate(router.forward_ends):
            if end is None:
                continue
            row = row_of.get(end._rx)
            if row is None:
                # Wired to a channel the engine never registered
                # (ad-hoc harnesses): no mirror row, no fast path.
                return None
            rec.fwd.append(
                (fp, end._rx, end._tx, end.channel, row, end._rx_fault)
            )
        for end in router.backward_ends:
            if end is None:
                rec.bwd.append(None)
                continue
            if row_of.get(end._rx) is None:
                return None
            rec.bwd.append(
                (end._rx, end._tx, end._bcb_rx, end.channel, end._rx_fault)
            )
        return rec

    def _build_endpoint_rec(self, endpoint, row_of):
        rec = _EndpointRec()
        for port, end in enumerate(endpoint.receive_ends):
            row = row_of.get(end._rx)
            if row is None:
                return None
            rec.recv.append(
                (
                    port,
                    row,
                    endpoint._recv_states[port],
                    end.channel,
                    end._rx,
                    end._rx_fault,
                    end._tx,
                )
            )
        for end in endpoint.source_ends:
            row = row_of.get(end._rx)
            if row is None:
                return None
            rec.src.append(
                (end, end.channel, row, end._rx, end._rx_fault, end._bcb_rx)
            )
        return rec

    def _refresh_router_rec(self, router, rec):
        """Re-cache ownership and the port partition after a full tick
        (or a replayed teardown); re-arm the fast path."""
        if not (
            _mutation.ACTIVE
            and _mutation.enabled(_mutation.VEC_STALE_OWNERSHIP)
        ):
            owned = rec.owned
            del owned[:]
            for q, conn in enumerate(router._bwd_owner):
                if conn is not None:
                    owned.append(q)
        conns = router._conns
        ports = rec.ports
        del ports[:]
        for entry in rec.fwd:
            ports.append((conns[entry[0]], entry))
        del rec.dirty[:]
        rec.dirty_all = True
        rec.force_slow = False

    # ------------------------------------------------------------------
    # Wake API: out-of-band mutation forces the full reference tick
    # ------------------------------------------------------------------

    def wake(self, obj):
        EventEngine.wake(self, obj)
        rec = self._frecs.get(obj)
        if rec is not None and rec.is_router:
            rec.force_slow = True

    # ------------------------------------------------------------------
    # The clock
    # ------------------------------------------------------------------

    def step(self):
        if not self._prepared:
            self._prepare()
        if self.degraded:
            Engine.step(self)
            return
        if not self._vec_ready:
            EventEngine.step(self)
            return
        if self.deadline is not None and self.cycle >= self.deadline:
            raise EngineDeadlineError(
                "engine reached its deadline of {} cycles".format(self.deadline)
            )
        for hook in self._pre_cycle_hooks:
            hook(self)
        cycle = self.cycle
        state_arr = self._state_arr
        woken = self._woken
        if woken:
            comp_index = self._comp_index
            in_run = self._in_run
            run_list = self._run_list
            for component in woken:
                idx = comp_index.get(component)
                if idx is None:
                    continue
                state_arr[idx] = ACTIVE
                if not in_run[idx]:
                    in_run[idx] = True
                    insort(run_list, idx)
            woken.clear()
        ticked = self._ticked
        del ticked[:]
        tick_append = ticked.append
        comp_list = self._comp_list
        rec_arr = self._rec_arr
        headk = self._headk
        for idx in self._run_list:
            state = state_arr[idx]
            component = comp_list[idx]
            if state is ACTIVE:
                rec = rec_arr[idx]
                if rec is None:
                    component.tick(cycle)
                elif rec.is_router:
                    if rec.force_slow or not self._router_cycle(
                        component, rec, cycle, headk
                    ):
                        component.tick(cycle)
                        self._refresh_router_rec(component, rec)
                else:
                    self._endpoint_cycle(component, rec, cycle, headk)
                tick_append(idx)
            elif component.fast_poll(cycle):
                state_arr[idx] = ACTIVE
        for observer in self.observers:
            observer.tick(cycle)
        self._advance_vector()
        if cycle & 3 == 3:
            parked = False
            in_run = self._in_run
            for idx in ticked:
                component = comp_list[idx]
                after = component.activity_state()
                if after is not ACTIVE:
                    state_arr[idx] = after
                    if after is PARKED:
                        component.on_park()
                        in_run[idx] = False
                        parked = True
            if parked:
                self._run_list = [i for i in self._run_list if in_run[i]]
        self.cycle = cycle + 1

    def _compression_target(self):
        if not self._vec_ready:
            return EventEngine._compression_target(self)
        if (
            not self._compressible
            or self.degraded
            or self._hot
            or self._woken
        ):
            return None
        nearest = NEVER
        # Observer hint protocol — see EventEngine._compression_target.
        for observer in self.observers:
            probe = getattr(observer, "next_event_cycle", None)
            if probe is None:
                return None
            nxt = probe()
            if nxt is None:
                return None
            if nxt < nearest:
                nearest = nxt
        state_arr = self._state_arr
        comp_list = self._comp_list
        for idx in self._run_list:
            if state_arr[idx] is ACTIVE:
                return None
            # POLL: the probe protocol mirrors the events backend.
            probe = getattr(comp_list[idx], "next_event_cycle", None)
            if probe is None:
                return None
            nxt = probe()
            if nxt is None:
                return None
            if nxt < nearest:
                nearest = nxt
        for hook in self._pre_cycle_hooks:
            owner = getattr(hook, "__self__", None)
            probe = getattr(owner, "next_event_cycle", None)
            if probe is None:
                return None
            nxt = probe()
            if nxt is None:
                return None
            if nxt < nearest:
                nearest = nxt
        if self.deadline is not None and self.deadline < nearest:
            nearest = self.deadline
        return nearest

    # ------------------------------------------------------------------
    # Router fast path: side-effect-free check, then exact replay
    # ------------------------------------------------------------------

    def _router_cycle(self, router, rec, cycle, headk):
        """One cycle of ``router``; False = take the full reference tick.

        A fused single pass over the ports in port order.  Each
        connection either replays its validated steady state inline —
        forwarding and reversing words, counting silence, the STATUS
        emission and the TURN/DROP pipe-exit transitions — or falls
        back to the *reference per-state handler* for that port only:
        routing decisions, watchdog teardowns, close-at-entry drains,
        records, active mutations and live fault transforms all run
        the reference code verbatim.  Handlers are independent across
        ports within a cycle and the pass preserves port order, so
        RNG draw order and every side effect match the reference tick
        exactly; any handler call marks the cached wiring stale and it
        is rebuilt at the end of the pass.

        The only whole-router bail left is a BCB fast-reclamation
        word arriving on an owned backward port (checked through the
        cached ownership mask — the ``VEC_STALE_OWNERSHIP`` mutation
        target), which the full tick services from a clean slate.
        """
        if router.dead:
            # The reference tick returns before doing anything at all.
            return True
        bwd = rec.bwd
        for q in rec.owned:
            info = bwd[q]
            if info is not None:
                channel = info[3]
                if not channel.dead and info[2].slots[-1] is not None:
                    return False  # BCB fast-reclamation drop arriving
        router._cycle = cycle
        if router._shared_bus:
            router.random_stream.begin_cycle(cycle)
        stale = False
        draining = router._draining
        if draining:
            before = len(draining)
            router._service_draining()
            if len(draining) != before:
                stale = True  # a DROP exit released a backward port
        boundary = router.boundary_capture
        dirty = rec.dirty
        if dirty:
            for fp in dirty:
                boundary[fp] = None
            del dirty[:]
        dirty_all = rec.dirty_all
        rec.dirty_all = False
        dirty_append = dirty.append
        enabled = router.config.port_enabled
        timeout = router.signal_timeout
        has_watchdog = timeout is not None
        mut = _mutation.ACTIVE
        recording = router.trace is not None or router.telemetry.enabled
        table = _CRC_TABLE
        hot_add = self._hot.add
        i_base = rec.i_base
        K_DATA = W.DATA
        K_DROP = W.DROP
        K_TURN = W.TURN
        K_IDLE = W.IDLE
        for pair in rec.ports:
            conn = pair[0]
            entry = pair[1]
            # Inline ChannelEnd.recv: the head-kind vector stands in
            # for the Word inspection on the empty-wire fast path.
            if headk[entry[4]]:
                channel = entry[3]
                if channel.dead:
                    word = None
                else:
                    word = entry[1].slots[-1]
                    if word is not None:
                        fault = getattr(channel, entry[5])
                        if fault is not None:
                            word = fault(word)
            else:
                word = None
            fp = entry[0]
            # The boundary register observes the pins even on disabled
            # ports; writes are elided while the register already holds
            # None (the dirty list restores it after any non-None word).
            if word is not None:
                boundary[fp] = word
                dirty_append(fp)
            elif dirty_all:
                boundary[fp] = None
            state = conn.state
            if state == IDLE_STATE:
                if word is None or word.kind != K_DATA or not enabled[fp]:
                    continue
                router._handle_idle(conn, word)  # routing decision
                stale = True
                continue
            if not enabled[fp]:
                continue
            if state == FORWARD_STATE:
                if word is not None and word.kind == K_DROP:
                    router._handle_forward(conn, word)  # close: _begin_drain
                    stale = True
                    continue
                if conn.status_pending:
                    if mut:
                        router._handle_forward(conn, word)
                        stale = True
                        continue
                    # The STATUS word leads the refilling downstream
                    # stream (reference _handle_forward status path).
                    crc = conn.checksum
                    binfo = bwd[conn.bwd_port]
                    binfo[1].staged = W.status(
                        False, crc.value, conn.words_forwarded, router.name
                    )
                    hot_add(binfo[3])
                    conn.status_pending = False
                    if word is not None and word.kind == K_DATA:
                        acc = 0
                        value = word.value
                        while True:
                            acc = table[acc ^ (value & 0xFF)]
                            value >>= 8
                            if value == 0:
                                break
                        crc.value = acc
                        conn.words_forwarded = 1
                    else:
                        crc.value = 0
                        conn.words_forwarded = 0
                    pipe = conn.pipe
                    pipe.pop()
                    pipe.insert(0, word)
                    continue
                if (
                    word is None
                    and has_watchdog
                    and conn.silent_cycles + 1 >= timeout
                ):
                    router._handle_forward(conn, None)  # watchdog teardown
                    stale = True
                    continue
                pipe = conn.pipe
                out = pipe[-1]
                if out is not None and out.kind == K_TURN:
                    if mut or recording:
                        router._handle_forward(conn, word)  # conn-turn record
                        stale = True
                        continue
                    # FORWARD -> REVERSED: the TURN exits the pipe.
                    # begin_new_direction clears the pipe and zeroes the
                    # silence counter, so only the checksum bookkeeping
                    # of the entering word survives.
                    if word is not None and word.kind == K_DATA:
                        crc = conn.checksum
                        acc = crc.value
                        value = word.value
                        while True:
                            acc = table[acc ^ (value & 0xFF)]
                            value >>= 8
                            if value == 0:
                                break
                        crc.value = acc
                        conn.words_forwarded += 1
                    binfo = bwd[conn.bwd_port]
                    binfo[1].staged = out
                    hot_add(binfo[3])
                    conn.state = REVERSED_STATE
                    conn.status_pending = True
                    conn.silent_cycles = 0
                    for i in range(len(pipe)):
                        pipe[i] = None
                    continue
                # FORWARD steady state (reference _handle_forward).
                if word is None:
                    if has_watchdog:
                        conn.silent_cycles += 1
                    moved = _IDLE_WORD
                else:
                    conn.silent_cycles = 0
                    if word.kind == K_DATA:
                        crc = conn.checksum
                        acc = crc.value
                        value = word.value
                        while True:
                            acc = table[acc ^ (value & 0xFF)]
                            value >>= 8
                            if value == 0:
                                break
                        crc.value = acc
                        conn.words_forwarded += 1
                    moved = word
                out = pipe.pop()
                pipe.insert(0, moved)
                if out is not None:
                    binfo = bwd[conn.bwd_port]
                    binfo[1].staged = out
                    hot_add(binfo[3])
                continue
            if state == REVERSED_STATE:
                if word is not None and word.kind == K_DROP:
                    router._handle_reversed(conn, word)  # upstream close
                    stale = True
                    continue
                binfo = bwd[conn.bwd_port]
                if binfo is None:
                    router._handle_reversed(conn, word)
                    stale = True
                    continue
                bchannel = binfo[3]
                if bchannel.dead:
                    rin = None
                else:
                    if getattr(bchannel, binfo[4]) is not None:
                        # Live reverse-side fault: the handler's own
                        # recv applies the transform exactly once.
                        router._handle_reversed(conn, word)
                        stale = True
                        continue
                    rin = binfo[0].slots[-1]
                if (
                    rin is None
                    and has_watchdog
                    and conn.silent_cycles + 1 >= timeout
                ):
                    router._handle_reversed(conn, word)  # watchdog teardown
                    stale = True
                    continue
                if conn.status_pending:
                    if mut:
                        router._handle_reversed(conn, word)
                        stale = True
                        continue
                    # STATUS precedes all reverse data (reference
                    # _handle_reversed status path).
                    boundary[i_base + conn.bwd_port] = rin
                    crc = conn.checksum
                    if rin is None:
                        if has_watchdog:
                            conn.silent_cycles += 1
                    else:
                        conn.silent_cycles = 0
                        if rin.kind == K_DATA:
                            acc = crc.value
                            value = rin.value
                            while True:
                                acc = table[acc ^ (value & 0xFF)]
                                value >>= 8
                                if value == 0:
                                    break
                            crc.value = acc
                            conn.words_forwarded += 1
                    pipe = conn.pipe
                    pipe.pop()
                    pipe.insert(0, rin)
                    entry[2].staged = W.status(
                        False, crc.value, conn.words_forwarded, router.name
                    )
                    hot_add(entry[3])
                    conn.status_pending = False
                    crc.value = 0
                    conn.words_forwarded = 0
                    continue
                pipe = conn.pipe
                out = pipe[-1]
                if out is not None:
                    okind = out.kind
                    if okind == K_DROP:
                        if mut or recording:
                            router._handle_reversed(conn, word)
                            stale = True
                            continue
                        # REVERSED teardown: the DROP exits the pipe;
                        # release the crosspoint and idle the port.
                        # conn.reset() wipes every field the skipped
                        # rin bookkeeping would have touched.
                        q = conn.bwd_port
                        boundary[i_base + q] = rin
                        entry[2].staged = out
                        hot_add(entry[3])
                        router.allocator.release(q)
                        router._bwd_owner[q] = None
                        conn.bwd_port = None
                        conn.reset()
                        stale = True
                        continue
                    if okind == K_TURN:
                        if mut or recording:
                            router._handle_reversed(conn, word)
                            stale = True
                            continue
                        # REVERSED -> FORWARD: the destination handed
                        # the direction back.
                        boundary[i_base + conn.bwd_port] = rin
                        if rin is not None and rin.kind == K_DATA:
                            crc = conn.checksum
                            acc = crc.value
                            value = rin.value
                            while True:
                                acc = table[acc ^ (value & 0xFF)]
                                value >>= 8
                                if value == 0:
                                    break
                            crc.value = acc
                            conn.words_forwarded += 1
                        entry[2].staged = out
                        hot_add(entry[3])
                        conn.state = FORWARD_STATE
                        conn.status_pending = True
                        conn.silent_cycles = 0
                        for i in range(len(pipe)):
                            pipe[i] = None
                        continue
                # REVERSED steady state (reference _handle_reversed).
                boundary[i_base + conn.bwd_port] = rin
                if rin is None:
                    if has_watchdog:
                        conn.silent_cycles += 1
                else:
                    conn.silent_cycles = 0
                    if rin.kind == K_DATA:
                        crc = conn.checksum
                        acc = crc.value
                        value = rin.value
                        while True:
                            acc = table[acc ^ (value & 0xFF)]
                            value >>= 8
                            if value == 0:
                                break
                        crc.value = acc
                        conn.words_forwarded += 1
                out = pipe.pop()
                pipe.insert(0, rin)
                entry[2].staged = out if out is not None else _IDLE_WORD
                hot_add(entry[3])
                continue
            # SETUP / BLOCKED / DISCARD: replay only silence counting
            # and silent swallowing; every transition word runs the
            # reference handler.
            if state == DISCARD_STATE and conn.drop_then_idle:
                router._handle_discard(conn, word)  # deferred DROP reply
                stale = True
                continue
            if word is None:
                if has_watchdog:
                    sc = conn.silent_cycles + 1
                    if sc >= timeout:
                        if state == SETUP_STATE:
                            router._handle_setup(conn, None)
                        elif state == BLOCKED_STATE:
                            router._handle_blocked(conn, None)
                        else:
                            router._handle_discard(conn, None)
                        stale = True
                        continue
                    conn.silent_cycles = sc
                continue
            kind = word.kind
            if kind == K_DROP or kind == K_TURN or (
                state == SETUP_STATE and kind != K_IDLE
            ):
                if state == SETUP_STATE:
                    router._handle_setup(conn, word)
                elif state == BLOCKED_STATE:
                    router._handle_blocked(conn, word)
                else:
                    router._handle_discard(conn, word)
                stale = True
                continue
            conn.silent_cycles = 0
        if stale:
            self._refresh_router_rec(router, rec)
        return True

    # ------------------------------------------------------------------
    # Endpoint fast path
    # ------------------------------------------------------------------

    def _endpoint_cycle(self, endpoint, rec, cycle, headk):
        endpoint._cycle = cycle
        rt = endpoint.reply_timeout
        K_DATA = W.DATA
        K_DROP = W.DROP
        K_TURN = W.TURN
        for rentry in rec.recv:
            rstate = rentry[2]
            phase = rstate.phase
            hk = headk[rentry[1]]
            if phase == _RX_IDLE:
                # An idle receiver with an empty wire head is the
                # reference tick's most common no-op: skip it on the
                # array read alone.  A non-DATA head is equally inert.
                if hk == 0:
                    continue
                channel = rentry[3]
                if channel.dead:
                    continue
                word = rentry[4].slots[-1]
                if word is not None:
                    fault = getattr(channel, rentry[5])
                    if fault is not None:
                        word = fault(word)
                if word is not None and word.kind == K_DATA:
                    rstate.buffer = [word.value]
                    rstate.phase = _RX_COLLECT
                    rstate.timer = 0
                continue
            if phase == _RX_COLLECT:
                word = None
                if hk:
                    channel = rentry[3]
                    if not channel.dead:
                        word = rentry[4].slots[-1]
                        if word is not None:
                            fault = getattr(channel, rentry[5])
                            if fault is not None:
                                word = fault(word)
                if word is None:
                    timer = rstate.timer + 1
                    if timer >= rt:
                        rstate.reset()
                    else:
                        rstate.timer = timer
                    continue
                rstate.timer = 0
                kind = word.kind
                if kind == K_DATA:
                    rstate.buffer.append(word.value)
                elif kind == K_TURN:
                    endpoint._assemble_reply(rstate)
                elif kind == K_DROP:
                    rstate.reset()
                continue
            if phase == _RX_REPLY:
                channel = rentry[3]
                if (
                    hk
                    and not channel.dead
                    and getattr(channel, rentry[5]) is not None
                    and rentry[4].slots[-1] is not None
                ):
                    # A live fault transform must still be applied to
                    # the (discarded) incoming word: the reference recv
                    # draws from it even while replying.
                    endpoint._service_receive(rentry[0])
                    continue
                if rstate.delay > 0:
                    rstate.delay -= 1
                    rentry[6].staged = _IDLE_WORD
                else:
                    reply = rstate.reply
                    position = rstate.reply_position
                    rentry[6].staged = reply[position]
                    position += 1
                    rstate.reply_position = position
                    if position >= len(reply):
                        rstate.phase = _RX_AWAIT_CLOSE
                        rstate.timer = 0
                hook = channel.hot_hook
                if hook is not None:
                    hook(channel)
                continue
            # _RX_AWAIT_CLOSE
            word = None
            if hk:
                channel = rentry[3]
                if not channel.dead:
                    word = rentry[4].slots[-1]
                    if word is not None:
                        fault = getattr(channel, rentry[5])
                        if fault is not None:
                            word = fault(word)
            if word is None:
                timer = rstate.timer + 1
                if timer >= rt:
                    rstate.reset()
                else:
                    rstate.timer = timer
                continue
            rstate.timer = 0
            kind = word.kind
            if kind == K_DROP:
                rstate.reset()
            elif kind == K_DATA:
                # Another forward round (Section 5.1).
                rstate.buffer = [word.value]
                rstate.phase = _RX_COLLECT
        sends = endpoint._sends
        if sends:
            src = rec.src
            telemetry_on = endpoint.telemetry.enabled
            for port in list(sends):
                send = sends[port]
                end, channel, srow, rx_pipe, fault_name, bcb_pipe = src[port]
                if channel.dead:
                    bcb = None
                else:
                    bcb = bcb_pipe.slots[-1]
                if bcb is not None or telemetry_on:
                    endpoint._service_send(send)
                    continue
                phase = send.phase
                if phase == _STREAMING:
                    # Inline the streaming steady state (one word per
                    # cycle; reference _service_send).
                    words = send.words
                    position = send.position
                    end._tx.staged = words[position]
                    hook = channel.hot_hook
                    if hook is not None:
                        hook(channel)
                    position += 1
                    send.position = position
                    if position >= len(words):
                        send.phase = _AWAIT_REPLY
                        send.timer = 0
                elif phase == _AWAIT_REPLY:
                    # Inline the await steady states: silence below the
                    # reply timeout, and STATUS/DATA reply words.
                    if channel.dead or headk[srow] == 0:
                        if send.timer + 1 >= rt:
                            endpoint._service_send(send)
                        else:
                            send.timer += 1
                        continue
                    if getattr(channel, fault_name) is not None:
                        endpoint._service_send(send)
                        continue
                    word = rx_pipe.slots[-1]
                    kind = word.kind
                    if kind == W.STATUS:
                        send.timer = 0
                        send.statuses.append(word.value)
                    elif kind == K_DATA:
                        send.timer = 0
                        send.reply_words.append(word.value)
                    elif kind == W.IDLE:
                        if send.timer + 1 >= rt:
                            endpoint._service_send(send)
                        else:
                            send.timer += 1
                    else:
                        endpoint._service_send(send)
                else:
                    endpoint._service_send(send)
        if (
            endpoint.traffic_source is not None
            and len(endpoint._queue) + len(sends) < endpoint.max_outstanding
        ):
            endpoint._maybe_generate(cycle)
        if endpoint._queue and len(sends) < endpoint.max_outstanding:
            endpoint._maybe_start_send(cycle)

    # ------------------------------------------------------------------
    # Vectorized channel advance
    # ------------------------------------------------------------------

    def _advance_vector(self):
        hot = self._hot
        if not hot:
            return
        mutated = _mutation.ACTIVE
        drop_status = mutated and _mutation.enabled(
            _mutation.VEC_DROP_STATUS_KIND
        )
        skip_wake = mutated and _mutation.enabled(_mutation.VEC_SKIP_WAKE)
        crecs = self._crecs
        kcodes = KIND_CODES
        headk = self._headk
        chocc = self._chocc
        woken_add = self._woken.add
        K_DATA = W.DATA
        cold = []
        grows = None
        gcodes = None
        gchans = None
        for channel in hot:
            crec = crecs[channel]
            pipes = crec[2]
            p0 = pipes[0]
            p1 = pipes[1]
            down = p0.staged
            up = p1.staged
            if down is not None or up is not None:
                if (
                    down is not None
                    and up is not None
                    and down.kind == K_DATA
                    and up.kind == K_DATA
                ):
                    channel.half_duplex_violations += 1
                telemetry = channel.telemetry
                if telemetry is not None:
                    telemetry.channel_activity(channel, down, up)
            if crec[5]:
                # delay-1 channel: the single-column roll and gather
                # collapse to scalar head-kind stores.
                base = crec[1]
                ci = crec[0]
                occ = chocc[ci]
                slots = p0.slots
                leaving = slots[0]
                if down is not None:
                    slots[0] = down
                    p0.staged = None
                    p0.occupied = 1
                    code = kcodes[down.kind]
                    if drop_status and code == KIND_STATUS:
                        code = KIND_EMPTY
                    headk[base] = code
                    if leaving is None:
                        occ += 1
                elif leaving is not None:
                    slots[0] = None
                    p0.occupied = 0
                    headk[base] = 0
                    occ -= 1
                slots = p1.slots
                leaving = slots[0]
                if up is not None:
                    slots[0] = up
                    p1.staged = None
                    p1.occupied = 1
                    code = kcodes[up.kind]
                    if drop_status and code == KIND_STATUS:
                        code = KIND_EMPTY
                    headk[base + 1] = code
                    if leaving is None:
                        occ += 1
                elif leaving is not None:
                    slots[0] = None
                    p1.occupied = 0
                    headk[base + 1] = 0
                    occ -= 1
                p2 = pipes[2]
                staged = p2.staged
                slots = p2.slots
                leaving = slots[0]
                if staged is not None:
                    slots[0] = staged
                    p2.staged = None
                    p2.occupied = 1
                    headk[base + 2] = KIND_BCB
                    if leaving is None:
                        occ += 1
                elif leaving is not None:
                    slots[0] = None
                    p2.occupied = 0
                    headk[base + 2] = 0
                    occ -= 1
                p3 = pipes[3]
                staged = p3.staged
                slots = p3.slots
                leaving = slots[0]
                if staged is not None:
                    slots[0] = staged
                    p3.staged = None
                    p3.occupied = 1
                    headk[base + 3] = KIND_BCB
                    if leaving is None:
                        occ += 1
                elif leaving is not None:
                    slots[0] = None
                    p3.occupied = 0
                    headk[base + 3] = 0
                    occ -= 1
                chocc[ci] = occ
                if occ:
                    if not skip_wake:
                        side = crec[4]
                        if side is not None and (
                            headk[base] or headk[base + 2]
                        ):
                            woken_add(side)
                        side = crec[3]
                        if side is not None and (
                            headk[base + 1] or headk[base + 3]
                        ):
                            woken_add(side)
                else:
                    cold.append(channel)
            else:
                # Multi-stage channel: move the words through the real
                # pipes and collect the staged codes for the array roll.
                if grows is None:
                    grows = []
                    gcodes = []
                    gchans = []
                gchans.append(crec)
                base = crec[1]
                for k in range(4):
                    pipe = pipes[k]
                    staged = pipe.staged
                    if staged is None and pipe.occupied == 0:
                        continue
                    slots = pipe.slots
                    leaving = slots.pop()
                    slots.insert(0, staged)
                    pipe.staged = None
                    pipe.occupied += (staged is not None) - (
                        leaving is not None
                    )
                    grows.append(base + k)
                    if staged is None:
                        gcodes.append(KIND_EMPTY)
                    elif k >= 2:
                        gcodes.append(KIND_BCB)
                    else:
                        code = kcodes[staged.kind]
                        if drop_status and code == KIND_STATUS:
                            code = KIND_EMPTY
                        gcodes.append(code)
        if gchans is not None:
            # Roll the kind matrix for the moved multi-stage rows and
            # re-gather their heads in whole-array ops.  (delay-1 rows
            # keep their matrix column stale on purpose: their head
            # kind lives in the flat vector alone.)
            if grows:
                kindm = self._kindm
                headcol = self._headcol
                row_idx = _np.fromiter(grows, _np.int64, len(grows))
                staged_codes = _np.fromiter(gcodes, _np.int8, len(gcodes))
                leaving_codes = kindm[row_idx, headcol[row_idx]]
                _roll_rows(kindm, row_idx, staged_codes, headcol)
                delta = (staged_codes != KIND_EMPTY).astype(_np.int32)
                delta -= leaving_codes != KIND_EMPTY
                if mutated and _mutation.enabled(
                    _mutation.VEC_ROLL_OFF_BY_ONE
                ):
                    cols = _np.maximum(headcol[row_idx] - 1, 0)
                else:
                    cols = headcol[row_idx]
                heads = kindm[row_idx, cols].tolist()
                deltas = delta.tolist()
                for i in range(len(grows)):
                    row = grows[i]
                    headk[row] = heads[i]
                    chocc[row >> 2] += deltas[i]
            for crec in gchans:
                base = crec[1]
                if chocc[crec[0]]:
                    if not skip_wake:
                        side = crec[4]
                        if side is not None and (
                            headk[base] or headk[base + 2]
                        ):
                            woken_add(side)
                        side = crec[3]
                        if side is not None and (
                            headk[base + 1] or headk[base + 3]
                        ):
                            woken_add(side)
                else:
                    cold.append(crec[6])
        for channel in cold:
            hot.discard(channel)


# Register at import time.  repro.sim.backends imports this module at
# its own tail, so loading either module registers the backend; the
# circular import is safe because EventEngine is defined before the
# backends module imports us.
from repro.sim import backends as _backends  # noqa: E402

_backends.BACKENDS["vector"] = VectorEngine
