"""Lightweight event tracing for simulations.

Routers and endpoints emit trace events (connection opened, blocked,
turned, dropped, message delivered, ...) when a :class:`Trace` is
attached.  Traces are the raw material for the experiment harness's
statistics and for debugging protocol interactions.
"""

from collections import Counter, deque


class TraceEvent:
    """A single timestamped event."""

    __slots__ = ("cycle", "source", "kind", "detail")

    def __init__(self, cycle, source, kind, detail=None):
        self.cycle = cycle
        self.source = source
        self.kind = kind
        self.detail = detail

    def __repr__(self):
        return "<TraceEvent @{} {} {} {}>".format(
            self.cycle, self.source, self.kind, self.detail
        )


class Trace:
    """Collects :class:`TraceEvent` objects and summary counters.

    ``enabled_kinds`` restricts recording to an explicit set of event
    kinds; with the default of None every event is kept.  Counters are
    always maintained, so long statistical runs can disable full event
    retention (``keep_events=False``) and still aggregate outcomes.

    ``max_events`` bounds retention to the most recent N events (a ring
    buffer): the oldest event is evicted on overflow and counted in
    ``dropped_events``.  Counters keep counting evicted events.

    Events are indexed by kind as they arrive, so :meth:`of_kind` costs
    one dict lookup plus a copy of the matching events rather than a
    scan of the whole trace.
    """

    def __init__(self, enabled_kinds=None, keep_events=True, max_events=None):
        if max_events is not None and max_events < 1:
            raise ValueError(
                "max_events must be >= 1 or None, got {}".format(max_events)
            )
        self.enabled_kinds = enabled_kinds
        self.keep_events = keep_events
        self.max_events = max_events
        self.counts = Counter()
        self.dropped_events = 0
        self.events = deque(maxlen=max_events) if max_events else []
        self._by_kind = {}

    def record(self, cycle, source, kind, detail=None):
        if self.enabled_kinds is not None and kind not in self.enabled_kinds:
            return
        self.counts[kind] += 1
        if not self.keep_events:
            return
        if self.max_events is not None and len(self.events) == self.max_events:
            # The deque drops its head on append; mirror the eviction
            # in the per-kind index (the head of its kind's bucket —
            # both structures preserve arrival order).
            evicted = self.events[0]
            self._by_kind[evicted.kind].popleft()
            self.dropped_events += 1
        event = TraceEvent(cycle, source, kind, detail)
        self.events.append(event)
        bucket = self._by_kind.get(kind)
        if bucket is None:
            bucket = self._by_kind[kind] = deque()
        bucket.append(event)

    def of_kind(self, kind):
        """All recorded events of the given kind, in time order."""
        return list(self._by_kind.get(kind, ()))

    def clear(self):
        self.events = deque(maxlen=self.max_events) if self.max_events else []
        self.counts = Counter()
        self._by_kind = {}
        self.dropped_events = 0
