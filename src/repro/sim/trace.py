"""Lightweight event tracing for simulations.

Routers and endpoints emit trace events (connection opened, blocked,
turned, dropped, message delivered, ...) when a :class:`Trace` is
attached.  Traces are the raw material for the experiment harness's
statistics and for debugging protocol interactions.
"""

from collections import Counter


class TraceEvent:
    """A single timestamped event."""

    __slots__ = ("cycle", "source", "kind", "detail")

    def __init__(self, cycle, source, kind, detail=None):
        self.cycle = cycle
        self.source = source
        self.kind = kind
        self.detail = detail

    def __repr__(self):
        return "<TraceEvent @{} {} {} {}>".format(
            self.cycle, self.source, self.kind, self.detail
        )


class Trace:
    """Collects :class:`TraceEvent` objects and summary counters.

    ``enabled_kinds`` restricts recording to an explicit set of event
    kinds; with the default of None every event is kept.  Counters are
    always maintained, so long statistical runs can disable full event
    retention (``keep_events=False``) and still aggregate outcomes.
    """

    def __init__(self, enabled_kinds=None, keep_events=True):
        self.events = []
        self.counts = Counter()
        self.enabled_kinds = enabled_kinds
        self.keep_events = keep_events

    def record(self, cycle, source, kind, detail=None):
        if self.enabled_kinds is not None and kind not in self.enabled_kinds:
            return
        self.counts[kind] += 1
        if self.keep_events:
            self.events.append(TraceEvent(cycle, source, kind, detail))

    def of_kind(self, kind):
        """All recorded events of the given kind, in time order."""
        return [event for event in self.events if event.kind == kind]

    def clear(self):
        self.events = []
        self.counts = Counter()
