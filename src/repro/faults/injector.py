"""Scheduled fault injection into a live network simulation."""

import random

from repro.faults.model import DeadLink, DeadRouter


class FaultInjector:
    """Applies faults to a network at scheduled cycles.

    Attach one injector per :class:`~repro.network.builder.MetroNetwork`;
    it registers a pre-cycle hook with the engine so faults strike
    between clock edges, exactly like hardware dying mid-operation.

    ::

        injector = FaultInjector(network)
        injector.at(100, DeadRouter(1, 0, 2))
        injector.at(500, DeadLink(src_key, dst_key))
        network.run(...)
    """

    def __init__(self, network):
        self.network = network
        self._scheduled = []  # (cycle, fault, action)
        self.applied = []     # (cycle, fault) history
        network.engine.add_pre_cycle_hook(self._hook)

    def at(self, cycle, fault):
        """Apply ``fault`` just before the given cycle."""
        self._scheduled.append((cycle, fault, "apply"))
        return fault

    def revert_at(self, cycle, fault):
        """Undo ``fault`` just before the given cycle (transients)."""
        self._scheduled.append((cycle, fault, "revert"))
        return fault

    def now(self, fault):
        """Apply ``fault`` immediately (static, pre-run faults)."""
        fault.apply(self.network)
        self.applied.append((self.network.engine.cycle, fault))
        return fault

    def _hook(self, engine):
        due = [entry for entry in self._scheduled if entry[0] <= engine.cycle]
        for entry in due:
            self._scheduled.remove(entry)
            _cycle, fault, action = entry
            if action == "apply":
                fault.apply(self.network)
                self.applied.append((engine.cycle, fault))
            else:
                fault.revert(self.network)

    def pending(self):
        return list(self._scheduled)


def router_to_router_channels(network):
    """Channel keys of every inter-router wire (endpoint wires excluded)."""
    keys = []
    for (src_key, dst_key), _channel in network.channels.items():
        if src_key[0] == "router" and dst_key[0] == "router":
            keys.append((src_key, dst_key))
    return keys


def random_fault_scenario(
    network, n_dead_links=0, n_dead_routers=0, seed=0, exclude_final_stage=False
):
    """A reproducible random set of static faults.

    Dead links are drawn from inter-router wires only (killing an
    endpoint's wire trivially disconnects it, which measures nothing
    about the network).  Dead routers may exclude the final stage —
    losing a dilation-1 final router is survivable for topology but
    removing several can cut every wire into some endpoint.
    """
    rng = random.Random(seed)
    faults = []
    link_pool = router_to_router_channels(network)
    rng.shuffle(link_pool)
    for src_key, dst_key in link_pool[:n_dead_links]:
        faults.append(DeadLink(src_key=src_key, dst_key=dst_key))
    router_pool = []
    last = network.plan.n_stages - 1
    for (stage, block, index) in network.router_grid:
        if exclude_final_stage and stage == last:
            continue
        router_pool.append((stage, block, index))
    rng.shuffle(router_pool)
    for stage, block, index in router_pool[:n_dead_routers]:
        faults.append(DeadRouter(stage, block, index))
    return faults
