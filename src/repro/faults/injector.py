"""Scheduled fault injection into a live network simulation."""

import logging
import random
from collections import namedtuple

from repro.faults.model import DeadLink, DeadRouter, FlakyLink, FlakyRouter

log = logging.getLogger("repro.faults")

#: One entry of :attr:`FaultInjector.applied`.  Tuple-compatible with
#: the historical ``(cycle, fault)`` pairs — ``entry[0]`` is the cycle
#: the action actually took effect, ``entry[1]`` the fault — plus the
#: originally requested cycle (``scheduled``; equals ``cycle`` unless
#: the fault was registered late) and the ``action`` taken
#: ("apply"/"revert").
AppliedFault = namedtuple("AppliedFault", ["cycle", "fault", "scheduled", "action"])


class FaultInjector:
    """Applies faults to a network at scheduled cycles.

    Attach one injector per :class:`~repro.network.builder.MetroNetwork`;
    it registers a pre-cycle hook with the engine so faults strike
    between clock edges, exactly like hardware dying mid-operation.

    ::

        injector = FaultInjector(network)
        injector.at(100, DeadRouter(1, 0, 2))
        injector.at(500, DeadLink(src_key, dst_key))
        injector.transient(FlakyLink(src_key, dst_key, mtbf=600, mttr=150))
        network.run(...)
    """

    def __init__(self, network):
        self.network = network
        self._scheduled = []  # (cycle, fault, action)
        self._transients = []
        self.applied = []     # AppliedFault history
        network.engine.add_pre_cycle_hook(self._hook)

    def at(self, cycle, fault):
        """Apply ``fault`` just before the given cycle."""
        self._scheduled.append((cycle, fault, "apply"))
        return fault

    def revert_at(self, cycle, fault):
        """Undo ``fault`` just before the given cycle (transients)."""
        self._scheduled.append((cycle, fault, "revert"))
        return fault

    def now(self, fault):
        """Apply ``fault`` immediately (static, pre-run faults)."""
        fault.apply(self.network)
        cycle = self.network.engine.cycle
        self.applied.append(AppliedFault(cycle, fault, cycle, "apply"))
        return fault

    def transient(self, fault):
        """Register a :class:`~repro.faults.model.TransientFault`.

        The fault's duty cycle is polled every engine cycle; each
        apply/revert transition it takes is recorded in
        :attr:`applied`.
        """
        self._transients.append(fault)
        return fault

    def _hook(self, engine):
        due = [entry for entry in self._scheduled if entry[0] <= engine.cycle]
        for entry in due:
            self._scheduled.remove(entry)
            scheduled, fault, action = entry
            if scheduled < engine.cycle:
                log.warning(
                    "fault %s scheduled for cycle %d applied late at cycle %d",
                    fault.describe(),
                    scheduled,
                    engine.cycle,
                )
            if action == "apply":
                fault.apply(self.network)
            else:
                fault.revert(self.network)
            self.applied.append(
                AppliedFault(engine.cycle, fault, scheduled, action)
            )
        for fault in self._transients:
            for action, cycle in fault.poll(engine.cycle, self.network):
                self.applied.append(AppliedFault(cycle, fault, cycle, action))

    def pending(self):
        return list(self._scheduled)

    def next_event_cycle(self):
        """The earliest cycle this injector could act; inf when spent.

        Lets the event-driven backend's idle-run compression prove the
        hook is a no-op until then (scheduled faults fire at known
        cycles; transients expose their next duty-cycle transition).
        """
        nearest = float("inf")
        for cycle, _fault, _action in self._scheduled:
            if cycle < nearest:
                nearest = cycle
        for fault in self._transients:
            nxt = fault.next_change_cycle()
            if nxt < nearest:
                nearest = nxt
        return nearest


def router_to_router_channels(network):
    """Channel keys of every inter-router wire (endpoint wires excluded)."""
    keys = []
    for (src_key, dst_key), _channel in network.channels.items():
        if src_key[0] == "router" and dst_key[0] == "router":
            keys.append((src_key, dst_key))
    return keys


def random_fault_scenario(
    network, n_dead_links=0, n_dead_routers=0, seed=0, exclude_final_stage=False
):
    """A reproducible random set of static faults.

    Dead links are drawn from inter-router wires only (killing an
    endpoint's wire trivially disconnects it, which measures nothing
    about the network).  Dead routers may exclude the final stage —
    losing a dilation-1 final router is survivable for topology but
    removing several can cut every wire into some endpoint.
    """
    rng = random.Random(seed)
    faults = []
    link_pool = router_to_router_channels(network)
    rng.shuffle(link_pool)
    for src_key, dst_key in link_pool[:n_dead_links]:
        faults.append(DeadLink(src_key=src_key, dst_key=dst_key))
    router_pool = []
    last = network.plan.n_stages - 1
    for (stage, block, index) in network.router_grid:
        if exclude_final_stage and stage == last:
            continue
        router_pool.append((stage, block, index))
    rng.shuffle(router_pool)
    for stage, block, index in router_pool[:n_dead_routers]:
        faults.append(DeadRouter(stage, block, index))
    return faults


def random_transient_scenario(
    network,
    n_flaky_links=0,
    n_flaky_routers=0,
    mtbf=600,
    mttr=150,
    seed=0,
    burst=1,
    burst_gap=None,
    start=0,
    exclude_final_stage=True,
):
    """A reproducible random set of transient (duty-cycled) faults.

    Flaky links are drawn from inter-router wires; flaky routers from
    the middle stages (optionally excluding the final stage, same
    rationale as :func:`random_fault_scenario` — plus stage-0 routers,
    whose source ports endpoints attach to directly, so masking can
    never heal them).  Each fault gets its own RNG stream derived from
    ``seed`` so the set is a pure function of its arguments.  Register
    the returned faults with ``injector.transient(...)``.
    """
    rng = random.Random(seed)
    faults = []
    link_pool = router_to_router_channels(network)
    rng.shuffle(link_pool)
    for src_key, dst_key in link_pool[:n_flaky_links]:
        faults.append(
            FlakyLink(
                src_key=src_key,
                dst_key=dst_key,
                mtbf=mtbf,
                mttr=mttr,
                seed=rng.getrandbits(32),
                burst=burst,
                burst_gap=burst_gap,
                start=start,
            )
        )
    router_pool = []
    last = network.plan.n_stages - 1
    for (stage, block, index) in network.router_grid:
        if stage == 0:
            continue
        if exclude_final_stage and stage == last:
            continue
        router_pool.append((stage, block, index))
    rng.shuffle(router_pool)
    for stage, block, index in router_pool[:n_flaky_routers]:
        faults.append(
            FlakyRouter(
                stage,
                block,
                index,
                mtbf=mtbf,
                mttr=mttr,
                seed=rng.getrandbits(32),
                burst=burst,
                burst_gap=burst_gap,
                start=start,
            )
        )
    return faults
