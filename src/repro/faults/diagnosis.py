"""On-line fault localization and masking.

The paper's diagnosis story (Sections 3 and 5.1): message-level
evidence (missing acks, per-router STATUS checksums) narrows a fault
to a region; the scan system then *isolates* candidate ports — each
port can be disabled and tested while the rest of the router carries
traffic — runs boundary-scan patterns across the suspect wires, and
finally leaves the faulty ports disabled so the fault is *masked* and
can no longer corrupt messages.

The flow implemented here:

1. :func:`suspect_stage_from_statuses` — message-level localization.
2. :func:`port_isolation_test` — EXTEST patterns across one wire
   between a (disabled) backward port and the neighbouring (disabled)
   forward port, observed through the neighbour's boundary register.
3. :func:`diagnose_stage` — sweep every wire between two stages.
4. :func:`mask_link` — leave both ports of a bad wire disabled.
"""

from repro.scan.controller import ScanController

DEFAULT_PATTERNS = (0b0101, 0b1010, 0b1111, 0b0000, 0b0011)


def suspect_stage_from_statuses(expected_checksums, statuses):
    """Message-level localization from one turned connection.

    Returns the 0-based index of the first stage whose reported
    checksum disagrees with the expectation (corruption entered on the
    wire into that stage or inside its router), or None when all
    stages agree.  A short status list (blocked/dropped connection)
    is localized to the first missing stage.
    """
    for index, expected in enumerate(expected_checksums):
        if index >= len(statuses):
            return index
        if statuses[index].blocked or statuses[index].checksum != expected:
            return index
    return None


def _link_ends(network, src_key, dst_key):
    """Resolve (upstream router, bwd port, downstream router, fwd port)."""
    if src_key[0] != "router" or dst_key[0] != "router":
        raise ValueError("port isolation tests run on inter-router wires")
    _, s_stage, s_block, s_index, s_port = src_key
    _, d_stage, d_block, d_index, d_port = dst_key
    upstream = network.router_grid[(s_stage, s_block, s_index)]
    downstream = network.router_grid[(d_stage, d_block, d_index)]
    return upstream, s_port, downstream, d_port


def port_isolation_test(network, src_key, dst_key, patterns=DEFAULT_PATTERNS):
    """Test one wire with scan patterns; returns (passed, observations).

    Both facing ports are disabled for the duration (the rest of both
    routers keeps routing), patterns are driven via EXTEST from the
    upstream side and observed via SAMPLE at the downstream boundary,
    then the ports are re-enabled.
    """
    upstream, bwd_port, downstream, fwd_port = _link_ends(network, src_key, dst_key)
    up_scan = ScanController(upstream)
    down_scan = ScanController(downstream)
    up_port_id = upstream.config.backward_port_id(bwd_port)
    down_port_id = downstream.config.forward_port_id(fwd_port)

    up_scan.disable_port(up_port_id, drive=True)
    down_scan.disable_port(down_port_id)
    mask = (1 << downstream.params.w) - 1
    observations = []
    try:
        for pattern in patterns:
            up_scan.extest_drive(bwd_port, pattern & mask)
            # One cycle to launch, plus the wire's pipeline depth.
            delay = network.channels[(src_key, dst_key)].delay
            network.run(1 + delay)
            seen = down_scan.sample_boundary()[fwd_port]
            observations.append((pattern & mask, seen))
    finally:
        up_scan.enable_port(up_port_id)
        down_scan.enable_port(down_port_id)
    passed = all(drove == seen for drove, seen in observations)
    return passed, observations


def diagnose_stage(network, stage, patterns=DEFAULT_PATTERNS):
    """Isolation-test every wire from ``stage`` to the next layer.

    Returns the list of failing ``(src_key, dst_key)`` wire keys.
    """
    failing = []
    for (src_key, dst_key) in network.channels:
        if src_key[0] != "router" or dst_key[0] != "router":
            continue
        if src_key[1] != stage:
            continue
        passed, _obs = port_isolation_test(network, src_key, dst_key, patterns)
        if not passed:
            failing.append((src_key, dst_key))
    return failing


def mask_link(network, src_key, dst_key):
    """Disable both ports facing a faulty wire (permanent masking).

    After masking, the allocator never selects the upstream port and
    the downstream port ignores its pins: the fault can no longer
    corrupt message traffic, and the network runs on its redundancy.
    """
    upstream, bwd_port, downstream, fwd_port = _link_ends(network, src_key, dst_key)
    ScanController(upstream).disable_port(upstream.config.backward_port_id(bwd_port))
    ScanController(downstream).disable_port(
        downstream.config.forward_port_id(fwd_port)
    )


def diagnose_and_mask(network, stage, patterns=DEFAULT_PATTERNS):
    """Full repair loop for one inter-stage layer; returns masked wires."""
    failing = diagnose_stage(network, stage, patterns)
    for src_key, dst_key in failing:
        mask_link(network, src_key, dst_key)
    return failing
