"""Online self-healing: detect → localize → mask → recover.

The paper's reliability story is a *closed loop* (Sections 1, 4, 5.1):
sources detect damaged connections from the evidence their own
protocol already produces (missing or blocked STATUS words, bad
checksums, silence), retries route around the damage, and — once the
fault is localized — scan control disables the faulty ports so the
fault is masked and stops corrupting traffic.  The pieces exist
elsewhere in this reproduction (``endpoint.interface`` produces the
evidence, ``faults.diagnosis`` runs isolation tests, ``scan.netconfig``
writes port masks); :class:`FaultManager` closes the loop *online*,
while traffic keeps flowing.

The loop:

1. **Detect.**  Every endpoint's ``fault_listener`` hook reports each
   failed attempt (cause + STATUS vector) to the manager as it
   happens.
2. **Localize.**  Each failure is converted to a *suspect stage*:
   blocked attempts name the blocking stage directly (weakly — blocking
   is mostly congestion), while timeouts/corruption/nacks are localized
   by comparing the attempt's STATUS checksums against the expected
   values (:func:`~repro.faults.diagnosis.suspect_stage_from_statuses`).
   Per-stage suspicion scores accumulate with exponential decay, so
   isolated failures fade while a real fault's steady evidence ramps.
3. **Mask.**  When a stage's suspicion crosses threshold the manager
   schedules a repair and (by default) stops the engine; the driving
   loop calls :meth:`service` between run windows.  A repair
   isolation-tests every wire of the suspect layers — quiescing each
   wire's circuits first so live traffic cannot fake a failure — and
   leaves the ports of every failing wire disabled through the scan
   fabric.  Dead routers need no special case: a silent router fails
   the isolation tests of all its wires, so the whole region is
   masked.
4. **Recover.**  The manager watches the delivered rate (windowed
   count of acked deliveries) rebound toward its pre-fault peak and
   marks repairs ``verified`` when it crosses the recovery ratio.

Isolation tests run ``network.run(...)`` internally, so :meth:`service`
must be called *between* engine runs, never from inside a tick — the
manager only accumulates evidence during the simulation proper.
"""

from repro.endpoint import messages as M
from repro.faults.diagnosis import (
    DEFAULT_PATTERNS,
    _link_ends,
    port_isolation_test,
    suspect_stage_from_statuses,
)
from repro.scan.netconfig import NetworkScanFabric
from repro.sim.component import Component

#: Evidence weight per failure cause.  Blocked attempts are mostly
#: congestion, so they barely move the needle; silence, corruption and
#: nacks are strong fault signals.
DEFAULT_WEIGHTS = {
    M.TIMEOUT: 1.0,
    M.DIED: 1.0,
    M.CORRUPTED: 1.5,
    M.NACKED: 1.0,
    M.BLOCKED: 0.05,
    M.BLOCKED_FAST: 0.05,
}


class FaultManager(Component):
    """Evidence-driven online fault localization and scan masking.

    :param network: the :class:`~repro.network.builder.MetroNetwork`
        to manage; the manager installs itself as an engine observer
        and hooks every endpoint's ``fault_listener``.
    :param fabric: the :class:`~repro.scan.netconfig.NetworkScanFabric`
        to issue repairs through (one is built when omitted).
    :param threshold: suspicion score at which a stage is repaired.
    :param decay_half_life: cycles for half of a stage's suspicion to
        decay; isolated failures fade, persistent faults ramp.
    :param weights: evidence weight per failure cause (missing causes
        count 0); defaults to :data:`DEFAULT_WEIGHTS`.
    :param patterns: scan test patterns for wire isolation tests.
    :param auto_stop: stop the engine when a repair becomes due so a
        driving loop can :meth:`service` it immediately; with False
        the loop polls :meth:`repairs_due` on its own schedule.
    :param rate_window: cycles per delivered-rate window (recovery
        verification granularity).
    :param recovery_ratio: fraction of the pre-repair peak window rate
        a post-repair window must reach for the repair to be
        ``verified``.
    :param max_masks: stop masking after this many wires (safety valve
        against an evidence storm disabling the whole network).
    :param cooldown: cycles after a stage's repair during which fresh
        threshold crossings for it are ignored — congestion noise
        (masking shrinks path diversity, so blocked evidence rises)
        must not trigger repeated fruitless isolation sweeps.
    """

    def __init__(
        self,
        network,
        fabric=None,
        threshold=5.0,
        decay_half_life=600,
        weights=None,
        patterns=DEFAULT_PATTERNS,
        auto_stop=True,
        rate_window=200,
        recovery_ratio=0.9,
        max_masks=None,
        cooldown=1000,
    ):
        self.network = network
        self.name = "faultmgr"
        self.fabric = fabric if fabric is not None else NetworkScanFabric(network)
        self.threshold = threshold
        self.decay_half_life = decay_half_life
        self.weights = dict(DEFAULT_WEIGHTS if weights is None else weights)
        self.patterns = patterns
        self.auto_stop = auto_stop
        self.rate_window = rate_window
        self.recovery_ratio = recovery_ratio
        self.max_masks = max_masks
        self.cooldown = cooldown
        self._cooldown_until = {}

        self.n_stages = network.plan.n_stages
        #: Per-stage suspicion scores (exponentially decayed).
        self.suspicion = {}
        self._touched = {}
        #: Stages whose suspicion crossed threshold, awaiting service().
        self.due = []
        #: Wire keys ``(src_key, dst_key)`` already masked.
        self.masked = set()
        #: Picklable mask history: dicts of cycle/src/dst/stage.
        self.mask_events = []
        #: Repair history: dicts of cycle/stage/layers/masked/verified.
        self.repairs = []
        self.evidence_count = 0
        self._servicing = False

        #: Delivered-rate windows ``(start_cycle, delivered)`` and the
        #: running peak, for recovery verification.
        self.window_rates = []
        self.peak_window = 0
        self._window_start = 0
        self._window_count = 0
        self._msg_cursor = 0
        self._cycle = 0

        self._telemetry = getattr(network, "telemetry", None)
        if self._telemetry is not None and not self._telemetry.enabled:
            self._telemetry = None

        for endpoint in network.endpoints:
            endpoint.fault_listener = self._on_attempt_failure
        network.engine.add_observer(self)

    # ------------------------------------------------------------------
    # Detection: evidence accumulation (runs inside the simulation)
    # ------------------------------------------------------------------

    def _on_attempt_failure(self, cycle, endpoint, send, cause, blocked_stage):
        weight = self.weights.get(cause, 0.0)
        if weight <= 0.0:
            return
        suspect = self._localize(endpoint, send, cause, blocked_stage)
        self.evidence_count += 1
        if self._telemetry is not None:
            self._telemetry.registry.counter(
                "faultmgr.evidence", cause=cause, stage=suspect
            ).inc()
        score = self._bump(suspect, weight, cycle)
        if cycle < self._cooldown_until.get(suspect, 0):
            return
        if score >= self.threshold and suspect not in self.due:
            self.due.append(suspect)
            if self._telemetry is not None:
                self._telemetry.registry.counter(
                    "faultmgr.repairs_scheduled", stage=suspect
                ).inc()
            if self.auto_stop and not self._servicing:
                self.network.engine.stop()

    def _localize(self, endpoint, send, cause, blocked_stage):
        """Suspect stage (0-based) for one failed attempt."""
        if blocked_stage is not None:
            # BLOCKED/BLOCKED_FAST report a 1-based blocking stage.
            return min(max(blocked_stage - 1, 0), self.n_stages - 1)
        expected = endpoint.expected_stage_checksums(send.message)
        suspect = suspect_stage_from_statuses(expected, send.statuses)
        if suspect is None:
            # Every stage reported clean: the damage is past the last
            # router (final wire or destination).
            return self.n_stages - 1
        return suspect

    def _bump(self, stage, weight, cycle):
        score = self.suspicion.get(stage, 0.0)
        touched = self._touched.get(stage, cycle)
        if cycle > touched and self.decay_half_life:
            score *= 0.5 ** ((cycle - touched) / self.decay_half_life)
        score += weight
        self.suspicion[stage] = score
        self._touched[stage] = cycle
        return score

    # ------------------------------------------------------------------
    # Recovery watch (engine observer)
    # ------------------------------------------------------------------

    def tick(self, cycle):
        self._cycle = cycle
        messages = self.network.log.messages
        while self._msg_cursor < len(messages):
            if messages[self._msg_cursor].outcome == M.DELIVERED:
                self._window_count += 1
            self._msg_cursor += 1
        if cycle - self._window_start >= self.rate_window:
            self._close_window(cycle)

    def _close_window(self, cycle):
        self.window_rates.append((self._window_start, self._window_count))
        if self._window_count > self.peak_window:
            self.peak_window = self._window_count
        floor = self.recovery_ratio * self.peak_window
        for repair in self.repairs:
            if repair["verified"] or repair["cycle"] > self._window_start:
                continue
            if self._window_count >= floor:
                repair["verified"] = True
                repair["verified_cycle"] = cycle
                if self._telemetry is not None:
                    self._telemetry.registry.counter(
                        "faultmgr.repairs_verified", stage=repair["stage"]
                    ).inc()
        self._window_start = cycle
        self._window_count = 0

    # ------------------------------------------------------------------
    # Repair: localization + masking (runs BETWEEN engine runs)
    # ------------------------------------------------------------------

    def repairs_due(self):
        """True when :meth:`service` has scheduled work to perform."""
        return bool(self.due)

    def service(self):
        """Perform every due repair; returns the repair records.

        Must be called between ``network.run(...)`` windows (isolation
        tests run the engine internally).  With ``auto_stop`` the
        engine halts as soon as a repair becomes due, so the driving
        loop simply alternates ``run``/``service`` until done.
        """
        if self._servicing or not self.due:
            return []
        self._servicing = True
        performed = []
        try:
            while self.due:
                stage = self.due.pop(0)
                self.suspicion[stage] = 0.0
                record = self._repair_stage(stage)
                self.repairs.append(record)
                performed.append(record)
                self._cooldown_until[stage] = self._cycle + self.cooldown
        finally:
            self._servicing = False
        return performed

    def _repair_stage(self, stage):
        """Isolation-test the layers a suspect stage implicates.

        Suspect stage ``s`` means "the wire into stage ``s`` or the
        stage-``s`` router itself", so the wire layers on both sides
        of the router are tested (layer ``L`` holds the wires from
        stage ``L`` to ``L + 1``).
        """
        top_layer = self.n_stages - 2
        layers = sorted(
            {
                min(max(stage - 1, 0), top_layer),
                min(max(stage, 0), top_layer),
            }
        )
        record = {
            "cycle": self._cycle,
            "stage": stage,
            "layers": layers,
            "masked": [],
            "verified": False,
            "verified_cycle": None,
        }
        for layer in layers:
            record["masked"].extend(self._diagnose_layer(layer))
        return record

    def _diagnose_layer(self, layer):
        """Isolation-test every unmasked wire of one inter-stage layer."""
        masked = []
        for src_key, dst_key in list(self.network.channels):
            if src_key[0] != "router" or dst_key[0] != "router":
                continue
            if src_key[1] != layer:
                continue
            if (src_key, dst_key) in self.masked:
                # Re-testing a masked wire would re-enable its ports
                # (the isolation test restores them on exit) — the mask
                # is a standing repair, leave it alone.
                continue
            if self.max_masks is not None and len(self.masked) >= self.max_masks:
                break
            if self._test_wire(src_key, dst_key):
                continue
            self._mask_wire(src_key, dst_key)
            masked.append((src_key, dst_key))
        return masked

    def _test_wire(self, src_key, dst_key):
        """Quiesce one wire, then isolation-test it.  True = healthy.

        Ordering matters: the wire's circuits are torn down first,
        then both facing ports are disabled in the same inter-cycle
        gap (so the allocator cannot hand the wire to new traffic),
        then the network runs briefly to flush in-flight words, and
        only then do test patterns go on the now-silent wire.  The
        teardown traffic (DROP words) crosses the wire *before* the
        ports disable, so the masked-port oracle invariant holds
        throughout.
        """
        network = self.network
        upstream, bwd_port, downstream, fwd_port = _link_ends(
            network, src_key, dst_key
        )
        upstream.quiesce_backward_port(bwd_port)
        downstream.force_teardown(fwd_port)
        up_key = (src_key[1], src_key[2], src_key[3])
        down_key = (dst_key[1], dst_key[2], dst_key[3])
        up_port_id = upstream.config.backward_port_id(bwd_port)
        down_port_id = downstream.config.forward_port_id(fwd_port)
        self.fabric.disable_port(up_key, up_port_id)
        self.fabric.disable_port(down_key, down_port_id)
        settle = network.channels[(src_key, dst_key)].delay + 2
        network.run(settle)
        passed, _observations = port_isolation_test(
            network, src_key, dst_key, self.patterns
        )
        if passed:
            # The isolation test's exit path re-enabled both ports;
            # the wire rejoins the redundant pool.
            return True
        # Failing wires are re-masked by the caller before any engine
        # cycle runs, so the allocator never sees them enabled.
        return False

    def _mask_wire(self, src_key, dst_key):
        upstream, bwd_port, downstream, fwd_port = _link_ends(
            self.network, src_key, dst_key
        )
        up_key = (src_key[1], src_key[2], src_key[3])
        down_key = (dst_key[1], dst_key[2], dst_key[3])
        self.fabric.disable_port(
            up_key, upstream.config.backward_port_id(bwd_port)
        )
        self.fabric.disable_port(
            down_key, downstream.config.forward_port_id(fwd_port)
        )
        self.masked.add((src_key, dst_key))
        self.mask_events.append(
            {
                "cycle": self._cycle,
                "src": src_key,
                "dst": dst_key,
                "stage": src_key[1],
            }
        )
        if self._telemetry is not None:
            self._telemetry.registry.counter(
                "faultmgr.masked_wires", stage=src_key[1]
            ).inc()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def summary(self):
        """Picklable snapshot of the manager's state for reports."""
        return {
            "evidence_count": self.evidence_count,
            "suspicion": dict(self.suspicion),
            "masked_wires": len(self.masked),
            "mask_events": list(self.mask_events),
            "repairs": [dict(r) for r in self.repairs],
            "peak_window": self.peak_window,
            "window_rates": list(self.window_rates),
        }
