"""Fault models, scheduled injection, scan-driven diagnosis, and
online self-healing management."""

from repro.faults.injector import (
    AppliedFault,
    FaultInjector,
    random_fault_scenario,
    random_transient_scenario,
    router_to_router_channels,
)
from repro.faults.manager import FaultManager
from repro.faults.model import (
    CorruptLink,
    DeadLink,
    DeadRouter,
    DisabledPort,
    Fault,
    FlakyLink,
    FlakyRouter,
    TransientFault,
)

__all__ = [
    "AppliedFault",
    "CorruptLink",
    "DeadLink",
    "DeadRouter",
    "DisabledPort",
    "Fault",
    "FaultInjector",
    "FaultManager",
    "FlakyLink",
    "FlakyRouter",
    "TransientFault",
    "random_fault_scenario",
    "random_transient_scenario",
    "router_to_router_channels",
]
