"""Fault models, scheduled injection, and scan-driven diagnosis."""

from repro.faults.injector import (
    FaultInjector,
    random_fault_scenario,
    router_to_router_channels,
)
from repro.faults.model import (
    CorruptLink,
    DeadLink,
    DeadRouter,
    DisabledPort,
    Fault,
)

__all__ = [
    "CorruptLink",
    "DeadLink",
    "DeadRouter",
    "DisabledPort",
    "Fault",
    "FaultInjector",
    "random_fault_scenario",
    "router_to_router_channels",
]
