"""Fault descriptors.

The METRO fault story (paper, Sections 1, 4, 5.1) distinguishes:

* **static faults** — present before operation; masked by disabling the
  faulty ports under scan control so they can no longer corrupt
  traffic;
* **dynamic faults** — appearing while the network runs; the source
  detects the damaged connection (missing/blocked status, bad
  checksum, silence) and retries, and random output selection steers
  the retry around the fault;
* **transient faults** — dynamic faults that come and go: a marginal
  wire or an overheating part alternates between healthy and failed.
  :class:`TransientFault` models the duty cycle with seeded
  exponential up/down times (MTBF/MTTR) and optional failure bursts.

Each descriptor here knows how to ``apply`` itself to a live
:class:`~repro.network.builder.MetroNetwork` (and, where meaningful,
``revert``).  Scheduling is the injector's job.

Every fault is picklable *by construction*: descriptors store only
plain data (keys, seeds, parameters) and derive any resolved channel
lazily, so fault scenarios can ride a
:class:`~repro.harness.parallel.TrialSpec` into worker processes.
Live RNG and duty-cycle state *does* ride along — a pickled
mid-outage :class:`TransientFault` resumes with exactly the remaining
schedule, which is what engine snapshots (:mod:`repro.sim.snapshot`)
rely on.  A fresh descriptor has no RNG yet, so the worker-process
path is unchanged.
"""

import random

from repro.core import words as W

LINK_DEAD = "link-dead"
LINK_CORRUPT = "link-corrupt"
LINK_FLAKY = "link-flaky"
ROUTER_DEAD = "router-dead"
ROUTER_FLAKY = "router-flaky"
PORT_DISABLED = "port-disabled"


class Fault:
    """Base class; subclasses define apply/revert."""

    kind = "fault"

    def apply(self, network):
        raise NotImplementedError

    def revert(self, network):
        raise NotImplementedError("{} cannot be reverted".format(self.kind))

    def describe(self):
        return self.kind


class _LinkFault(Fault):
    """Shared plumbing for faults that target one wire.

    Stores the wire's ``(src_key, dst_key)`` and resolves the live
    channel lazily against the network it is applied to.  The resolved
    channel is a cache only: pickling drops it (when keys are present)
    so a used fault never drags a live network into worker processes.
    """

    def __init__(self, src_key=None, dst_key=None, channel=None):
        if channel is None and (src_key is None or dst_key is None):
            raise ValueError("need channel or (src_key, dst_key)")
        self.src_key = src_key
        self.dst_key = dst_key
        self.channel = channel

    def _resolve(self, network):
        if self.channel is None:
            self.channel = network.channels[(self.src_key, self.dst_key)]
        return self.channel

    def _channel_name(self):
        if self.channel is not None:
            return self.channel.name
        name = self.__dict__.get("_name_cache")
        if name is not None:
            return name
        if self.src_key is not None:
            return "{}->{}".format(self.src_key, self.dst_key)
        return "?"

    def __getstate__(self):
        state = dict(self.__dict__)
        if state.get("src_key") is not None:
            # Keep the human-readable wire name: describe() must render
            # identically before and after a snapshot round-trip even
            # while the channel cache is unresolved.
            if state.get("channel") is not None:
                state["_name_cache"] = state["channel"].name
            state["channel"] = None
        return state


class DeadLink(_LinkFault):
    """A wire that stops conducting in both directions.

    :param src_key: producing port key (``NodeRef.key()``), or pass a
        ``channel`` directly.
    """

    kind = LINK_DEAD

    def apply(self, network):
        channel = self._resolve(network)
        channel.dead = True
        network.engine.wake(channel)

    def revert(self, network):
        channel = self._resolve(network)
        channel.dead = False
        network.engine.wake(channel)

    def describe(self):
        return "{}({})".format(self.kind, self._channel_name())


class CorruptLink(_LinkFault):
    """A noisy wire: data words are bit-flipped with some probability.

    Control tokens are carried out-of-band in this simulation, so
    corruption targets data word values — the payload/header bits a
    real line error would hit.  Per-router checksums (STATUS) localize
    the corruption; the destination's end-to-end checksum catches it.

    :param probability: chance each traversing data word is damaged.
    :param mask: XOR pattern applied to a damaged word (default flips
        the low bit).
    :param direction: ``"a_to_b"``, ``"b_to_a"`` or ``"both"``.
    :param seed: noise randomness; the RNG is derived lazily from the
        stored seed so the descriptor stays picklable.
    """

    kind = LINK_CORRUPT

    def __init__(
        self,
        src_key=None,
        dst_key=None,
        channel=None,
        probability=1.0,
        mask=0x1,
        direction="a_to_b",
        seed=0,
    ):
        super().__init__(src_key=src_key, dst_key=dst_key, channel=channel)
        self.probability = probability
        self.mask = mask
        self.direction = direction
        self.seed = seed
        self._rng_obj = None

    @property
    def _rng(self):
        if self._rng_obj is None:
            self._rng_obj = random.Random(self.seed)
        return self._rng_obj

    def _corrupt(self, word):
        if word.kind != W.DATA:
            return word
        if self._rng.random() >= self.probability:
            return word
        return W.data(word.value ^ self.mask)

    def apply(self, network):
        channel = self._resolve(network)
        if self.direction in ("a_to_b", "both"):
            channel.fault_a_to_b = self._corrupt
        if self.direction in ("b_to_a", "both"):
            channel.fault_b_to_a = self._corrupt
        network.engine.wake(channel)

    def revert(self, network):
        channel = self._resolve(network)
        if self.direction in ("a_to_b", "both"):
            channel.fault_a_to_b = None
        if self.direction in ("b_to_a", "both"):
            channel.fault_b_to_a = None
        network.engine.wake(channel)

    def describe(self):
        return "{}({}, p={})".format(
            self.kind, self._channel_name(), self.probability
        )


class DeadRouter(Fault):
    """A routing component that fails completely (goes silent)."""

    kind = ROUTER_DEAD

    def __init__(self, stage, block, index):
        self.stage = stage
        self.block = block
        self.index = index

    def _router(self, network):
        return network.router_grid[(self.stage, self.block, self.index)]

    def apply(self, network):
        router = self._router(network)
        router.dead = True
        network.engine.wake(router)

    def revert(self, network):
        # Waking is mandatory here: the revived router may hold frozen
        # mid-connection state (watchdogs, drains) that an event-driven
        # backend would otherwise never re-schedule.
        router = self._router(network)
        router.dead = False
        network.engine.wake(router)

    def describe(self):
        return "{}(r{}.{}.{})".format(self.kind, self.stage, self.block, self.index)


class DisabledPort(Fault):
    """A port removed from service (the scan-control masking action).

    Not a fault per se but the *repair* for one: once a faulty region
    is localized, disabling the ports that touch it masks the fault so
    it can no longer corrupt traffic (Section 5.1, Scan Support).
    """

    kind = PORT_DISABLED

    def __init__(self, stage, block, index, port_id):
        self.stage = stage
        self.block = block
        self.index = index
        self.port_id = port_id

    def _router(self, network):
        return network.router_grid[(self.stage, self.block, self.index)]

    def apply(self, network):
        router = self._router(network)
        router.config.port_enabled[self.port_id] = False
        network.engine.wake(router)

    def revert(self, network):
        router = self._router(network)
        router.config.port_enabled[self.port_id] = True
        network.engine.wake(router)

    def describe(self):
        return "{}(r{}.{}.{} port {})".format(
            self.kind, self.stage, self.block, self.index, self.port_id
        )


class TransientFault(Fault):
    """A duty-cycled fault: alternates between healthy and failed.

    Subclasses define what apply/revert do; this base owns *when*: up
    (healthy) periods average ``mtbf`` cycles and down (failed)
    periods average ``mttr`` cycles, both drawn exponentially from the
    stored seed so the whole schedule is a pure function of the seed.

    ``burst > 1`` models correlated failures: after each recovery, the
    next ``burst - 1`` failures arrive after short gaps (mean
    ``burst_gap``) before the schedule returns to the MTBF cadence —
    the "fault burst" pattern of a part going marginal.

    The schedule is driven by :meth:`poll`, which the
    :class:`~repro.faults.injector.FaultInjector` calls from its
    pre-cycle hook once the fault is registered via
    ``injector.transient(fault)``.  ``start`` delays the first failure
    draw until that cycle (a healthy lead-in).
    """

    kind = "transient"

    def __init__(self, mtbf, mttr, seed=0, burst=1, burst_gap=None, start=0):
        if mtbf < 1 or mttr < 1:
            raise ValueError("mtbf and mttr must be >= 1 cycle")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.mtbf = mtbf
        self.mttr = mttr
        self.seed = seed
        self.burst = burst
        self.burst_gap = burst_gap if burst_gap is not None else max(1, mtbf // 8)
        self.start = start
        self.down = False
        self._rng_obj = None
        self._next_change = None
        self._burst_left = 0

    @property
    def _rng(self):
        if self._rng_obj is None:
            self._rng_obj = random.Random(self.seed)
        return self._rng_obj

    def _draw(self, mean):
        return max(1, int(round(self._rng.expovariate(1.0 / mean))))

    def poll(self, cycle, network):
        """Advance the duty cycle to ``cycle``; apply/revert as due.

        Returns the transitions taken this call as ``(action, cycle)``
        pairs (``"apply"`` going down, ``"revert"`` coming back up) so
        the injector can record them in its history.
        """
        if cycle < self.start:
            return []
        if self._next_change is None:
            self._burst_left = self.burst - 1
            self._next_change = cycle + self._draw(self.mtbf)
        events = []
        while cycle >= self._next_change:
            if self.down:
                self.revert(network)
                self.down = False
                events.append(("revert", cycle))
                if self._burst_left > 0:
                    self._burst_left -= 1
                    gap = self._draw(self.burst_gap)
                else:
                    self._burst_left = self.burst - 1
                    gap = self._draw(self.mtbf)
                self._next_change = cycle + gap
            else:
                self.apply(network)
                self.down = True
                events.append(("apply", cycle))
                self._next_change = cycle + self._draw(self.mttr)
        return events

    def next_change_cycle(self):
        """The next cycle :meth:`poll` could take a transition.

        Before the first poll that is the healthy lead-in's end
        (``start``) — polling there initializes the schedule with
        exactly the draws the reference engine's every-cycle polling
        would make.  Used by the fault injector's idle-run compression
        hint.
        """
        if self._next_change is None:
            return self.start
        return self._next_change


class FlakyLink(TransientFault):
    """A wire that intermittently goes dead (marginal connector)."""

    kind = LINK_FLAKY

    def __init__(
        self,
        src_key=None,
        dst_key=None,
        channel=None,
        mtbf=600,
        mttr=150,
        seed=0,
        burst=1,
        burst_gap=None,
        start=0,
    ):
        super().__init__(
            mtbf, mttr, seed=seed, burst=burst, burst_gap=burst_gap, start=start
        )
        if channel is None and (src_key is None or dst_key is None):
            raise ValueError("need channel or (src_key, dst_key)")
        self.src_key = src_key
        self.dst_key = dst_key
        self.channel = channel

    def _resolve(self, network):
        if self.channel is None:
            self.channel = network.channels[(self.src_key, self.dst_key)]
        return self.channel

    def apply(self, network):
        channel = self._resolve(network)
        channel.dead = True
        network.engine.wake(channel)

    def revert(self, network):
        channel = self._resolve(network)
        channel.dead = False
        network.engine.wake(channel)

    def describe(self):
        if self.channel is not None:
            name = self.channel.name
        else:
            name = self.__dict__.get("_name_cache") or "{}->{}".format(
                self.src_key, self.dst_key
            )
        return "{}({}, mtbf={}, mttr={})".format(
            self.kind, name, self.mtbf, self.mttr
        )

    def __getstate__(self):
        # Mirror _LinkFault: the resolved channel is a cache only and
        # re-resolves against whichever network the clone is applied
        # to (for a snapshot, the restored one); the rendered wire
        # name is kept so describe() is stable across the round-trip.
        state = dict(self.__dict__)
        if state.get("src_key") is not None:
            if state.get("channel") is not None:
                state["_name_cache"] = state["channel"].name
            state["channel"] = None
        return state


class FlakyRouter(TransientFault):
    """A router that intermittently goes silent (thermal/marginal part)."""

    kind = ROUTER_FLAKY

    def __init__(
        self,
        stage,
        block,
        index,
        mtbf=600,
        mttr=150,
        seed=0,
        burst=1,
        burst_gap=None,
        start=0,
    ):
        super().__init__(
            mtbf, mttr, seed=seed, burst=burst, burst_gap=burst_gap, start=start
        )
        self.stage = stage
        self.block = block
        self.index = index

    def _router(self, network):
        return network.router_grid[(self.stage, self.block, self.index)]

    def apply(self, network):
        router = self._router(network)
        router.dead = True
        network.engine.wake(router)

    def revert(self, network):
        # See DeadRouter.revert: frozen mid-connection state must be
        # re-scheduled when the router comes back up.
        router = self._router(network)
        router.dead = False
        network.engine.wake(router)

    def describe(self):
        return "{}(r{}.{}.{}, mtbf={}, mttr={})".format(
            self.kind, self.stage, self.block, self.index, self.mtbf, self.mttr
        )
