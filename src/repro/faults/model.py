"""Fault descriptors.

The METRO fault story (paper, Sections 1, 4, 5.1) distinguishes:

* **static faults** — present before operation; masked by disabling the
  faulty ports under scan control so they can no longer corrupt
  traffic;
* **dynamic faults** — appearing while the network runs; the source
  detects the damaged connection (missing/blocked status, bad
  checksum, silence) and retries, and random output selection steers
  the retry around the fault.

Each descriptor here knows how to ``apply`` itself to a live
:class:`~repro.network.builder.MetroNetwork` (and, where meaningful,
``revert``).  Scheduling is the injector's job.
"""

import random

from repro.core import words as W

LINK_DEAD = "link-dead"
LINK_CORRUPT = "link-corrupt"
ROUTER_DEAD = "router-dead"
PORT_DISABLED = "port-disabled"


class Fault:
    """Base class; subclasses define apply/revert."""

    kind = "fault"

    def apply(self, network):
        raise NotImplementedError

    def revert(self, network):
        raise NotImplementedError("{} cannot be reverted".format(self.kind))

    def describe(self):
        return self.kind


class DeadLink(Fault):
    """A wire that stops conducting in both directions.

    :param src_key: producing port key (``NodeRef.key()``), or pass a
        ``channel`` directly.
    """

    kind = LINK_DEAD

    def __init__(self, src_key=None, dst_key=None, channel=None):
        if channel is None and (src_key is None or dst_key is None):
            raise ValueError("need channel or (src_key, dst_key)")
        self.src_key = src_key
        self.dst_key = dst_key
        self.channel = channel

    def _resolve(self, network):
        if self.channel is None:
            self.channel = network.channels[(self.src_key, self.dst_key)]
        return self.channel

    def apply(self, network):
        self._resolve(network).dead = True

    def revert(self, network):
        self._resolve(network).dead = False

    def describe(self):
        channel_name = self.channel.name if self.channel is not None else "?"
        return "{}({})".format(self.kind, channel_name)


class CorruptLink(Fault):
    """A noisy wire: data words are bit-flipped with some probability.

    Control tokens are carried out-of-band in this simulation, so
    corruption targets data word values — the payload/header bits a
    real line error would hit.  Per-router checksums (STATUS) localize
    the corruption; the destination's end-to-end checksum catches it.

    :param probability: chance each traversing data word is damaged.
    :param mask: XOR pattern applied to a damaged word (default flips
        the low bit).
    :param direction: ``"a_to_b"``, ``"b_to_a"`` or ``"both"``.
    """

    kind = LINK_CORRUPT

    def __init__(
        self,
        src_key=None,
        dst_key=None,
        channel=None,
        probability=1.0,
        mask=0x1,
        direction="a_to_b",
        seed=0,
    ):
        if channel is None and (src_key is None or dst_key is None):
            raise ValueError("need channel or (src_key, dst_key)")
        self.src_key = src_key
        self.dst_key = dst_key
        self.channel = channel
        self.probability = probability
        self.mask = mask
        self.direction = direction
        self._rng = random.Random(seed)

    def _corrupt(self, word):
        if word.kind != W.DATA:
            return word
        if self._rng.random() >= self.probability:
            return word
        return W.data(word.value ^ self.mask)

    def _resolve(self, network):
        if self.channel is None:
            self.channel = network.channels[(self.src_key, self.dst_key)]
        return self.channel

    def apply(self, network):
        channel = self._resolve(network)
        if self.direction in ("a_to_b", "both"):
            channel.fault_a_to_b = self._corrupt
        if self.direction in ("b_to_a", "both"):
            channel.fault_b_to_a = self._corrupt

    def revert(self, network):
        channel = self._resolve(network)
        if self.direction in ("a_to_b", "both"):
            channel.fault_a_to_b = None
        if self.direction in ("b_to_a", "both"):
            channel.fault_b_to_a = None

    def describe(self):
        channel_name = self.channel.name if self.channel is not None else "?"
        return "{}({}, p={})".format(self.kind, channel_name, self.probability)


class DeadRouter(Fault):
    """A routing component that fails completely (goes silent)."""

    kind = ROUTER_DEAD

    def __init__(self, stage, block, index):
        self.stage = stage
        self.block = block
        self.index = index

    def _router(self, network):
        return network.router_grid[(self.stage, self.block, self.index)]

    def apply(self, network):
        self._router(network).dead = True

    def revert(self, network):
        self._router(network).dead = False

    def describe(self):
        return "{}(r{}.{}.{})".format(self.kind, self.stage, self.block, self.index)


class DisabledPort(Fault):
    """A port removed from service (the scan-control masking action).

    Not a fault per se but the *repair* for one: once a faulty region
    is localized, disabling the ports that touch it masks the fault so
    it can no longer corrupt traffic (Section 5.1, Scan Support).
    """

    kind = PORT_DISABLED

    def __init__(self, stage, block, index, port_id):
        self.stage = stage
        self.block = block
        self.index = index
        self.port_id = port_id

    def _router(self, network):
        return network.router_grid[(self.stage, self.block, self.index)]

    def apply(self, network):
        self._router(network).config.port_enabled[self.port_id] = False

    def revert(self, network):
        self._router(network).config.port_enabled[self.port_id] = True

    def describe(self):
        return "{}(r{}.{}.{} port {})".format(
            self.kind, self.stage, self.block, self.index, self.port_id
        )
