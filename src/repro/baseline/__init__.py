"""Baseline switching disciplines for comparison with METRO.

The paper argues (Section 2) that for *short-haul* distances circuit
switching beats the packet switching that long-haul networks need.
This package provides the counterpart to test that argument in
simulation: an input-buffered, credit-flow-controlled wormhole router
(:mod:`repro.baseline.wormhole`) assembled over the *same* topologies
by :func:`repro.baseline.builder.build_wormhole_network`.
"""

from repro.baseline.builder import WormholeNetwork, build_wormhole_network
from repro.baseline.wormhole import (
    Flit,
    Packet,
    WormholeRouter,
    WormholeSink,
    WormholeSource,
)

__all__ = [
    "Flit",
    "Packet",
    "WormholeNetwork",
    "WormholeRouter",
    "WormholeSink",
    "WormholeSource",
    "build_wormhole_network",
]
