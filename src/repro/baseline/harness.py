"""Measured-window experiments for the wormhole baseline.

Mirrors :mod:`repro.harness.experiment` closely enough that results
from both switching disciplines drop into the same report tables.
"""

import random

import numpy as np

from repro.baseline.builder import build_wormhole_network


class WormholeResult:
    """Statistics over one measured window of wormhole traffic."""

    def __init__(self, label, packets, measure_cycles, n_endpoints, message_words):
        self.label = label
        self.delivered_count = len(packets)
        self.measure_cycles = measure_cycles
        self.n_endpoints = n_endpoints
        self.message_words = message_words
        self._latencies = np.array(
            [p.total_latency for p in packets], dtype=float
        )

    @property
    def mean_latency(self):
        return float(self._latencies.mean()) if self.delivered_count else float("nan")

    @property
    def median_latency(self):
        return float(np.median(self._latencies)) if self.delivered_count else float("nan")

    def latency_percentile(self, q):
        return (
            float(np.percentile(self._latencies, q))
            if self.delivered_count
            else float("nan")
        )

    @property
    def delivered_load(self):
        total_words = self.delivered_count * self.message_words
        return total_words / (self.measure_cycles * self.n_endpoints)

    def as_dict(self):
        return {
            "label": self.label,
            "delivered": self.delivered_count,
            "mean_latency": self.mean_latency,
            "median_latency": self.median_latency,
            "p95_latency": self.latency_percentile(95),
            "delivered_load": self.delivered_load,
        }


def closed_loop_traffic(n_endpoints, w, rate, message_words, seed):
    """Per-source closed-loop Bernoulli generator for wormhole sources.

    Returns ``source_for(index) -> f(cycle) -> (dest, payload) | None``.
    """
    def source_for(index):
        rng = random.Random((seed << 18) ^ (index * 6367 + 5))
        mask = (1 << w) - 1

        def source(cycle):
            if rng.random() >= rate:
                return None
            dest = rng.randrange(n_endpoints)
            while dest == index:
                dest = rng.randrange(n_endpoints)
            payload = [rng.getrandbits(16) & mask for _ in range(message_words)]
            return dest, payload

        return source

    return source_for


def run_wormhole_point(
    plan,
    rate,
    seed=0,
    message_words=20,
    buffer_depth=4,
    warmup_cycles=1500,
    measure_cycles=6000,
    label=None,
    store_and_forward=False,
):
    """One latency/load point for the wormhole (or S&F) network."""
    network = build_wormhole_network(
        plan,
        seed=seed,
        buffer_depth=buffer_depth,
        store_and_forward=store_and_forward,
    )
    source_for = closed_loop_traffic(
        plan.n_endpoints, network.codec.w, rate, message_words, seed + 1
    )
    for source in network.sources:
        source.traffic_source = source_for(source.index)
    network.run(warmup_cycles)
    start = network.engine.cycle
    network.run(measure_cycles)
    end = network.engine.cycle
    for source in network.sources:
        source.traffic_source = None
    network.run_until_quiet(max_cycles=measure_cycles * 4)
    window = [
        p
        for p in network.delivered
        if p.queued_cycle is not None and start <= p.queued_cycle < end
    ]
    return WormholeResult(
        label or "rate={}".format(rate),
        window,
        measure_cycles,
        plan.n_endpoints,
        message_words,
    )
