"""A wormhole packet-switched baseline router.

Section 2 of the paper contrasts METRO's circuit switching with the
packet switching used by long-haul networks and by contemporary
multiprocessor routers (J-Machine, CM-5, C104 in Table 5).  To compare
the *switching disciplines* — not just analytical estimates — this
module implements the classic alternative on the same simulation
substrate: an input-buffered, credit-flow-controlled wormhole router.

Semantics (standard early-1990s wormhole):

* a packet is a HEAD flit (carrying the destination's remaining
  direction digits), BODY flits (payload words), and a TAIL flit
  (checksum);
* each forward port has a flit FIFO of depth ``buffer_depth``;
  credit-based backpressure (the credit return rides the channel's
  reverse sideband) guarantees no overflow and no flit loss;
* a HEAD at the queue front requests an output in its direction's
  dilation group (random among free ones, for comparability with
  METRO); if none is free it *waits in the buffer* — blocked packets
  are never dropped, so there are no retries and no acks;
* the output stays allocated until the TAIL passes (wormhole).

What the comparison shows is the paper's Section 2 trade: the wormhole
network needs buffers in every router and a flow-control round trip
per hop, but absorbs contention in place; METRO keeps routers
stateless and pays for contention with retries.  For short-haul
distances and message sizes, both land in the same latency regime —
with METRO ahead when paths are free and behind under heavy hotspots.
"""

import random

from repro.core import words as W
from repro.sim.component import Component

HEAD = "head"
BODY = "body"
TAIL = "tail"


class Flit:
    """One flow-control unit on a wormhole wire."""

    __slots__ = ("kind", "value", "digits", "packet_id")

    def __init__(self, kind, value=0, digits=None, packet_id=None):
        self.kind = kind
        self.value = value
        #: Remaining per-stage direction digits (HEAD flits only).
        self.digits = digits
        self.packet_id = packet_id

    def __repr__(self):
        return "<Flit {} {}>".format(self.kind, self.value)


class Packet:
    """Source-side record of one injected packet."""

    def __init__(self, packet_id, dest, payload):
        self.packet_id = packet_id
        self.dest = dest
        self.payload = list(payload)
        self.queued_cycle = None
        self.start_cycle = None
        self.done_cycle = None
        self.checksum_ok = None

    @property
    def latency(self):
        if self.done_cycle is None or self.start_cycle is None:
            return None
        return self.done_cycle - self.start_cycle

    @property
    def total_latency(self):
        if self.done_cycle is None or self.queued_cycle is None:
            return None
        return self.done_cycle - self.queued_cycle


class _InputPort:
    __slots__ = ("fifo", "route_output")

    def __init__(self):
        self.fifo = []
        self.route_output = None  # output port locked by current packet


class WormholeRouter(Component):
    """Input-buffered wormhole router on METRO's port geometry.

    :param i: input (forward) ports.
    :param o: output (backward) ports.
    :param dilation: outputs per logical direction (radix = o/dilation).
    :param buffer_depth: flits of input buffering per port.
    :param seed: randomness for output selection and input service order.
    :param store_and_forward: hold each packet until its TAIL has fully
        arrived before requesting an output — the long-haul discipline
        of Section 2, where "an interconnection channel is allocated to
        a message for only long enough for the message to be injected".
        Requires ``buffer_depth`` >= the largest packet (head + payload
        + tail); the router raises if a packet cannot fit.
    """

    def __init__(self, i=4, o=4, dilation=2, buffer_depth=4, seed=0,
                 name="wormhole", store_and_forward=False):
        if o % dilation:
            raise ValueError("dilation must divide o")
        self.name = name
        self.i = i
        self.o = o
        self.dilation = dilation
        self.radix = o // dilation
        self.buffer_depth = buffer_depth
        self.store_and_forward = store_and_forward
        self._rng = random.Random(seed)
        self.forward_ends = [None] * i
        self.backward_ends = [None] * o
        self._inputs = [_InputPort() for _ in range(i)]
        self._output_owner = [None] * o     # input index holding each output
        self._credits = [buffer_depth] * o  # downstream buffer space

    def attach_forward(self, port, channel_end):
        self.forward_ends[port] = channel_end

    def attach_backward(self, port, channel_end):
        self.backward_ends[port] = channel_end

    # ------------------------------------------------------------------

    def tick(self, cycle):
        self._collect_credits()
        self._accept_flits()
        self._forward_flits()

    def _collect_credits(self):
        for q, end in enumerate(self.backward_ends):
            if end is None:
                continue
            credit = end.recv_bcb()
            if credit:
                self._credits[q] += credit
                if self._credits[q] > self.buffer_depth:
                    raise AssertionError(
                        "{}: credit overflow on output {}".format(self.name, q)
                    )

    def _accept_flits(self):
        for p, end in enumerate(self.forward_ends):
            if end is None:
                continue
            flit = end.recv()
            if flit is None:
                continue
            fifo = self._inputs[p].fifo
            if len(fifo) >= self.buffer_depth:
                raise AssertionError(
                    "{}: buffer overflow on input {} (credit protocol "
                    "violated)".format(self.name, p)
                )
            fifo.append(flit)

    def _forward_flits(self):
        order = list(range(self.i))
        self._rng.shuffle(order)  # fair service among inputs
        used_outputs = set()
        for p in order:
            port = self._inputs[p]
            if not port.fifo:
                continue
            flit = port.fifo[0]
            if port.route_output is None:
                if flit.kind != HEAD:
                    raise AssertionError(
                        "{}: body flit with no route on input {}".format(
                            self.name, p
                        )
                    )
                if self.store_and_forward and not any(
                    buffered.kind == TAIL for buffered in port.fifo
                ):
                    # Whole-packet buffering: wait for the tail.  A
                    # packet larger than the buffer can never satisfy
                    # this — the classic store-and-forward constraint.
                    if len(port.fifo) >= self.buffer_depth:
                        raise AssertionError(
                            "{}: packet exceeds store-and-forward buffer "
                            "({} flits)".format(self.name, self.buffer_depth)
                        )
                    continue
                output = self._allocate(flit, used_outputs)
                if output is None:
                    continue  # blocked: wait in buffer
                port.route_output = output
                self._output_owner[output] = p
                flit = Flit(
                    HEAD,
                    flit.value,
                    digits=flit.digits[1:],
                    packet_id=flit.packet_id,
                )
            output = port.route_output
            if output in used_outputs or self._credits[output] <= 0:
                continue  # downstream full or output busy this cycle
            used_outputs.add(output)
            self._credits[output] -= 1
            port.fifo.pop(0)
            self.backward_ends[output].send(flit)
            # Return a credit upstream for the freed buffer slot.
            self.forward_ends[p].send_bcb(1)
            if flit.kind == TAIL:
                self._output_owner[output] = None
                port.route_output = None

    def _allocate(self, head, used_outputs):
        direction = head.digits[0]
        group = range(direction * self.dilation, (direction + 1) * self.dilation)
        candidates = [
            q
            for q in group
            if self._output_owner[q] is None
            and q not in used_outputs
            and self._credits[q] > 0
        ]
        if not candidates:
            return None
        return self._rng.choice(candidates)

    # ------------------------------------------------------------------

    def is_quiescent(self):
        return all(not port.fifo for port in self._inputs) and all(
            owner is None for owner in self._output_owner
        )

    def buffered_flits(self):
        return sum(len(port.fifo) for port in self._inputs)


class WormholeSource(Component):
    """Endpoint injector: packetizes messages, respects link credits."""

    def __init__(self, index, digits_of, buffer_depth=4, name=None):
        self.index = index
        self.name = name or "wsrc{}".format(index)
        self.digits_of = digits_of
        self.ends = []
        self._credits = []
        self.buffer_depth = buffer_depth
        self._queue = []       # packets waiting
        self._current = None   # (end_index, flits, position, packet)
        self._next_id = 0
        self.traffic_source = None
        self.sent = []
        self.by_id = {}

    def attach_source(self, channel_end):
        self.ends.append(channel_end)
        self._credits.append(self.buffer_depth)

    def submit(self, dest, payload, cycle=None):
        packet = Packet((self.index, self._next_id), dest, payload)
        self._next_id += 1
        packet.queued_cycle = cycle
        self._queue.append(packet)
        self.by_id[packet.packet_id] = packet
        return packet

    def idle(self):
        return not self._queue and self._current is None

    def tick(self, cycle):
        for k, end in enumerate(self.ends):
            credit = end.recv_bcb()
            if credit:
                self._credits[k] += credit
        if self.traffic_source is not None and self.idle():
            generated = self.traffic_source(cycle)
            if generated is not None:
                dest, payload = generated
                self.submit(dest, payload, cycle=cycle)
        if self._current is None and self._queue:
            packet = self._queue.pop(0)
            if packet.queued_cycle is None:
                packet.queued_cycle = cycle
            packet.start_cycle = cycle
            flits = self._packetize(packet)
            end_index = max(
                range(len(self.ends)), key=lambda k: self._credits[k]
            )
            self._current = [end_index, flits, 0, packet]
            self.sent.append(packet)
        if self._current is not None:
            end_index, flits, position, packet = self._current
            if self._credits[end_index] > 0:
                self.ends[end_index].send(flits[position])
                self._credits[end_index] -= 1
                position += 1
                if position >= len(flits):
                    self._current = None
                else:
                    self._current[2] = position

    def _packetize(self, packet):
        digits = self.digits_of(packet.dest)
        flits = [Flit(HEAD, 0, digits=digits, packet_id=packet.packet_id)]
        flits.extend(
            Flit(BODY, value, packet_id=packet.packet_id)
            for value in packet.payload
        )
        flits.append(
            Flit(TAIL, W.checksum_of(packet.payload), packet_id=packet.packet_id)
        )
        return flits


class WormholeSink(Component):
    """Endpoint receiver: reassembles packets, verifies checksums."""

    def __init__(self, index, on_delivery, name=None):
        self.index = index
        self.name = name or "wsink{}".format(index)
        self.on_delivery = on_delivery
        self.ends = []
        self._partial = []
        self.received = 0
        self.checksum_failures = 0

    def attach_receive(self, channel_end):
        self.ends.append(channel_end)
        self._partial.append(None)

    def tick(self, cycle):
        for k, end in enumerate(self.ends):
            flit = end.recv()
            if flit is None:
                continue
            end.send_bcb(1)  # the sink consumes instantly: credit back
            if flit.kind == HEAD:
                self._partial[k] = (flit.packet_id, [])
            elif flit.kind == BODY:
                if self._partial[k] is not None:
                    self._partial[k][1].append(flit.value)
            elif flit.kind == TAIL:
                if self._partial[k] is None:
                    continue
                packet_id, payload = self._partial[k]
                self._partial[k] = None
                self.received += 1
                ok = W.checksum_of(payload) == flit.value
                if not ok:
                    self.checksum_failures += 1
                self.on_delivery(packet_id, payload, ok, cycle)
