"""Assemble a wormhole packet-switched network from a METRO plan.

Reuses the exact same topology machinery as the circuit-switched
builder — same :class:`~repro.network.topology.NetworkPlan`, same
multibutterfly wiring, same channels — so a comparison between the two
switching disciplines holds the network constant and varies only the
routers and endpoints.
"""

import random

from repro.baseline.wormhole import (
    WormholeRouter,
    WormholeSink,
    WormholeSource,
)
from repro.network.headers import HeaderCodec
from repro.network.multibutterfly import wire
from repro.sim.channel import Channel
from repro.sim.engine import Engine


class WormholeNetwork:
    """A wired wormhole network with delivery bookkeeping."""

    def __init__(self, plan, engine, routers, router_grid, sources, sinks, codec):
        self.plan = plan
        self.engine = engine
        self.routers = routers
        self.router_grid = router_grid
        self.sources = sources
        self.sinks = sinks
        self.codec = codec
        self.delivered = []
        self.checksum_failures = 0

    def run(self, cycles):
        self.engine.run(cycles)

    def send(self, src, dest, payload):
        return self.sources[src].submit(dest, payload, cycle=self.engine.cycle)

    def run_until_quiet(self, max_cycles=100000, settle=4):
        def quiet(engine):
            return all(source.idle() for source in self.sources) and all(
                router.is_quiescent()
                for stage in self.routers
                for router in stage
            )

        ok = self.engine.run_until(quiet, max_cycles)
        if ok:
            self.engine.run(settle)
        return ok

    def _on_delivery(self, packet_id, payload, ok, cycle):
        source = self.sources[packet_id[0]]
        packet = source.by_id.get(packet_id)
        if packet is not None:
            packet.done_cycle = cycle
            packet.checksum_ok = ok
            self.delivered.append(packet)
        if not ok:
            self.checksum_failures += 1

    def latencies(self):
        return [p.total_latency for p in self.delivered]

    def mean_latency(self):
        values = self.latencies()
        return sum(values) / len(values) if values else float("nan")


def build_wormhole_network(plan, seed=0, buffer_depth=4, link_delay=1,
                           randomize_wiring=True, store_and_forward=False):
    """Instantiate wormhole (or store-and-forward) routers + endpoints
    over a METRO plan."""
    rng = random.Random(seed)
    engine = Engine()
    w = plan.stages[0].params.w
    codec = HeaderCodec(w=w, hw=1, stage_radices=plan.stage_radices())

    routers = []
    router_grid = {}
    for s, stage in enumerate(plan.stages):
        stage_routers = []
        for block in range(plan.blocks_per_stage[s]):
            for index in range(plan.routers_per_block[s]):
                router = WormholeRouter(
                    i=stage.params.i,
                    o=stage.params.o,
                    dilation=stage.dilation,
                    buffer_depth=buffer_depth,
                    seed=rng.getrandbits(32),
                    name="w{}.{}.{}".format(s, block, index),
                    store_and_forward=store_and_forward,
                )
                engine.add_component(router)
                stage_routers.append(router)
                router_grid[(s, block, index)] = router
        routers.append(stage_routers)

    network = None  # forward reference for the delivery closure

    sources = []
    sinks = []
    for e in range(plan.n_endpoints):
        source = WormholeSource(e, digits_of=codec.digits,
                                buffer_depth=buffer_depth)
        sink = WormholeSink(
            e, on_delivery=lambda *args: network._on_delivery(*args)
        )
        engine.add_component(source)
        engine.add_component(sink)
        sources.append(source)
        sinks.append(sink)

    links = wire(plan, rng=random.Random(rng.getrandbits(32)),
                 randomize=randomize_wiring)
    for link in links:
        delay = link_delay(link) if callable(link_delay) else link_delay
        channel = Channel(delay=delay, name="{}->{}".format(link.src, link.dst))
        engine.add_channel(channel)
        _attach(router_grid, sources, sinks, link.src, channel.a, True)
        _attach(router_grid, sources, sinks, link.dst, channel.b, False)

    network = WormholeNetwork(
        plan, engine, routers, router_grid, sources, sinks, codec
    )
    return network


def _attach(router_grid, sources, sinks, ref, end, is_source):
    if ref.kind == "endpoint":
        if is_source:
            sources[ref.index].attach_source(end)
        else:
            sinks[ref.index].attach_receive(end)
        return
    router = router_grid[(ref.stage, ref.block, ref.index)]
    if is_source:
        router.attach_backward(ref.port, end)
    else:
        router.attach_forward(ref.port, end)
