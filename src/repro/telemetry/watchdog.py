"""Run-health watchdog: stall detection and liveness heartbeats.

A long soak can wedge without crashing — a livelocked retry storm, a
partition that strands queued messages, a fault scenario that kills
every path while endpoints keep redialing.  From outside, a wedged run
and a healthy slow run look identical: the process is alive, the cycle
counter advances, nothing returns.  :class:`RunWatchdog` is an engine
observer that tells them apart *from inside* the simulation:

* **progress** — a cursor over the network's
  :class:`~repro.endpoint.messages.MessageLog` (which records only
  *finished* messages) counts completions; the watchdog remembers the
  last cycle any message finished.
* **stall** — if work is pending (an endpoint send FSM mid-protocol or
  a non-empty submission queue) and nothing has finished for
  ``stall_cycles``, the watchdog declares a stall.  It then builds an
  ad-hoc :class:`~repro.verify.oracle.Oracle` and runs its
  ``check_quiescent`` inventory — the same leak audit used at
  run end — to *diagnose* what is stuck, emits a ``watchdog.stall``
  event to its sink (usually a
  :class:`~repro.telemetry.stream.TelemetryStream`), and records it on
  :attr:`RunWatchdog.stalls`.  Idle networks (no pending work) never
  stall, no matter how long they sit quiet.
* **heartbeats** — optionally, a small JSON file rewritten every
  ``heartbeat_every`` cycles with the current cycle, wall-clock time
  and delivered count.  Parallel trial workers point this at a
  per-trial path (via :data:`HEARTBEAT_ENV`), so when
  :class:`~repro.harness.parallel.TrialRunner` times a trial out it
  can report the last-known cycle instead of a silent
  ``trial_timeout``.

The watchdog implements the observer compression protocol
(``next_event_cycle``): it only forces wake-ups at its own heartbeat
boundaries and at the pending stall deadline, so it rides the
event-driven backends without disabling idle-gap compression.
"""

import json
import os
import time

from repro.sim.component import Component

#: Environment variable naming the heartbeat file for the current
#: (sub)process.  Set per-trial by the parallel runner; read by
#: :func:`heartbeat_path_from_env` and by the timeout path in
#: :class:`~repro.harness.parallel.TrialRunner`.
HEARTBEAT_ENV = "REPRO_HEARTBEAT_FILE"


def heartbeat_path_from_env():
    """The heartbeat path requested via :data:`HEARTBEAT_ENV`, if any."""
    return os.environ.get(HEARTBEAT_ENV) or None


def write_heartbeat(path, cycle, delivered, stalled=False):
    """Atomically (write-then-rename) record a liveness heartbeat."""
    payload = {
        "cycle": cycle,
        "delivered": delivered,
        "stalled": bool(stalled),
        "time": time.time(),
        "pid": os.getpid(),
    }
    tmp = "{}.tmp".format(path)
    with open(tmp, "w") as handle:
        json.dump(payload, handle)
    os.replace(tmp, path)
    return payload


def read_heartbeat(path):
    """The last heartbeat written to ``path``, or None if absent/torn."""
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


class Stall(object):
    """One detected stall: when, how long, and what the audit found."""

    __slots__ = ("cycle", "stalled_cycles", "pending", "violations")

    def __init__(self, cycle, stalled_cycles, pending, violations):
        self.cycle = cycle
        self.stalled_cycles = stalled_cycles
        self.pending = pending
        self.violations = list(violations)

    def as_dict(self):
        return {
            "cycle": self.cycle,
            "stalled_cycles": self.stalled_cycles,
            "pending": self.pending,
            "violations": [
                {
                    "component": v.router,
                    "port": v.port,
                    "rule": v.rule,
                    "detail": v.detail,
                }
                for v in self.violations
            ],
        }

    def __repr__(self):
        return "<Stall @{} after {} quiet cycles, {} pending, {} leak(s)>".format(
            self.cycle, self.stalled_cycles, self.pending, len(self.violations)
        )


class RunWatchdog(Component):
    """Engine observer flagging stalled runs and writing heartbeats.

    :param stall_cycles: quiet cycles (pending work, zero completions)
        before a stall is declared.
    :param heartbeat_path: file to rewrite with liveness heartbeats;
        defaults to :data:`HEARTBEAT_ENV` from the environment, else
        no heartbeats.
    :param heartbeat_every: cycles between heartbeat writes.
    :param sink: object with ``emit(event, cycle=..., **fields)`` —
        typically a :class:`~repro.telemetry.stream.TelemetryStream` —
        receiving ``watchdog.stall`` / ``watchdog.progress`` events.
    :param stall_limit: stop diagnosing after this many stalls (the
        condition persists; re-auditing every window just repeats the
        same inventory).
    """

    enabled = True
    name = "run-watchdog"

    def __init__(
        self,
        stall_cycles=2000,
        heartbeat_path=None,
        heartbeat_every=500,
        sink=None,
        stall_limit=5,
    ):
        self.stall_cycles = int(stall_cycles)
        self.heartbeat_path = (
            heartbeat_path
            if heartbeat_path is not None
            else heartbeat_path_from_env()
        )
        self.heartbeat_every = int(heartbeat_every)
        self.sink = sink
        self.stall_limit = stall_limit
        self.network = None
        self.stalls = []
        self.delivered = 0
        self._msg_cursor = 0
        self._last_progress_cycle = 0
        self._next_heartbeat = None
        self._stalled = False

    def bind(self, network):
        """Start observing ``network``; returns self."""
        if self.network is not None:
            raise ValueError("watchdog is already bound to a network")
        self.network = network
        cycle = network.engine.cycle
        self._msg_cursor = len(network.log.messages)
        self._last_progress_cycle = cycle
        if self.heartbeat_path:
            self._next_heartbeat = cycle
        network.engine.add_observer(self)
        return self

    # ------------------------------------------------------------------

    @property
    def stalled(self):
        """True while the run is in a declared, unrecovered stall."""
        return self._stalled

    def pending_work(self):
        """Count of in-progress message slots across live endpoints.

        Active send FSMs plus queued submissions — exactly the state
        ``check_quiescent`` audits.  Zero means an idle network, which
        by definition cannot stall.
        """
        pending = 0
        for endpoint in self.network.endpoints:
            if getattr(endpoint, "dead", False):
                continue
            pending += len(endpoint._sends) + len(endpoint._queue)
        return pending

    def tick(self, cycle):
        messages = self.network.log.messages
        if self._msg_cursor < len(messages):
            finished = len(messages) - self._msg_cursor
            self._msg_cursor = len(messages)
            self.delivered += finished
            self._last_progress_cycle = cycle
            if self._stalled:
                self._stalled = False
                if self.sink is not None:
                    self.sink.emit(
                        "watchdog.progress",
                        cycle=cycle,
                        finished=finished,
                        total_finished=self.delivered,
                    )
        elif (
            not self._stalled
            and cycle - self._last_progress_cycle >= self.stall_cycles
            and len(self.stalls) < self.stall_limit
        ):
            pending = self.pending_work()
            if pending:
                self._declare_stall(cycle, pending)
            else:
                # Idle, not stalled: restart the quiet timer so the
                # deadline stays ahead of the clock (and keeps naming
                # a future cycle for the compression hint).
                self._last_progress_cycle = cycle
        if (
            self._next_heartbeat is not None
            and cycle >= self._next_heartbeat
        ):
            write_heartbeat(
                self.heartbeat_path, cycle, self.delivered, self._stalled
            )
            self._next_heartbeat = cycle + self.heartbeat_every

    def next_event_cycle(self):
        """Observer compression hint: heartbeat or stall deadline,
        whichever is nearer (see
        :meth:`repro.sim.backends.EventEngine._compression_target`)."""
        nearest = float("inf")
        if self._next_heartbeat is not None:
            nearest = self._next_heartbeat
        if not self._stalled and len(self.stalls) < self.stall_limit:
            deadline = self._last_progress_cycle + self.stall_cycles
            if deadline < nearest:
                nearest = deadline
        return nearest

    def _declare_stall(self, cycle, pending):
        # Import here: verify -> telemetry would otherwise be a cycle.
        from repro.verify.oracle import Oracle

        network = self.network
        oracle = Oracle(
            list(network.all_routers()),
            channels=list(network.channels.values()),
            endpoints=list(network.endpoints),
        )
        violations = oracle.check_quiescent(cycle)
        stall = Stall(
            cycle, cycle - self._last_progress_cycle, pending, violations
        )
        self.stalls.append(stall)
        self._stalled = True
        if self.sink is not None:
            self.sink.emit("watchdog.stall", **stall.as_dict())
        if self.heartbeat_path:
            write_heartbeat(self.heartbeat_path, cycle, self.delivered, True)
        return stall


def attach_watchdog(network, **kwargs):
    """Create a :class:`RunWatchdog`, bind it to ``network``, return it."""
    return RunWatchdog(**kwargs).bind(network)
