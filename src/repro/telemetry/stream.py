"""Streaming telemetry: live JSONL run logs from a running simulation.

Everything else in :mod:`repro.telemetry` reports *post hoc* — metrics
snapshot at run end, traces export at run end — which makes a
long-running soak a black box until it finishes (or wedges).  A
:class:`TelemetryStream` is an engine observer that writes structured
events to an append-only JSONL *run log* while the simulation runs:

* ``run.start`` / ``run.end`` — run lifecycle, with caller metadata;
* ``metrics.delta`` — periodic deltas of the bound
  :class:`~repro.telemetry.hub.TelemetryHub`'s registry
  (:meth:`~repro.telemetry.metrics.MetricsSnapshot.delta_since`).
  Folding every delta in order reproduces the end-of-run
  :class:`~repro.telemetry.metrics.MetricsSnapshot` *exactly* — the
  stream is a lossless incremental transport for the run's metrics,
  and ``tests/telemetry/test_stream.py`` pins byte-identity;
* ``window.stats`` — per-window delivered count and latency
  percentiles (p50/p95/p99/p999), the live view of tail behaviour
  forming;
* ``fault.transition`` — fault injector apply/revert events, as they
  strike;
* ``snapshot.write`` — checkpoint-ring writes (see
  ``docs/checkpointing.md``);
* ``watchdog.*`` — stall diagnoses from a
  :class:`~repro.telemetry.watchdog.RunWatchdog` given the stream as
  its sink.

Every record is one JSON object per line with at least ``event`` and
``cycle``; ``t`` is wall-clock seconds since the stream opened (log
metadata only — nothing in the simulation ever reads it, so streamed
and unstreamed runs stay byte-identical).  ``metro-repro tail`` renders
a run log (optionally following it live); :func:`read_run_log` parses
one; :func:`merge_stream_metrics` folds its deltas back into a
snapshot.

The stream implements the observer compression protocol
(``next_event_cycle``): on the event-driven backends an attached
stream only forces wake-ups at its own flush and window boundaries, so
idle-gap compression keeps working between them.
"""

import json
import time

from repro.sim.component import Component
from repro.telemetry.metrics import MetricsSnapshot

#: Format tag carried by ``run.start``; bump on breaking changes.
STREAM_FORMAT = "metro-run-log-v1"

#: Per-event required fields enforced by :func:`validate_run_log`.
#: Journal events (``trial.*`` / ``sweep.*``, see
#: :mod:`repro.harness.journal`) are merged in at validation time so a
#: run log and a run journal can share tooling (``metro-repro tail``).
REQUIRED_FIELDS = {
    "metrics.delta": ("series", "seq"),
    "window.stats": ("window", "delivered"),
    "fault.transition": ("fault", "action"),
    "snapshot.write": ("path",),
    "watchdog.stall": ("stalled_cycles",),
    "run.end": ("deltas",),
}


# ---------------------------------------------------------------------------
# Snapshot <-> JSON (exact round trip)
# ---------------------------------------------------------------------------


def snapshot_to_jsonable(snapshot):
    """A pure-JSON rendering of ``snapshot`` that round-trips exactly.

    Unlike :meth:`MetricsSnapshot.as_dict` (which flattens for human
    reading), this encoding preserves every type distinction the
    snapshot's equality relies on: tuple keys become nested lists,
    histogram bucket indices stay integers (JSON objects would
    stringify them), gauge pairs keep their order.  Series are sorted
    by key repr, so equal snapshots serialize to identical documents.
    """
    out = []
    for (name, label_items), (kind, data) in sorted(
        snapshot.series.items(), key=lambda kv: repr(kv[0])
    ):
        if kind == "histogram":
            encoded = {
                "count": data["count"],
                "total": data["total"],
                "low": data["low"],
                "high": data["high"],
                "buckets": sorted(data["buckets"].items()),
            }
        elif kind == "gauge":
            encoded = list(data)
        else:
            encoded = data
        out.append([[name, [list(item) for item in label_items]], kind, encoded])
    return out


def snapshot_from_jsonable(data):
    """Rebuild a :class:`MetricsSnapshot` from
    :func:`snapshot_to_jsonable` output (e.g. parsed back from JSON)."""
    series = {}
    for entry in data:
        (name, label_items), kind, encoded = entry
        key = (name, tuple((k, v) for k, v in label_items))
        if kind == "histogram":
            decoded = {
                "count": encoded["count"],
                "total": encoded["total"],
                "low": encoded["low"],
                "high": encoded["high"],
                "buckets": {
                    index: count for index, count in encoded["buckets"]
                },
            }
        elif kind == "gauge":
            decoded = tuple(encoded)
        else:
            decoded = encoded
        series[key] = (kind, decoded)
    return MetricsSnapshot(series)


# ---------------------------------------------------------------------------
# The stream observer
# ---------------------------------------------------------------------------


class TelemetryStream(Component):
    """Engine observer streaming run telemetry as JSONL events.

    :param path: run-log file path (opened for append on bind), or any
        object with ``write``/``flush`` (e.g. ``sys.stdout`` for live
        piping; such handles are not closed by :meth:`close`).
    :param flush_every: cycles between ``metrics.delta`` events; 0
        disables periodic deltas (a final delta is still emitted on
        :meth:`close`, so merge-equality always holds).
    :param window_cycles: cycles per ``window.stats`` window; None
        disables window events.
    :param meta: JSON-able dict carried on the ``run.start`` record.

    Bind with :meth:`bind` (or :func:`attach_stream`); the stream picks
    up the network's bound :class:`~repro.telemetry.hub.TelemetryHub`
    for metric deltas — without one, lifecycle/window/fault events
    still stream, metric deltas are simply absent.
    """

    enabled = True
    name = "telemetry-stream"

    def __init__(self, path, flush_every=200, window_cycles=None, meta=None):
        self._own_handle = isinstance(path, str)
        self._path = path if self._own_handle else None
        self._handle = None if self._own_handle else path
        self.flush_every = int(flush_every)
        self.window_cycles = window_cycles
        self.meta = dict(meta or {})
        self.network = None
        self.hub = None
        self.events_written = 0
        self.deltas_written = 0
        self.closed = False
        self._t0 = None
        self._last = MetricsSnapshot()
        self._next_flush = None
        self._next_window = None
        self._window_index = 0
        self._msg_cursor = 0
        self._injector = None
        self._fault_cursor = 0

    # -- pickling (snapshot-ring support) --------------------------------

    def __getstate__(self):
        # Streams ride engine snapshots (they are engine observers),
        # but file handles do not pickle: a restored stream comes back
        # *inert* — closed, handleless — and a resumed run attaches a
        # fresh stream for its own leg (see ``resume_chaos_point``).
        state = dict(self.__dict__)
        state["_handle"] = None
        state["closed"] = True
        return state

    # -- binding ---------------------------------------------------------

    def bind(self, network, injector=None):
        """Open the log, emit ``run.start`` and start observing.

        :param injector: a :class:`~repro.faults.injector.FaultInjector`
            whose applied-fault history should stream as
            ``fault.transition`` events (also settable later via
            :meth:`observe_injector`).
        """
        if self.network is not None:
            raise ValueError("stream is already bound to a network")
        self.network = network
        self.hub = getattr(network, "telemetry", None)
        if self.hub is not None and not self.hub.enabled:
            self.hub = None
        if self._own_handle:
            self._handle = open(self._path, "a")
        self._t0 = time.perf_counter()
        cycle = network.engine.cycle
        if self.flush_every:
            self._next_flush = cycle + self.flush_every
        if self.window_cycles:
            self._window_index = cycle // self.window_cycles
            self._next_window = (self._window_index + 1) * self.window_cycles
        if injector is not None:
            self.observe_injector(injector)
        self.emit(
            "run.start",
            cycle=cycle,
            format=STREAM_FORMAT,
            flush_every=self.flush_every,
            window_cycles=self.window_cycles,
            metrics=self.hub is not None,
            meta=self.meta,
        )
        network.engine.add_observer(self)
        return self

    def observe_injector(self, injector):
        """Stream ``injector``'s applied-fault history as it grows."""
        self._injector = injector
        self._fault_cursor = len(injector.applied)

    # -- the observer tick ----------------------------------------------

    def tick(self, cycle):
        if self.closed:
            return
        if self._injector is not None:
            applied = self._injector.applied
            while self._fault_cursor < len(applied):
                entry = applied[self._fault_cursor]
                self._fault_cursor += 1
                self.emit(
                    "fault.transition",
                    cycle=entry.cycle,
                    fault=entry.fault.describe(),
                    action=entry.action,
                    scheduled=entry.scheduled,
                )
        if self._next_window is not None and cycle + 1 >= self._next_window:
            self._emit_window(cycle)
            self._window_index += 1
            self._next_window = (self._window_index + 1) * self.window_cycles
        if self._next_flush is not None and cycle + 1 >= self._next_flush:
            self.flush_delta(cycle)
            self._next_flush = cycle + 1 + self.flush_every

    def next_event_cycle(self):
        """The next cycle this observer must actually observe.

        The observer compression protocol (see
        :meth:`repro.sim.backends.EventEngine._compression_target`):
        between flush and window boundaries a stream tick on an idle
        network is a provable no-op (no new faults, no new messages,
        an unchanged registry yields an empty delta), so the
        event-driven backends may compress idle gaps up to — never
        past — the boundary this names.
        """
        nearest = float("inf")
        if self.closed:
            return nearest
        if self._next_flush is not None:
            nearest = self._next_flush - 1
        if self._next_window is not None and self._next_window - 1 < nearest:
            nearest = self._next_window - 1
        return nearest

    # -- event emission --------------------------------------------------

    def emit(self, event, cycle=None, **fields):
        """Write one JSONL record (public: watchdogs, harnesses)."""
        if self.closed or self._handle is None:
            return
        record = {"event": event}
        record["cycle"] = (
            cycle if cycle is not None
            else (self.network.engine.cycle if self.network else None)
        )
        if self._t0 is not None:
            record["t"] = round(time.perf_counter() - self._t0, 6)
        record.update(fields)
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        self.events_written += 1

    def flush_delta(self, cycle=None):
        """Emit a ``metrics.delta`` for everything since the last one."""
        if self.hub is None or self.hub.registry is None:
            return
        current = self.hub.registry.snapshot()
        delta = current.delta_since(self._last)
        self._last = current
        if not len(delta):
            return
        self.deltas_written += 1
        self.emit(
            "metrics.delta",
            cycle=cycle,
            seq=self.deltas_written,
            series=snapshot_to_jsonable(delta),
        )

    def notify_snapshot(self, path, cycle=None):
        """Record a checkpoint-ring write on the run log."""
        self.emit("snapshot.write", cycle=cycle, path=str(path))

    def _emit_window(self, cycle):
        log = self.network.log
        latencies = []
        delivered = 0
        messages = log.messages
        while self._msg_cursor < len(messages):
            message = messages[self._msg_cursor]
            self._msg_cursor += 1
            if message.outcome == "delivered":
                delivered += 1
                if message.latency is not None:
                    latencies.append(message.latency)
        stats = {
            "window": self._window_index,
            "start_cycle": self._window_index * self.window_cycles,
            "end_cycle": (self._window_index + 1) * self.window_cycles,
            "delivered": delivered,
        }
        if latencies:
            latencies.sort()
            stats["p50_latency"] = _percentile(latencies, 50)
            stats["p95_latency"] = _percentile(latencies, 95)
            stats["p99_latency"] = _percentile(latencies, 99)
            stats["p999_latency"] = _percentile(latencies, 99.9)
        self.emit("window.stats", cycle=cycle, **stats)

    # -- teardown --------------------------------------------------------

    def close(self, summary=None):
        """Flush the final delta, emit ``run.end`` and close the log.

        The final delta covers everything since the last periodic
        flush, so the merge of all ``metrics.delta`` events equals the
        end-of-run snapshot no matter where the run stopped relative
        to the flush period.  Idempotent.
        """
        if self.closed:
            return
        cycle = self.network.engine.cycle if self.network is not None else None
        if self._next_window is not None and cycle is not None:
            # Close the partial tail window so the log accounts for
            # every delivered message.
            if self._msg_cursor < len(self.network.log.messages):
                self._emit_window(cycle)
        self.flush_delta(cycle)
        fields = {"deltas": self.deltas_written}
        if summary:
            fields["summary"] = summary
        self.emit("run.end", cycle=cycle, **fields)
        self.closed = True
        if self._own_handle and self._handle is not None:
            self._handle.close()
        self._handle = None


def attach_stream(network, path, injector=None, **kwargs):
    """Create a :class:`TelemetryStream`, bind it, return it."""
    stream = TelemetryStream(path, **kwargs)
    return stream.bind(network, injector=injector)


# ---------------------------------------------------------------------------
# Reading run logs back
# ---------------------------------------------------------------------------


def _percentile(sorted_values, q):
    """Exact nearest-rank percentile over a pre-sorted list."""
    if not sorted_values:
        return None
    rank = max(
        0, min(len(sorted_values) - 1, int(len(sorted_values) * q / 100.0))
    )
    return sorted_values[rank]


def read_run_log(path_or_lines):
    """Parse a JSONL run log into a list of event dicts.

    Accepts a path or an iterable of lines.  Blank lines are skipped;
    a torn final line (a crash mid-write) is ignored, everything else
    must parse — a malformed interior line raises ``ValueError`` with
    its line number.
    """
    if isinstance(path_or_lines, str):
        with open(path_or_lines) as handle:
            lines = handle.readlines()
    else:
        lines = list(path_or_lines)
    events = []
    for number, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except ValueError:
            if number == len(lines):
                break  # torn tail from an interrupted writer
            raise ValueError(
                "malformed run-log record on line {}: {!r}".format(
                    number, line[:120]
                )
            )
    return events


def merge_stream_metrics(events):
    """Fold a run log's ``metrics.delta`` events into one snapshot.

    The result equals the end-of-run :class:`MetricsSnapshot` of the
    streamed run — the lossless-transport property the stream tests
    pin.
    """
    merged = MetricsSnapshot()
    for event in events:
        if event.get("event") == "metrics.delta":
            merged = merged.merge(snapshot_from_jsonable(event["series"]))
    return merged


def validate_run_log(events):
    """Schema-check parsed run-log events; returns the event count.

    Requires a leading ``run.start`` with the known format tag, an
    integer-or-null ``cycle`` on every record, and per-event required
    fields.  Raises ``ValueError`` on the first offense (mirrors
    :func:`repro.telemetry.spans.validate_trace_events` — CI gates
    streamed artifacts with it).
    """
    if not events:
        raise ValueError("run log is empty")
    first = events[0]
    if first.get("event") != "run.start":
        raise ValueError("run log must begin with a run.start event")
    if first.get("format") != STREAM_FORMAT:
        raise ValueError(
            "unknown run-log format {!r} (expected {!r})".format(
                first.get("format"), STREAM_FORMAT
            )
        )
    # Lazy import: journal builds on this module, not the reverse.
    from repro.harness.journal import JOURNAL_REQUIRED_FIELDS

    required = dict(REQUIRED_FIELDS)
    required.update(JOURNAL_REQUIRED_FIELDS)
    for index, event in enumerate(events):
        kind = event.get("event")
        if not isinstance(kind, str):
            raise ValueError("record {} has no event field".format(index))
        cycle = event.get("cycle")
        if cycle is not None and not isinstance(cycle, int):
            raise ValueError(
                "record {} ({}) has non-integer cycle {!r}".format(
                    index, kind, cycle
                )
            )
        for field in required.get(kind, ()):
            if field not in event:
                raise ValueError(
                    "record {} ({}) is missing field {!r}".format(
                        index, kind, field
                    )
                )
    return len(events)
