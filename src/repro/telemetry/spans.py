"""Span-based message lifecycle tracing with Chrome trace-event export.

A *span* is a named interval on a *track* (one endpoint source port,
one router) measured in simulated cycles.  The endpoint protocol maps
naturally onto a span tree per send attempt::

    attempt #1 ──────────────────────────────┐
      setup (header words)                   │
      stream (payload + checksum + TURN)     │
      reply (await STATUS/ack)               │
    attempt #2 ...                           │

with zero-length *instants* marking point events (a BCB drop arriving,
a router opening or turning a connection).  The recorder keeps
completed spans in an optional ring buffer (``max_spans``) so tracing
a long run has bounded memory: the newest spans survive, and
``dropped`` counts what the ring evicted.

:meth:`SpanRecorder.to_chrome` renders everything as Chrome
trace-event JSON (the ``traceEvents`` array format), which loads
directly in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``
— one simulated cycle is exported as one microsecond.
:func:`validate_trace_events` checks a document against the subset of
the trace-event schema we emit; CI runs it over the artifact exported
by ``repro send --trace-export``.
"""

import json
from collections import deque

#: Phase constants from the Chrome trace-event format.
_PH_COMPLETE = "X"
_PH_INSTANT = "i"
_PH_METADATA = "M"


class Span:
    """One completed (or still-open) interval on a track."""

    __slots__ = ("track", "name", "cat", "begin", "end", "args", "depth")

    def __init__(self, track, name, cat, begin, args, depth):
        self.track = track
        self.name = name
        self.cat = cat
        self.begin = begin
        self.end = None
        self.args = args
        self.depth = depth

    @property
    def duration(self):
        return None if self.end is None else self.end - self.begin

    def __repr__(self):
        return "<Span {} {} @{}..{}>".format(
            self.track, self.name, self.begin, self.end
        )


class SpanRecorder:
    """Collects spans and instants; exports Chrome trace-event JSON.

    :param max_spans: ring-buffer capacity for *completed* spans and
        instants; None keeps everything.  When the ring is full the
        oldest record is evicted and counted in :attr:`dropped` —
        long-running simulations trace the recent past in bounded
        memory instead of growing without limit.
    """

    def __init__(self, max_spans=None):
        if max_spans is not None and max_spans < 1:
            raise ValueError(
                "max_spans must be >= 1 or None, got {}".format(max_spans)
            )
        self.max_spans = max_spans
        self.completed = deque()
        self.dropped = 0
        self._open = {}  # track -> stack of open spans

    # -- recording -------------------------------------------------------

    def begin(self, cycle, track, name, cat="span", args=None):
        """Open a span on ``track``; nests under any open span there."""
        stack = self._open.setdefault(track, [])
        span = Span(track, name, cat, cycle, dict(args or {}), len(stack))
        stack.append(span)
        return span

    def end(self, cycle, track, args=None):
        """Close the innermost open span on ``track`` (no-op if none)."""
        stack = self._open.get(track)
        if not stack:
            return None
        span = stack.pop()
        span.end = cycle
        if args:
            span.args.update(args)
        self._store(span)
        return span

    def end_all(self, cycle, track, args=None):
        """Close every open span on ``track``, innermost first."""
        closed = []
        while self._open.get(track):
            closed.append(self.end(cycle, track, args=args))
        return closed

    def instant(self, cycle, track, name, cat="event", args=None):
        """Record a zero-length point event on ``track``."""
        span = Span(track, name, cat, cycle, dict(args or {}), 0)
        span.end = cycle
        self._store(span)
        return span

    def _store(self, span):
        if self.max_spans is not None and len(self.completed) >= self.max_spans:
            self.completed.popleft()
            self.dropped += 1
        self.completed.append(span)

    # -- queries ---------------------------------------------------------

    def open_count(self):
        return sum(len(stack) for stack in self._open.values())

    def spans(self, name=None, track=None):
        """Completed spans, optionally filtered by name and/or track."""
        return [
            span
            for span in self.completed
            if (name is None or span.name == name)
            and (track is None or span.track == track)
        ]

    def clear(self):
        self.completed.clear()
        self._open.clear()
        self.dropped = 0

    # -- export ----------------------------------------------------------

    def to_chrome(self, process_name="metro-sim", final_cycle=None):
        """The Chrome trace-event document (a picklable plain dict).

        Still-open spans are exported as running to ``final_cycle``
        (default: the latest cycle seen) with an ``unfinished`` arg, so
        a trace cut mid-connection still renders.  Tracks become
        threads of a single process; thread ids are assigned in sorted
        track-name order, so the export is deterministic.
        """
        records = list(self.completed)
        open_spans = [
            span for stack in self._open.values() for span in stack
        ]
        horizon = final_cycle
        if horizon is None:
            horizon = 0
            for span in records + open_spans:
                horizon = max(horizon, span.begin, span.end or span.begin)

        tracks = sorted(
            {span.track for span in records}
            | {span.track for span in open_spans}
        )
        tids = {track: index + 1 for index, track in enumerate(tracks)}

        events = [
            {
                "name": "process_name",
                "ph": _PH_METADATA,
                "pid": 1,
                "tid": 0,
                "args": {"name": process_name},
            }
        ]
        for track in tracks:
            events.append(
                {
                    "name": "thread_name",
                    "ph": _PH_METADATA,
                    "pid": 1,
                    "tid": tids[track],
                    "args": {"name": track},
                }
            )

        def _emit(span, end, extra_args=None):
            args = dict(span.args)
            if extra_args:
                args.update(extra_args)
            if end == span.begin:
                event = {
                    "name": span.name,
                    "cat": span.cat,
                    "ph": _PH_INSTANT,
                    "s": "t",
                    "ts": span.begin,
                    "pid": 1,
                    "tid": tids[span.track],
                    "args": args,
                }
            else:
                event = {
                    "name": span.name,
                    "cat": span.cat,
                    "ph": _PH_COMPLETE,
                    "ts": span.begin,
                    "dur": end - span.begin,
                    "pid": 1,
                    "tid": tids[span.track],
                    "args": args,
                }
            events.append(event)

        for span in records:
            _emit(span, span.end)
        for span in sorted(open_spans, key=lambda s: (s.track, s.begin)):
            _emit(span, max(horizon, span.begin), {"unfinished": True})

        body = sorted(
            events[1 + len(tracks):],
            key=lambda e: (e["ts"], e["tid"], -e.get("dur", 0), e["name"]),
        )
        return {
            "traceEvents": events[: 1 + len(tracks)] + body,
            "displayTimeUnit": "ms",
            "otherData": {
                "time_unit": "1 cycle = 1us",
                "dropped_spans": self.dropped,
            },
        }

    def export(self, path, **kwargs):
        """Write :meth:`to_chrome` JSON to ``path``; returns the doc."""
        document = self.to_chrome(**kwargs)
        with open(path, "w") as handle:
            json.dump(document, handle, indent=1)
        return document


#: Instant-event scopes the trace-event format allows.
_INSTANT_SCOPES = {"g", "p", "t"}
_KNOWN_PHASES = {_PH_COMPLETE, _PH_INSTANT, _PH_METADATA, "B", "E", "b", "e", "n"}


def validate_trace_events(document):
    """Check ``document`` against the trace-event schema subset we emit.

    Accepts either the object form (``{"traceEvents": [...]}``) or a
    bare event array.  Raises :class:`ValueError` describing the first
    few problems; returns the number of events on success.  This is
    the gate CI applies to the artifact from ``repro send
    --trace-export`` before uploading it.
    """
    if isinstance(document, dict):
        events = document.get("traceEvents")
        if not isinstance(events, list):
            raise ValueError("object form needs a 'traceEvents' array")
    elif isinstance(document, list):
        events = document
    else:
        raise ValueError(
            "trace must be an event array or an object with 'traceEvents'"
        )

    problems = []
    for index, event in enumerate(events):
        where = "event[{}]".format(index)
        if not isinstance(event, dict):
            problems.append("{}: not an object".format(where))
            continue
        phase = event.get("ph")
        if phase not in _KNOWN_PHASES:
            problems.append("{}: unknown phase {!r}".format(where, phase))
            continue
        if not isinstance(event.get("name"), str):
            problems.append("{}: missing/non-string 'name'".format(where))
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                problems.append(
                    "{}: missing/non-integer {!r}".format(where, field)
                )
        if phase != _PH_METADATA:
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append("{}: bad 'ts' {!r}".format(where, ts))
        if phase == _PH_COMPLETE:
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append("{}: bad 'dur' {!r}".format(where, dur))
        if phase == _PH_INSTANT and event.get("s", "t") not in _INSTANT_SCOPES:
            problems.append(
                "{}: bad instant scope {!r}".format(where, event.get("s"))
            )
        if "args" in event and not isinstance(event["args"], dict):
            problems.append("{}: 'args' must be an object".format(where))
        if len(problems) >= 10:
            problems.append("... (further problems suppressed)")
            break
    if problems:
        raise ValueError(
            "invalid trace-event JSON:\n  " + "\n  ".join(problems)
        )
    return len(events)
