"""The disabled-telemetry null object.

Routers and endpoints hold a ``telemetry`` attribute that is either a
live :class:`~repro.telemetry.hub.TelemetryHub` or this null object.
Hot paths guard every hook call with ``if self.telemetry.enabled:`` —
one attribute load and a truth test when telemetry is off, which is
what keeps the disabled path within a few percent of an
uninstrumented simulator (see ``benchmarks/bench_telemetry_overhead``).
The no-op methods below exist so un-guarded call sites (cold paths,
user code) also work against the null object.
"""


class NullTelemetry:
    """Does nothing, cheaply.  There is one instance: ``NULL_TELEMETRY``."""

    enabled = False

    def attempt_started(self, cycle, endpoint, port, message):
        pass

    def attempt_stream(self, cycle, endpoint, port):
        pass

    def attempt_turn(self, cycle, endpoint, port):
        pass

    def attempt_finished(
        self, cycle, endpoint, port, message, outcome, blocked_stage=None
    ):
        pass

    def message_received(self, cycle, endpoint, n_words, checksum_ok):
        pass

    def router_event(self, cycle, router, kind, port, detail):
        pass

    def channel_activity(self, channel, down, up):
        pass

    def __repr__(self):
        return "<NullTelemetry>"

    def __reduce__(self):
        # Pickle to the singleton, so components restored from an
        # engine snapshot share NULL_TELEMETRY instead of each holding
        # a private copy.
        return (_null_telemetry, ())


def _null_telemetry():
    return NULL_TELEMETRY


NULL_TELEMETRY = NullTelemetry()
