"""Observability for the METRO reproduction.

Three layers, composable and individually optional:

* **Metrics** (:mod:`repro.telemetry.metrics`) — counters, gauges and
  log-bucketed histograms with hierarchical labels, snapshotted into
  picklable, mergeable :class:`MetricsSnapshot` objects so parallel
  sweeps aggregate across worker processes.
* **Spans** (:mod:`repro.telemetry.spans`) — message-lifecycle span
  trees and router point events, exportable as Chrome trace-event
  JSON (Perfetto-loadable), with an optional ring buffer for bounded
  memory.
* **Profiler** (:mod:`repro.telemetry.profiler`) — per-component-class
  tick time, cycles/second and allocation deltas for the simulator
  itself.
* **Streaming** (:mod:`repro.telemetry.stream`) — a
  :class:`TelemetryStream` observer writing live JSONL run logs
  (metric deltas, SLO-window stats, fault transitions, lifecycle)
  whose merged deltas exactly reproduce the end-of-run snapshot.
* **Watchdog** (:mod:`repro.telemetry.watchdog`) — a
  :class:`RunWatchdog` observer detecting stalled/livelocked runs via
  delivered-message progress, diagnosing them with the oracle's
  quiescence inventory, and writing liveness heartbeats for parallel
  trial workers.

The :class:`TelemetryHub` ties the first two to a live network; when
no hub is bound, components carry :data:`NULL_TELEMETRY` and the
instrumentation costs one attribute test per event site.  See
``docs/observability.md``.
"""

from repro.telemetry.hub import NULL_TELEMETRY, TelemetryHub, attach_telemetry
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.telemetry.profiler import ProfileReport, SimProfiler, profile_engine
from repro.telemetry.spans import Span, SpanRecorder, validate_trace_events
from repro.telemetry.stream import (
    STREAM_FORMAT,
    TelemetryStream,
    attach_stream,
    merge_stream_metrics,
    read_run_log,
    snapshot_from_jsonable,
    snapshot_to_jsonable,
    validate_run_log,
)
from repro.telemetry.watchdog import (
    HEARTBEAT_ENV,
    RunWatchdog,
    Stall,
    attach_watchdog,
    heartbeat_path_from_env,
    read_heartbeat,
    write_heartbeat,
)

__all__ = [
    "NULL_TELEMETRY",
    "TelemetryHub",
    "attach_telemetry",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "ProfileReport",
    "SimProfiler",
    "profile_engine",
    "Span",
    "SpanRecorder",
    "validate_trace_events",
    "STREAM_FORMAT",
    "TelemetryStream",
    "attach_stream",
    "merge_stream_metrics",
    "read_run_log",
    "snapshot_from_jsonable",
    "snapshot_to_jsonable",
    "validate_run_log",
    "HEARTBEAT_ENV",
    "RunWatchdog",
    "Stall",
    "attach_watchdog",
    "heartbeat_path_from_env",
    "read_heartbeat",
    "write_heartbeat",
]
