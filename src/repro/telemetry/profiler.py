"""A lightweight profiler for the simulator itself.

Where does a simulated cycle's wall-clock time go — routers,
endpoints, channel shifting, observers?  :class:`SimProfiler` answers
without external tooling: it wraps every registered component's
``tick`` (and every channel's ``advance``) with a
``perf_counter``-based accumulator keyed by component class, runs the
engine normally (deadlines, stop requests and pre-cycle hooks all
behave as usual), then restores the original methods and reports.

The numbers include the wrapper's own overhead (~a closure call and
two clock reads per tick), so treat them as *relative* shares rather
than absolute nanoseconds; the unwrapped cycles/second figure from
``bench_sim_performance.py`` remains the ground truth for throughput.
Allocation counts come from :func:`sys.getallocatedblocks` deltas
(CPython; reported as None elsewhere).
"""

import sys
import time


class ClassProfile:
    """Accumulated tick statistics for one component class."""

    __slots__ = ("class_name", "instances", "ticks", "seconds")

    def __init__(self, class_name):
        self.class_name = class_name
        self.instances = 0
        self.ticks = 0
        self.seconds = 0.0

    @property
    def us_per_tick(self):
        return 1e6 * self.seconds / self.ticks if self.ticks else 0.0


class ProfileReport:
    """The result of one :meth:`SimProfiler.profile` run."""

    def __init__(self, classes, cycles, wall_seconds, alloc_blocks):
        #: class name -> :class:`ClassProfile`, including the synthetic
        #: "Channel.advance" entry for channel pipeline shifting.
        self.classes = classes
        self.cycles = cycles
        self.wall_seconds = wall_seconds
        #: ``sys.getallocatedblocks`` delta over the run (None off CPython).
        self.alloc_blocks = alloc_blocks

    @property
    def cycles_per_second(self):
        return self.cycles / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def total_ticks(self):
        return sum(profile.ticks for profile in self.classes.values())

    @property
    def accounted_seconds(self):
        return sum(profile.seconds for profile in self.classes.values())

    def rows(self):
        """Table rows, most expensive class first."""
        accounted = self.accounted_seconds or 1.0
        ordered = sorted(
            self.classes.values(), key=lambda p: -p.seconds
        )
        return [
            {
                "component": profile.class_name,
                "instances": profile.instances,
                "ticks": profile.ticks,
                "total_ms": 1e3 * profile.seconds,
                "us_per_tick": profile.us_per_tick,
                "share_pct": 100.0 * profile.seconds / accounted,
            }
            for profile in ordered
        ]

    def format(self):
        # Imported here, not at module level: reporting lives in the
        # harness package, which itself imports telemetry lazily.
        from repro.harness.reporting import format_table

        header = (
            "{} cycles in {:.3f}s -> {:.0f} cycles/s "
            "({:.0f}% of wall time inside ticks{})".format(
                self.cycles,
                self.wall_seconds,
                self.cycles_per_second,
                100.0 * self.accounted_seconds / self.wall_seconds
                if self.wall_seconds
                else 0.0,
                ", {:+d} alloc blocks".format(self.alloc_blocks)
                if self.alloc_blocks is not None
                else "",
            )
        )
        return header + "\n" + format_table(
            self.rows(), floatfmt="{:.2f}", title=None
        )

    def __repr__(self):
        return "<ProfileReport {} cycles, {:.0f} cycles/s>".format(
            self.cycles, self.cycles_per_second
        )


class _ChannelTimer:
    """Stand-in placed in ``engine.channels`` while profiling.

    Channels declare ``__slots__`` (they are the most numerous objects
    in a simulation), so their ``advance`` cannot be wrapped in place;
    the profiler swaps these proxies into the engine's channel list for
    the duration of the run instead.
    """

    __slots__ = ("channel", "profile")

    def __init__(self, channel, profile):
        self.channel = channel
        self.profile = profile

    def advance(self):
        start = time.perf_counter()
        self.channel.advance()
        self.profile.seconds += time.perf_counter() - start
        self.profile.ticks += 1


class SimProfiler:
    """Profiles one engine's component ticks by class.

    >>> profiler = SimProfiler(network.engine)
    >>> report = profiler.profile(cycles=400)
    >>> print(report.format())
    """

    def __init__(self, engine):
        self.engine = engine

    def profile(self, cycles=None, run=None):
        """Run and measure; returns a :class:`ProfileReport`.

        Pass ``cycles`` to drive ``engine.run(cycles)``, or ``run`` (a
        zero-argument callable exercising the engine arbitrarily —
        e.g. ``network.run_until_quiet``) for custom loops.  Exactly
        one must be provided.
        """
        if (cycles is None) == (run is None):
            raise ValueError("provide exactly one of cycles= or run=")
        engine = self.engine
        profiles = {}

        def class_profile(name):
            profile = profiles.get(name)
            if profile is None:
                profile = ClassProfile(name)
                profiles[name] = profile
            return profile

        wrapped = []
        for component in list(engine.components) + list(engine.observers):
            profile = class_profile(type(component).__name__)
            profile.instances += 1
            original = component.tick

            def timed_tick(cycle, _original=original, _profile=profile):
                start = time.perf_counter()
                _original(cycle)
                _profile.seconds += time.perf_counter() - start
                _profile.ticks += 1

            component.tick = timed_tick
            wrapped.append(component)

        channel_profile = class_profile("Channel.advance")
        channel_profile.instances = len(engine.channels)
        saved_channels = engine.channels
        engine.channels = [
            _ChannelTimer(channel, channel_profile)
            for channel in saved_channels
        ]

        get_blocks = getattr(sys, "getallocatedblocks", None)
        start_cycle = engine.cycle
        blocks_before = get_blocks() if get_blocks else None
        wall_start = time.perf_counter()
        try:
            if cycles is not None:
                engine.run(cycles)
            else:
                run()
        finally:
            wall = time.perf_counter() - wall_start
            engine.channels = saved_channels
            for component in wrapped:
                del component.tick  # restore the class method
        alloc = (get_blocks() - blocks_before) if get_blocks else None
        return ProfileReport(
            profiles, engine.cycle - start_cycle, wall, alloc
        )


def profile_engine(engine, cycles):
    """One-shot convenience: profile ``cycles`` on ``engine``."""
    return SimProfiler(engine).profile(cycles=cycles)
