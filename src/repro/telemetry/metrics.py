"""Hierarchically-labeled metrics: counters, gauges, log histograms.

The sweeps in :mod:`repro.harness` need more than end-of-run totals:
per-stage blocking counts, latency *distributions*, per-router
occupancy.  This module is the aggregation substrate:

* :class:`MetricsRegistry` — creates and owns metric instruments.  An
  instrument is identified by a name plus a set of labels (``router``,
  ``stage``, ``port``, ``endpoint``, ``cause`` ...); the same
  ``(name, labels)`` pair always returns the same instrument, so
  callers may re-request handles freely (hot paths should still cache
  them).
* :class:`Counter` / :class:`Gauge` / :class:`Histogram` — the three
  instrument kinds.  Histograms are log-bucketed (powers of two), so a
  latency distribution spanning 1..100k cycles costs ~18 integers.
* :class:`MetricsSnapshot` — a picklable, plain-data copy of a
  registry's state.  Snapshots :meth:`~MetricsSnapshot.merge`
  commutatively for counters and histograms, which is what lets the
  parallel :class:`~repro.harness.parallel.TrialRunner` aggregate
  metrics across worker processes: each trial snapshots its own
  registry, and the sweep merges the snapshots in spec order — serial
  and parallel runs therefore produce *identical* merged snapshots.

Determinism: instruments never consume randomness and never affect
simulation behaviour; a metrics-enabled run delivers exactly the same
messages as a disabled one.
"""

import math


def bucket_index(value):
    """The log2 bucket for ``value``: bucket ``b`` covers [2^(b-1), 2^b).

    Bucket 0 collects everything below 1 (including zero and negative
    values, which the simulator's cycle counts never produce but a
    defensive histogram must not choke on).
    """
    if value < 1:
        return 0
    return math.frexp(value)[1]


def bucket_bounds(index):
    """(low, high) covered by bucket ``index`` (low inclusive)."""
    if index <= 0:
        return (0.0, 1.0)
    return (float(2 ** (index - 1)), float(2 ** index))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount=1):
        self.value += amount

    def _data(self):
        return self.value

    def _load(self, data):
        self.value = data


class Gauge:
    """A last-write-wins sampled value.

    ``updates`` counts how many times the gauge was set, so a merge can
    distinguish "never sampled" from "sampled and happened to be zero".
    """

    __slots__ = ("value", "updates")

    def __init__(self):
        self.value = 0.0
        self.updates = 0

    def set(self, value):
        self.value = value
        self.updates += 1

    def _data(self):
        return (self.value, self.updates)

    def _load(self, data):
        self.value, self.updates = data


class Histogram:
    """A log2-bucketed distribution with exact count/sum/min/max.

    ``observe(v)`` is O(1); percentiles are estimated by linear
    interpolation inside the containing bucket (clamped by the exact
    min/max), which is accurate to within a factor-of-two bucket width
    — plenty for latency tables, and mergeable across processes.
    """

    __slots__ = ("count", "total", "low", "high", "buckets")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.low = None
        self.high = None
        self.buckets = {}

    def observe(self, value):
        self.count += 1
        self.total += value
        if self.low is None or value < self.low:
            self.low = value
        if self.high is None or value > self.high:
            self.high = value
        index = bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    @property
    def mean(self):
        return self.total / self.count if self.count else float("nan")

    def percentile(self, q):
        """Estimated ``q``-th percentile (0..100)."""
        if not self.count:
            return float("nan")
        if q <= 0:
            return float(self.low)
        if q >= 100:
            return float(self.high)
        target = self.count * q / 100.0
        seen = 0.0
        for index in sorted(self.buckets):
            in_bucket = self.buckets[index]
            if seen + in_bucket >= target:
                lo, hi = bucket_bounds(index)
                lo = max(lo, float(self.low))
                hi = min(hi, float(self.high))
                if hi < lo:
                    hi = lo
                fraction = (target - seen) / in_bucket
                return lo + (hi - lo) * fraction
            seen += in_bucket
        return float(self.high)

    def _data(self):
        return {
            "count": self.count,
            "total": self.total,
            "low": self.low,
            "high": self.high,
            "buckets": dict(self.buckets),
        }

    def _load(self, data):
        self.count = data["count"]
        self.total = data["total"]
        self.low = data["low"]
        self.high = data["high"]
        self.buckets = dict(data["buckets"])


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


def _series_key(name, labels):
    return (name, tuple(sorted(labels.items())))


class MetricsRegistry:
    """Creates, owns and snapshots metric instruments."""

    def __init__(self):
        self._metrics = {}  # (name, sorted label items) -> (kind, instrument)

    def _instrument(self, kind, name, labels):
        key = _series_key(name, labels)
        entry = self._metrics.get(key)
        if entry is None:
            entry = (kind, _KINDS[kind]())
            self._metrics[key] = entry
        elif entry[0] != kind:
            raise ValueError(
                "metric {!r} already registered as a {}".format(key, entry[0])
            )
        return entry[1]

    def counter(self, name, **labels):
        return self._instrument("counter", name, labels)

    def gauge(self, name, **labels):
        return self._instrument("gauge", name, labels)

    def histogram(self, name, **labels):
        return self._instrument("histogram", name, labels)

    def __len__(self):
        return len(self._metrics)

    def snapshot(self):
        """A picklable :class:`MetricsSnapshot` of the current state."""
        return MetricsSnapshot(
            {
                key: (kind, instrument._data())
                for key, (kind, instrument) in self._metrics.items()
            }
        )


def _merge_entry(kind, left, right):
    if kind == "counter":
        return left + right
    if kind == "gauge":
        value, updates = left
        rvalue, rupdates = right
        # Last-write-wins in merge order; merge order is spec order in
        # every sweep, so serial and parallel agree.
        return (rvalue if rupdates else value, updates + rupdates)
    merged = {
        "count": left["count"] + right["count"],
        "total": left["total"] + right["total"],
        "low": _opt(min, left["low"], right["low"]),
        "high": _opt(max, left["high"], right["high"]),
        "buckets": dict(left["buckets"]),
    }
    for index, count in right["buckets"].items():
        merged["buckets"][index] = merged["buckets"].get(index, 0) + count
    return merged


def _opt(op, a, b):
    if a is None:
        return b
    if b is None:
        return a
    return op(a, b)


class MetricsSnapshot:
    """Plain-data metrics state: picklable, mergeable, comparable.

    ``series`` maps ``(name, ((label, value), ...))`` to
    ``(kind, data)`` where ``data`` is the instrument's primitive
    payload.  Everything inside is built-in types, so snapshots pickle
    cheaply across process boundaries and compare with ``==``.
    """

    __slots__ = ("series",)

    def __init__(self, series=None):
        self.series = dict(series or {})

    # -- combination -----------------------------------------------------

    def merge(self, other):
        """A new snapshot combining this one with ``other``.

        Counters and histogram buckets add; gauges keep the most
        recently merged write.  ``merge`` is associative, so folding a
        list of per-trial snapshots in spec order gives the same result
        no matter how the trials were executed.
        """
        series = dict(self.series)
        for key, (kind, data) in other.series.items():
            mine = series.get(key)
            if mine is None:
                series[key] = (kind, _copy_data(kind, data))
            else:
                if mine[0] != kind:
                    raise ValueError(
                        "cannot merge {} into {} for {!r}".format(
                            kind, mine[0], key
                        )
                    )
                series[key] = (kind, _merge_entry(kind, mine[1], data))
        return MetricsSnapshot(series)

    @staticmethod
    def merge_all(snapshots):
        """Fold ``snapshots`` (left to right) into one."""
        merged = MetricsSnapshot()
        for snapshot in snapshots:
            if snapshot is not None:
                merged = merged.merge(snapshot)
        return merged

    def delta_since(self, earlier):
        """The change from ``earlier`` to this snapshot, as a snapshot.

        The defining property is exact reconstruction: folding a run's
        successive deltas in order with :meth:`merge` rebuilds the
        final snapshot *equal by* ``==`` — which is what lets a
        streaming exporter (:mod:`repro.telemetry.stream`) emit
        periodic deltas whose merge is byte-identical to the
        end-of-run snapshot.  Per kind:

        * counters: the difference (omitted when zero — merging an
          implicit zero is a no-op);
        * gauges: the current value with the update-count difference
          (omitted when unsampled since ``earlier``);
        * histograms: count/total/bucket differences plus the
          *cumulative* min/max (mins/maxes only tighten under merge,
          so carrying the running extremes reproduces them exactly).

        Exactness holds for integer-valued observations (every
        instrument in the simulator observes cycle counts or event
        tallies, exact in float arithmetic); pathological non-integer
        floats could reassociate differently.

        Series absent from ``earlier`` are copied whole.  ``earlier``
        must be a previous snapshot of the same registry — instruments
        are never removed, so every earlier series must still exist.
        """
        series = {}
        for key, (kind, data) in self.series.items():
            old = earlier.series.get(key)
            if old is None:
                series[key] = (kind, _copy_data(kind, data))
                continue
            if old[0] != kind:
                raise ValueError(
                    "cannot delta {} against {} for {!r}".format(
                        kind, old[0], key
                    )
                )
            if kind == "counter":
                diff = data - old[1]
                if diff:
                    series[key] = (kind, diff)
            elif kind == "gauge":
                updates_diff = data[1] - old[1][1]
                if updates_diff:
                    series[key] = (kind, (data[0], updates_diff))
            else:
                if data["count"] == old[1]["count"]:
                    continue
                buckets = {}
                for index, count in data["buckets"].items():
                    diff = count - old[1]["buckets"].get(index, 0)
                    if diff:
                        buckets[index] = diff
                series[key] = (
                    kind,
                    {
                        "count": data["count"] - old[1]["count"],
                        "total": data["total"] - old[1]["total"],
                        "low": data["low"],
                        "high": data["high"],
                        "buckets": buckets,
                    },
                )
        return MetricsSnapshot(series)

    # -- queries ---------------------------------------------------------

    def names(self):
        return sorted({name for name, _labels in self.series})

    def value(self, name, **labels):
        """The counter/gauge value (or histogram data) for one series."""
        kind, data = self.series[_series_key(name, labels)]
        if kind == "gauge":
            return data[0]
        return data

    def get(self, name, default=None, **labels):
        key = _series_key(name, labels)
        if key not in self.series:
            return default
        return self.value(name, **labels)

    def labeled(self, name):
        """Every ``(labels_dict, kind, data)`` recorded under ``name``."""
        out = []
        for (series_name, label_items), (kind, data) in sorted(
            self.series.items(), key=lambda kv: repr(kv[0])
        ):
            if series_name == name:
                out.append((dict(label_items), kind, data))
        return out

    def total(self, name, by=None):
        """Sum a counter family, optionally grouped by one label key.

        ``total("router.conn.blocked")`` -> overall count;
        ``total("router.conn.blocked", by="stage")`` -> {stage: count}.
        """
        if by is None:
            acc = 0
            for _labels, kind, data in self.labeled(name):
                acc += data if kind == "counter" else data[0]
            return acc
        grouped = {}
        for labels, kind, data in self.labeled(name):
            group = labels.get(by)
            value = data if kind == "counter" else data[0]
            grouped[group] = grouped.get(group, 0) + value
        return grouped

    def histogram(self, name, **labels):
        """A :class:`Histogram` rebuilt from this snapshot's data."""
        kind, data = self.series[_series_key(name, labels)]
        if kind != "histogram":
            raise ValueError("{!r} is a {}, not a histogram".format(name, kind))
        histogram = Histogram()
        histogram._load(data)
        return histogram

    def as_dict(self):
        """A JSON-friendly rendering (string keys, plain values)."""
        out = {}
        for (name, label_items), (kind, data) in sorted(
            self.series.items(), key=lambda kv: repr(kv[0])
        ):
            label_text = ",".join(
                "{}={}".format(k, v) for k, v in label_items
            )
            key = "{}{{{}}}".format(name, label_text) if label_text else name
            if kind == "histogram":
                rendered = dict(data)
                rendered["buckets"] = {
                    str(index): count
                    for index, count in sorted(data["buckets"].items())
                }
                out[key] = rendered
            elif kind == "gauge":
                out[key] = data[0]
            else:
                out[key] = data
        return out

    def __eq__(self, other):
        return (
            isinstance(other, MetricsSnapshot) and self.series == other.series
        )

    def __ne__(self, other):
        return not self.__eq__(other)

    def __len__(self):
        return len(self.series)

    def __repr__(self):
        return "<MetricsSnapshot {} series>".format(len(self.series))


def _copy_data(kind, data):
    if kind == "histogram":
        copied = dict(data)
        copied["buckets"] = dict(data["buckets"])
        return copied
    return data
