"""The telemetry hub: one engine observer collecting everything.

A :class:`TelemetryHub` owns a :class:`~repro.telemetry.metrics
.MetricsRegistry` and (optionally) a
:class:`~repro.telemetry.spans.SpanRecorder`, and is *bound* to a
network: binding registers the hub as an engine **observer**
(:meth:`~repro.sim.engine.Engine.add_observer`, so its per-cycle
sampling sees fully-staged state regardless of registration order) and
hands every router, endpoint and channel a reference back to the hub.
Components report protocol events through the narrow hook API below;
the hub translates them into metric increments and span operations.

When no hub is bound, components hold the
:data:`~repro.telemetry.nullobj.NULL_TELEMETRY` singleton and every
hook site is skipped behind an ``enabled`` check — the disabled path
is a single attribute test, benchmarked in
``benchmarks/bench_telemetry_overhead.py``.

Metric names are documented in ``docs/observability.md``.
"""

from repro.sim.component import Component
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.nullobj import NULL_TELEMETRY  # noqa: F401  (re-export)
from repro.telemetry.spans import SpanRecorder

#: Router trace kinds promoted to named counter families; everything
#: else lands in the generic ``router.events`` counter.
_ROUTER_COUNTERS = {
    "conn-open": "router.conn.opened",
    "conn-blocked": "router.conn.blocked",
    "conn-turn": "router.conn.turns",
    "conn-drop": "router.conn.drops",
    "bcb-sent": "router.bcb.sent",
    "bcb-propagate": "router.bcb.propagated",
    "watchdog-teardown": "router.watchdog.teardowns",
}

#: Router kinds worth a point event on the span timeline.
_ROUTER_INSTANTS = {
    "conn-open",
    "conn-blocked",
    "conn-turn",
    "conn-drop",
    "bcb-sent",
    "bcb-propagate",
    "watchdog-teardown",
}


def _port_track(endpoint_index, port):
    return "ep{}/p{}".format(endpoint_index, port)


class TelemetryHub(Component):
    """Collects metrics, spans and samples for one network.

    :param metrics: collect counters/gauges/histograms.
    :param spans: record the span timeline (memory-heavier; sweeps
        normally run metrics-only).
    :param max_spans: ring-buffer cap for completed spans (None keeps
        all; see :class:`~repro.telemetry.spans.SpanRecorder`).
    :param sample_period: cycles between occupancy samples (router
        backward-port busy counts, channel in-flight words); 0
        disables sampling.
    :param router_spans: include router point events on the timeline
        (voluminous on big runs; metrics are unaffected).
    """

    enabled = True
    name = "telemetry-hub"

    def __init__(
        self,
        metrics=True,
        spans=True,
        max_spans=None,
        sample_period=16,
        router_spans=True,
    ):
        self.registry = MetricsRegistry() if metrics else None
        self.spans = SpanRecorder(max_spans=max_spans) if spans else None
        self.sample_period = sample_period
        self.router_spans = router_spans
        self.network = None
        self._router_labels = {}   # router name -> (stage, "s.b.i" label)
        self._router_counters = {}  # (name, kind, extra) -> Counter
        self._ep_counters = {}      # (endpoint, kind[, cause]) -> Counter
        self._channel_counters = None  # channel -> (fwd, rev) counters
        self._samplers = []
        self._hist_latency = None
        self._hist_attempts = None
        self._hist_queueing = None
        self._hist_occupancy = None
        self._util_samples = None

    # ------------------------------------------------------------------
    # Binding
    # ------------------------------------------------------------------

    def bind(self, network):
        """Attach to ``network``: observer + component back-references."""
        if self.network is not None:
            raise ValueError("hub is already bound to a network")
        self.network = network
        network.telemetry = self
        network.engine.add_observer(self)
        for (stage, block, index), router in network.router_grid.items():
            self._router_labels[router.name] = (
                stage, "{}.{}.{}".format(stage, block, index)
            )
            router.telemetry = self
        for endpoint in network.endpoints:
            endpoint.telemetry = self
        if self.registry is not None:
            self._hist_latency = self.registry.histogram("message.latency.cycles")
            self._hist_attempts = self.registry.histogram("message.attempts")
            self._hist_queueing = self.registry.histogram("message.queueing.cycles")
            self._hist_occupancy = self.registry.histogram("channel.in_flight")
            self._util_samples = self.registry.counter("router.util.samples")
            self._bind_channels(network)
            for router in network.all_routers():
                stage, label = self._router_labels[router.name]
                self.registry.gauge(
                    "router.util.ports", router=label, stage=stage
                ).set(router.params.o)
                self._samplers.append(
                    (
                        router,
                        self.registry.counter(
                            "router.util.busy", router=label, stage=stage
                        ),
                    )
                )
        return self

    def _bind_channels(self, network):
        self._channel_counters = {}
        for link in network.links:
            channel = network.channels[(link.src.key(), link.dst.key())]
            if link.src.kind == "endpoint":
                group = "inject"
            elif link.dst.kind == "endpoint":
                group = "deliver"
            else:
                group = "s{}->s{}".format(link.src.stage, link.dst.stage)
            self._channel_counters[channel] = (
                self.registry.counter("channel.words", link=group, dir="fwd"),
                self.registry.counter("channel.words", link=group, dir="rev"),
            )
            channel.telemetry = self

    # ------------------------------------------------------------------
    # Per-cycle sampling (engine observer)
    # ------------------------------------------------------------------

    def tick(self, cycle):
        if (
            self.registry is None
            or not self.sample_period
            or cycle % self.sample_period
        ):
            return
        self._util_samples.inc()
        for router, busy_counter in self._samplers:
            busy_counter.inc(len(router.busy_backward_ports()))
        if self._channel_counters is not None:
            total = 0
            for channel in self._channel_counters:
                total += channel.in_flight()
            self._hist_occupancy.observe(total)

    # ------------------------------------------------------------------
    # Endpoint hooks
    # ------------------------------------------------------------------

    def attempt_started(self, cycle, endpoint, port, message):
        if self.registry is not None:
            self._endpoint_counter(endpoint.index, "endpoint.send.attempts").inc()
        if self.spans is not None:
            track = _port_track(endpoint.index, port)
            self.spans.begin(
                cycle,
                track,
                "attempt",
                cat="message",
                args={
                    "dest": message.dest,
                    "attempt": message.attempts,
                    "words": len(message.payload),
                },
            )
            self.spans.begin(cycle, track, "setup", cat="message")

    def attempt_stream(self, cycle, endpoint, port):
        if self.spans is not None:
            track = _port_track(endpoint.index, port)
            self.spans.end(cycle, track)
            self.spans.begin(cycle, track, "stream", cat="message")

    def attempt_turn(self, cycle, endpoint, port):
        if self.spans is not None:
            track = _port_track(endpoint.index, port)
            self.spans.end(cycle, track)
            self.spans.begin(cycle, track, "reply", cat="message")

    def attempt_finished(
        self, cycle, endpoint, port, message, outcome, blocked_stage=None
    ):
        if self.registry is not None:
            if outcome == "delivered":
                self._endpoint_counter(
                    endpoint.index, "endpoint.send.delivered"
                ).inc()
                self._hist_attempts.observe(message.attempts)
                if message.latency is not None:
                    self._hist_latency.observe(message.latency)
                if (
                    message.start_cycle is not None
                    and message.queued_cycle is not None
                ):
                    self._hist_queueing.observe(
                        message.start_cycle - message.queued_cycle
                    )
            else:
                self._endpoint_counter(
                    endpoint.index, "endpoint.send.failures", cause=outcome
                ).inc()
                if blocked_stage is not None:
                    key = ("blocked.stage", blocked_stage)
                    counter = self._ep_counters.get(key)
                    if counter is None:
                        counter = self.registry.counter(
                            "endpoint.blocked.stage", stage=blocked_stage
                        )
                        self._ep_counters[key] = counter
                    counter.inc()
        if self.spans is not None:
            track = _port_track(endpoint.index, port)
            if outcome == "blocked-fast":
                self.spans.instant(
                    cycle,
                    track,
                    "bcb-drop",
                    cat="message",
                    args={"stage": blocked_stage},
                )
            self.spans.end_all(cycle, track, args={"outcome": outcome})

    def message_received(self, cycle, endpoint, n_words, checksum_ok):
        if self.registry is not None:
            self._endpoint_counter(endpoint.index, "endpoint.recv.messages").inc()
            if not checksum_ok:
                self._endpoint_counter(
                    endpoint.index, "endpoint.recv.checksum_failures"
                ).inc()
        if self.spans is not None:
            self.spans.instant(
                cycle,
                "ep{}/rx".format(endpoint.index),
                "deliver",
                cat="message",
                args={"words": n_words, "checksum_ok": checksum_ok},
            )

    def _endpoint_counter(self, index, name, **labels):
        key = (index, name) + tuple(sorted(labels.values()))
        counter = self._ep_counters.get(key)
        if counter is None:
            counter = self.registry.counter(name, endpoint=index, **labels)
            self._ep_counters[key] = counter
        return counter

    # ------------------------------------------------------------------
    # Router hook
    # ------------------------------------------------------------------

    def router_event(self, cycle, router, kind, port, detail):
        name = router.name
        stage, label = self._router_labels.get(name, (None, name))
        if self.registry is not None:
            extra = None
            if kind == "conn-blocked":
                extra = detail[1] if isinstance(detail, tuple) else None
            key = (name, kind, extra)
            counter = self._router_counters.get(key)
            if counter is None:
                family = _ROUTER_COUNTERS.get(kind)
                if family is None:
                    counter = self.registry.counter(
                        "router.events", kind=kind, stage=stage
                    )
                elif extra is not None:
                    counter = self.registry.counter(
                        family, router=label, stage=stage, mode=extra
                    )
                else:
                    counter = self.registry.counter(
                        family, router=label, stage=stage
                    )
                self._router_counters[key] = counter
            counter.inc()
        if (
            self.spans is not None
            and self.router_spans
            and kind in _ROUTER_INSTANTS
        ):
            self.spans.instant(
                cycle,
                name,
                kind,
                cat="router",
                args={"port": port, "detail": repr(detail)},
            )

    # ------------------------------------------------------------------
    # Channel hook
    # ------------------------------------------------------------------

    def channel_activity(self, channel, down, up):
        counters = self._channel_counters.get(channel)
        if counters is None:
            return
        if down is not None:
            counters[0].inc()
        if up is not None:
            counters[1].inc()

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def snapshot(self):
        """A picklable metrics snapshot (None when metrics are off)."""
        return None if self.registry is None else self.registry.snapshot()

    def export_trace(self, path):
        """Write the span timeline as Chrome trace-event JSON."""
        if self.spans is None:
            raise ValueError("this hub was built with spans=False")
        final = self.network.engine.cycle if self.network is not None else None
        return self.spans.export(path, final_cycle=final)


def attach_telemetry(network, **kwargs):
    """Create a :class:`TelemetryHub`, bind it to ``network``, return it."""
    hub = TelemetryHub(**kwargs)
    hub.bind(network)
    return hub
