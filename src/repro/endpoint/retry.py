"""Retry backoff policies for the source endpoint.

The paper's protocol leaves the retry discipline to the source: after
a failed attempt the endpoint waits some number of cycles and
re-transmits, relying on random output selection to steer the retry
around congestion or faults (PAPER.md Section 4).  Historically the
simulator hard-coded a uniform draw from ``backoff=(lo, hi)``;
policies make the discipline pluggable without disturbing that
default's random stream.

A policy instance passed to several endpoints is ``clone()``d per
endpoint so stateful policies (e.g. :class:`BudgetedRetries`) never
share counters across sources.  Policies hold only plain data, so
cloning is a deepcopy and endpoints remain picklable.
"""

import copy


class RetryPolicy:
    """Decides how long to wait before re-sending a failed message.

    :meth:`delay` returns the number of idle cycles to wait (the
    endpoint requeues the message at ``cycle + 1 + delay``), or
    ``None`` to give the message up as undeliverable (the endpoint
    abandons it exactly as if ``max_attempts`` had run out).
    """

    def delay(self, rng, message):
        raise NotImplementedError

    def clone(self):
        """A per-endpoint copy; stateful policies must not be shared."""
        return copy.deepcopy(self)

    def describe(self):
        return type(self).__name__


class UniformBackoff(RetryPolicy):
    """Uniform random wait in ``[lo, hi]`` — the historical default.

    Draws ``rng.randint(lo, hi)`` exactly as the endpoint always has,
    so golden traces are unchanged when no policy is configured.
    """

    def __init__(self, lo=0, hi=3):
        if lo < 0 or hi < lo:
            raise ValueError("need 0 <= lo <= hi, got ({}, {})".format(lo, hi))
        self.lo = lo
        self.hi = hi

    def delay(self, rng, message):
        return rng.randint(self.lo, self.hi)

    def describe(self):
        return "uniform({}..{})".format(self.lo, self.hi)


class ExponentialBackoff(RetryPolicy):
    """Exponentially growing wait with optional jitter.

    The ceiling doubles (by ``factor``) with each failed attempt up to
    ``max_delay``; with ``jitter`` the wait is drawn uniformly from
    ``[0, ceiling]`` (decorrelates retries from sources that failed on
    the same hotspot), otherwise the ceiling itself is used.
    """

    def __init__(self, base=1, factor=2.0, max_delay=64, jitter=True):
        if base < 1 or factor < 1.0 or max_delay < base:
            raise ValueError(
                "need base >= 1, factor >= 1, max_delay >= base; got "
                "({}, {}, {})".format(base, factor, max_delay)
            )
        self.base = base
        self.factor = factor
        self.max_delay = max_delay
        self.jitter = jitter

    def delay(self, rng, message):
        ceiling = min(
            self.max_delay,
            int(self.base * self.factor ** max(0, message.attempts - 1)),
        )
        if self.jitter:
            return rng.randint(0, ceiling)
        return ceiling

    def describe(self):
        return "exponential(base={}, factor={}, max={}{})".format(
            self.base, self.factor, self.max_delay,
            ", jitter" if self.jitter else "",
        )


class BudgetedRetries(RetryPolicy):
    """Caps total retries per destination, delegating delay to ``inner``.

    Once ``budget`` retries have been spent on a destination, further
    failures toward it are declared undeliverable (``delay`` returns
    ``None``) — a source-side circuit breaker that stops pouring
    traffic at an unreachable region while other destinations keep
    their full retry discipline.
    """

    def __init__(self, budget=16, inner=None):
        if budget < 0:
            raise ValueError("budget must be >= 0, got {}".format(budget))
        self.budget = budget
        self.inner = inner if inner is not None else UniformBackoff()
        self._spent = {}

    def delay(self, rng, message):
        spent = self._spent.get(message.dest, 0)
        if spent >= self.budget:
            return None
        self._spent[message.dest] = spent + 1
        return self.inner.delay(rng, message)

    def describe(self):
        return "budgeted({} per dest, inner={})".format(
            self.budget, self.inner.describe()
        )
