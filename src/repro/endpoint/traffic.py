"""Workload generators.

Figure 3 of the paper measures "randomly distributed, 20-byte message
traffic ... a parallelism limited case where processors stall waiting
for message completion".  That is a *closed-loop* Bernoulli process:
an idle endpoint starts a new message with some per-cycle probability
and then stalls until the acknowledgment returns.  The injection
probability is the offered-load knob.

Additional generators cover the other workloads a router evaluation
needs: hotspot concentration, fixed permutations, and a simple trace
player for reproducible regression workloads.
"""

import random

from repro.endpoint.messages import Message


def random_payload(rng, words, w):
    """A random payload of ``words`` values of ``w`` bits each.

    Draws exactly ``w`` bits per word: masking a fixed-width draw would
    silently truncate payloads on datapaths wider than the draw.
    """
    return [rng.getrandbits(w) for _ in range(words)]


class TrafficSource:
    """Base: a per-endpoint callable factory.

    ``source_for(endpoint_index)`` returns the ``f(cycle) -> Message |
    None`` an :class:`~repro.endpoint.interface.Endpoint` consults when
    it has capacity.  Generators count what they hand out, so offered
    load can be reported exactly.

    Sources are plain callable objects (not closures) so a live
    network — endpoints and their attached sources included — pickles
    for engine snapshots (:mod:`repro.sim.snapshot`); the per-endpoint
    ``random.Random`` stream rides along and resumes mid-sequence.
    """

    def __init__(self, n_endpoints, w, message_words=20, seed=0):
        self.n_endpoints = n_endpoints
        self.w = w
        self.message_words = message_words
        self.seed = seed
        self.generated = 0

    def source_for(self, endpoint_index):
        raise NotImplementedError

    def attach(self, network):
        """Install a source on every endpoint of ``network``."""
        for endpoint in network.endpoints:
            endpoint.traffic_source = self.source_for(endpoint.index)
        return self

    def _rng(self, endpoint_index):
        return random.Random((self.seed << 20) ^ (endpoint_index * 7919 + 13))

    def _message(self, rng, dest):
        self.generated += 1
        return Message(
            dest=dest, payload=random_payload(rng, self.message_words, self.w)
        )


class UniformRandomTraffic(TrafficSource):
    """Closed-loop Bernoulli injection to uniform-random destinations.

    :param rate: probability an idle endpoint starts a message each
        cycle (the offered-load knob of Figure 3).
    :param exclude_self: don't address messages to the sender.
    """

    def __init__(self, n_endpoints, w, rate=0.01, message_words=20, seed=0,
                 exclude_self=True):
        super().__init__(n_endpoints, w, message_words, seed)
        self.rate = rate
        self.exclude_self = exclude_self

    def source_for(self, endpoint_index):
        return _UniformSource(self, self._rng(endpoint_index), endpoint_index)


class _UniformSource:
    """One endpoint's uniform Bernoulli injector (picklable callable)."""

    __slots__ = ("_traffic", "_rng", "_index")

    def __init__(self, traffic, rng, index):
        self._traffic = traffic
        self._rng = rng
        self._index = index

    def __call__(self, cycle):
        traffic = self._traffic
        rng = self._rng
        if rng.random() >= traffic.rate:
            return None
        dest = rng.randrange(traffic.n_endpoints)
        while traffic.exclude_self and dest == self._index:
            dest = rng.randrange(traffic.n_endpoints)
        return traffic._message(rng, dest)


class HotspotTraffic(TrafficSource):
    """Uniform traffic with a fraction concentrated on one endpoint."""

    def __init__(self, n_endpoints, w, rate=0.01, hotspot=0, fraction=0.2,
                 message_words=20, seed=0):
        super().__init__(n_endpoints, w, message_words, seed)
        self.rate = rate
        self.hotspot = hotspot
        self.fraction = fraction

    def source_for(self, endpoint_index):
        return _HotspotSource(self, self._rng(endpoint_index), endpoint_index)


class _HotspotSource:
    """One endpoint's hotspot injector (picklable callable)."""

    __slots__ = ("_traffic", "_rng", "_index")

    def __init__(self, traffic, rng, index):
        self._traffic = traffic
        self._rng = rng
        self._index = index

    def __call__(self, cycle):
        traffic = self._traffic
        rng = self._rng
        if rng.random() >= traffic.rate:
            return None
        if rng.random() < traffic.fraction:
            dest = traffic.hotspot
        else:
            dest = rng.randrange(traffic.n_endpoints)
        if dest == self._index:
            return None
        return traffic._message(rng, dest)


def bit_reverse(value, bits):
    result = 0
    for _ in range(bits):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


class PermutationTraffic(TrafficSource):
    """Every endpoint repeatedly sends to one fixed partner.

    :param permutation: ``"bit-reverse"``, ``"shift"``, or an explicit
        mapping list.
    """

    def __init__(self, n_endpoints, w, rate=0.01, permutation="bit-reverse",
                 message_words=20, seed=0):
        super().__init__(n_endpoints, w, message_words, seed)
        self.rate = rate
        if permutation == "bit-reverse":
            bits = max(1, (n_endpoints - 1).bit_length())
            self.mapping = [
                bit_reverse(e, bits) % n_endpoints for e in range(n_endpoints)
            ]
        elif permutation == "shift":
            self.mapping = [(e + n_endpoints // 2) % n_endpoints
                            for e in range(n_endpoints)]
        else:
            if sorted(permutation) != list(range(n_endpoints)):
                raise ValueError("explicit permutation must cover all endpoints")
            self.mapping = list(permutation)

    def source_for(self, endpoint_index):
        return _PartnerSource(
            self,
            self._rng(endpoint_index),
            endpoint_index,
            self.mapping[endpoint_index],
        )


class _PartnerSource:
    """One endpoint's fixed-partner injector (picklable callable)."""

    __slots__ = ("_traffic", "_rng", "_index", "_partner")

    def __init__(self, traffic, rng, index, partner):
        self._traffic = traffic
        self._rng = rng
        self._index = index
        self._partner = partner

    def __call__(self, cycle):
        traffic = self._traffic
        rng = self._rng
        if rng.random() >= traffic.rate or self._partner == self._index:
            return None
        return traffic._message(rng, self._partner)


def bit_complement(value, bits):
    return (~value) & ((1 << bits) - 1)


def tornado(value, n):
    """Tornado: each endpoint sends halfway around the ID space."""
    return (value + (n // 2 - 1)) % n


class AdversarialTraffic(TrafficSource):
    """The classic stress permutations: tornado / complement / neighbor.

    These patterns exist to defeat *structured* networks; a randomized
    multibutterfly should treat them like any other permutation (see
    ``benchmarks/bench_ablation_wiring.py`` for the comparison).

    :param pattern: ``"tornado"``, ``"complement"``, or ``"neighbor"``.
    """

    def __init__(self, n_endpoints, w, rate=0.01, pattern="tornado",
                 message_words=20, seed=0):
        super().__init__(n_endpoints, w, message_words, seed)
        self.rate = rate
        bits = max(1, (n_endpoints - 1).bit_length())
        if pattern == "tornado":
            self.mapping = [tornado(e, n_endpoints) for e in range(n_endpoints)]
        elif pattern == "complement":
            self.mapping = [
                bit_complement(e, bits) % n_endpoints for e in range(n_endpoints)
            ]
        elif pattern == "neighbor":
            self.mapping = [(e + 1) % n_endpoints for e in range(n_endpoints)]
        else:
            raise ValueError("unknown pattern {!r}".format(pattern))

    def source_for(self, endpoint_index):
        return _PartnerSource(
            self,
            self._rng(endpoint_index),
            endpoint_index,
            self.mapping[endpoint_index],
        )


class _TraceSource:
    """One endpoint's trace player.

    A callable (the ``f(cycle) -> Message | None`` endpoints consult)
    that also names its next arrival via :meth:`next_arrival_cycle`, so
    the event-driven engine backend can compress the idle gaps between
    trace events instead of polling through them.
    """

    __slots__ = ("_traffic", "_rng", "_queue")

    def __init__(self, traffic, rng, queue):
        self._traffic = traffic
        self._rng = rng
        self._queue = queue

    def __call__(self, cycle):
        queue = self._queue
        if not queue or queue[0][0] > cycle:
            return None
        _cycle, dest = queue.pop(0)
        return self._traffic._message(self._rng, dest)

    def next_arrival_cycle(self):
        """Cycle of the next queued event, or None when exhausted."""
        return self._queue[0][0] if self._queue else None


class TraceTraffic(TrafficSource):
    """Replays an explicit list of (cycle, src, dest) events."""

    def __init__(self, n_endpoints, w, events, message_words=20, seed=0):
        super().__init__(n_endpoints, w, message_words, seed)
        self.events = sorted(events)
        self._queues = {}
        for cycle, src, dest in self.events:
            self._queues.setdefault(src, []).append((cycle, dest))

    def source_for(self, endpoint_index):
        rng = self._rng(endpoint_index)
        queue = list(self._queues.get(endpoint_index, []))
        return _TraceSource(self, rng, queue)
