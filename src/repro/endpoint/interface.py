"""Source-responsible network interfaces (endpoints).

METRO routers are deliberately simple; the intelligence lives here.
An :class:`Endpoint` owns some number of *source ports* (wires into
stage 0) and *receive ports* (wires from the final stage) and runs the
end-to-end protocol of Section 4:

Sending
    header (per the codec) + payload + checksum word, then TURN.  The
    reply stream carries one STATUS word per router followed by the
    destination's acknowledgment and a TURN handing the direction
    back; the source then closes with DROP.  Blocked, corrupted,
    nacked, dropped or silent connections are *retried* — the routers'
    random output selection means each retry explores a fresh path, so
    the source needs no knowledge of the redundant wiring.

Receiving
    collect data words until TURN; verify the trailing checksum; reply
    with an ACK word (optionally application data from a reply
    handler, padded with DATA-IDLE while the handler's simulated
    latency elapses — the paper's variable-delay remote-read case),
    then TURN; finally expect the source's DROP.  A further data round
    instead of DROP re-enters the collect state, supporting protocols
    with any number of reversals.
"""

import random

from repro.core import words as W
from repro.endpoint import messages as M
from repro.endpoint.retry import UniformBackoff
from repro.sim.component import ACTIVE, Component, PARKED, POLL
from repro.telemetry.nullobj import NULL_TELEMETRY

ACK_OK = 1
ACK_BAD = 0

# Send phases.
_STREAMING = "streaming"
_AWAIT_REPLY = "await-reply"
_CLOSING = "closing"

# Receive phases.
_RX_IDLE = "rx-idle"
_RX_COLLECT = "rx-collect"
_RX_REPLY = "rx-reply"
_RX_AWAIT_CLOSE = "rx-await-close"


class _SendState:
    """Progress of one in-flight outgoing message attempt."""

    __slots__ = (
        "message",
        "port",
        "phase",
        "words",
        "position",
        "header_len",
        "statuses",
        "reply_words",
        "turn_seen",
        "timer",
    )

    def __init__(self, message, port, words, header_len=0):
        self.message = message
        self.port = port
        self.phase = _STREAMING
        self.words = words
        self.header_len = header_len
        self.position = 0
        self.statuses = []
        self.reply_words = []
        self.turn_seen = False
        self.timer = 0


class _RecvState:
    """Progress of one receive port."""

    __slots__ = ("phase", "buffer", "reply", "reply_position", "delay", "timer")

    def __init__(self):
        self.reset()

    def reset(self):
        self.phase = _RX_IDLE
        self.buffer = []
        self.reply = []
        self.reply_position = 0
        self.delay = 0
        self.timer = 0


class Endpoint(Component):
    """A network endpoint with source-responsible reliability.

    :param index: this endpoint's network address.
    :param codec: the network's
        :class:`~repro.network.headers.HeaderCodec` (shared).
    :param log: shared :class:`~repro.endpoint.messages.MessageLog`.
    :param n_stages: routers on every path (STATUS words expected).
    :param max_outstanding: concurrent sends; 1 models the
        parallelism-limited processors of Figure 3 ("each endpoint was
        restricted to only use one of its entering network ports at a
        time").
    :param reply_timeout: cycles to wait for reply words before
        declaring the connection dead and retrying.
    :param max_attempts: per-message retry budget (None = unlimited).
    :param backoff: (lo, hi) inclusive range of idle cycles inserted
        before a retry, drawn uniformly (the default policy).
    :param retry_policy: a :class:`~repro.endpoint.retry.RetryPolicy`
        overriding ``backoff``; it is ``clone()``d per endpoint so a
        stateful policy never shares counters across sources.  A
        policy returning ``None`` abandons the message (counted as
        undeliverable, same as exhausting ``max_attempts``).
    :param reply_handler: ``f(payload_words, checksum_ok) ->
        (reply_words, delay_cycles)`` run at the receiver; default
        replies with nothing extra and zero delay.
    :param verify_stage_checksums: compare each router's reported
        checksum against the expected value to detect (and count)
        in-network corruption even when the destination acked.
    :param seed: randomness for port choice / backoff.
    :param traffic_source: optional ``f(cycle) -> Message | None``
        consulted when the endpoint has capacity for new work.
    """

    def __init__(
        self,
        index,
        codec,
        log,
        n_stages,
        max_outstanding=1,
        reply_timeout=300,
        max_attempts=None,
        backoff=(0, 3),
        retry_policy=None,
        reply_handler=None,
        verify_stage_checksums=False,
        seed=0,
        traffic_source=None,
        trace=None,
        telemetry=None,
    ):
        self.index = index
        self.name = "ep{}".format(index)
        self.codec = codec
        self.log = log
        self.n_stages = n_stages
        self.max_outstanding = max_outstanding
        self.reply_timeout = reply_timeout
        self.max_attempts = max_attempts
        self.backoff = backoff
        self.retry_policy = (
            retry_policy if retry_policy is not None else UniformBackoff(*backoff)
        ).clone()
        #: Optional ``f(cycle, endpoint, send, cause, blocked_stage)``
        #: observer of every failed attempt; the online FaultManager
        #: hangs its evidence collection here.
        self.fault_listener = None
        self.reply_handler = reply_handler
        self.verify_stage_checksums = verify_stage_checksums
        self.trace = trace
        #: A live TelemetryHub, or the null object when telemetry is
        #: off (hot paths guard on ``.enabled`` — a single attribute
        #: test on the disabled path).
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._rng = random.Random((seed << 16) ^ index)
        self.traffic_source = traffic_source

        self.source_ends = []   # channel A-sides into stage 0
        self.receive_ends = []  # channel B-sides from the final stage
        self._recv_states = []
        self._sends = {}        # port index -> _SendState
        self._queue = []        # (not_before_cycle, Message)
        self._cycle = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach_source(self, channel_end):
        self.source_ends.append(channel_end)

    def attach_receive(self, channel_end):
        self.receive_ends.append(channel_end)
        self._recv_states.append(_RecvState())

    # ------------------------------------------------------------------
    # Application interface
    # ------------------------------------------------------------------

    def submit(self, message):
        """Queue ``message`` for delivery; returns it for tracking."""
        message.source = self.index
        if message.queued_cycle is None:
            message.queued_cycle = self._cycle
        self._queue.append((self._cycle, message))
        return message

    def idle(self):
        """True when nothing is queued or in flight at this endpoint."""
        return not self._queue and not self._sends

    def pending_count(self):
        return len(self._queue) + len(self._sends)

    # ------------------------------------------------------------------
    # Per-cycle behaviour
    # ------------------------------------------------------------------

    def tick(self, cycle):
        self._cycle = cycle
        for port in range(len(self.receive_ends)):
            self._service_receive(port)
        for port in list(self._sends):
            self._service_send(self._sends[port])
        self._maybe_generate(cycle)
        self._maybe_start_send(cycle)

    # ------------------------------------------------------------------
    # Activity protocol (event-driven engine backend)
    # ------------------------------------------------------------------

    def activity_state(self):
        """How much of a cycle this endpoint needs.

        Anything queued, in flight or mid-receive demands the full
        tick.  Otherwise a traffic source still needs polling each
        cycle (:meth:`fast_poll` — the source may consume randomness
        per cycle, so polls cannot be skipped), and a sourceless idle
        endpoint parks until a word arrives or a submit wakes it.
        """
        if self._sends or self._queue:
            return ACTIVE
        for state in self._recv_states:
            if state.phase != _RX_IDLE:
                return ACTIVE
        if self.traffic_source is not None and self.max_outstanding > 0:
            # With max_outstanding == 0 the generate loop never draws,
            # so the endpoint is inert despite the source: park it.
            return POLL
        return PARKED

    def fast_poll(self, cycle):
        """The POLL-state reduction of :meth:`tick`.

        Exact when nothing is queued, in flight, or arriving (the
        engine's wake rules guarantee arrivals promote the endpoint to
        a full tick first): receive and send service loops are no-ops,
        leaving only the traffic poll and a possible send start.  The
        first source draw is inlined — POLL guarantees zero pending
        sends, so the capacity check of ``_maybe_generate`` is vacuous
        for it — and the return value tells the engine whether the
        endpoint now has work (no re-classification call needed).
        """
        self._cycle = cycle
        message = self.traffic_source(cycle)
        if message is None:
            return False
        self.submit(message)
        self._maybe_generate(cycle)
        self._maybe_start_send(cycle)
        return True

    def on_park(self):
        """Nothing to normalize; endpoint state is already minimal."""

    def on_wake(self, cycle):
        """Resynchronize the clock after parked cycles.

        A parked component's ``_cycle`` goes stale; an out-of-band
        :meth:`submit` timestamps messages with it, so the engine
        resynchronizes before external work arrives.
        """
        if cycle > self._cycle:
            self._cycle = cycle

    def attached_channels(self):
        """``(channel, is_a_side)`` for every wired port.

        Source ports hold the A side of their stage-0 channel, receive
        ports the B side of their final-stage channel.
        """
        channels = [(end.channel, True) for end in self.source_ends]
        channels.extend((end.channel, False) for end in self.receive_ends)
        return channels

    def next_event_cycle(self):
        """Idle-run compression hint: next cycle the poll could act.

        ``None`` means unpredictable (a Bernoulli source consumes
        randomness every cycle — never compressible); ``inf`` means no
        pending work at all.  Trace-style sources expose the next
        arrival via ``next_arrival_cycle``.
        """
        source = self.traffic_source
        if source is None:
            return float("inf")
        probe = getattr(source, "next_arrival_cycle", None)
        if probe is None:
            return None
        due = probe()
        return float("inf") if due is None else due

    def _maybe_generate(self, cycle):
        if self.traffic_source is None:
            return
        while self.pending_count() < self.max_outstanding:
            message = self.traffic_source(cycle)
            if message is None:
                return
            self.submit(message)

    def _maybe_start_send(self, cycle):
        """Start the *oldest* ready message on a free port.

        Drain order is oldest-first by submission time
        (``queued_cycle``), queue position breaking ties.  Position
        alone is not enough: a retried message re-enters the queue at
        the tail (behind requests submitted after it), so under a deep
        multi-outstanding backlog — many clients multiplexed on one
        interface, a hotspot server forcing retries — a repeatedly
        unlucky message could be lapped by fresh submissions forever.
        Oldest-first bounds that unfairness: every backoff expiry, the
        most-overdue message gets the next free port (see
        ``tests/endpoint/test_fairness.py``).
        """
        if len(self._sends) >= self.max_outstanding or not self._queue:
            return
        free_ports = [
            p for p in range(len(self.source_ends)) if p not in self._sends
        ]
        if not free_ports:
            return
        entry = None
        entry_key = None
        for position, candidate in enumerate(self._queue):
            if candidate[0] > cycle:
                continue
            key = (candidate[1].queued_cycle, position)
            if entry is None or key < entry_key:
                entry = candidate
                entry_key = key
        if entry is None:
            return
        self._queue.remove(entry)
        message = entry[1]
        port = self._rng.choice(free_ports)
        if message.start_cycle is None:
            message.start_cycle = cycle
        message.attempts += 1
        words, header_len = self._build_stream(message)
        self._sends[port] = _SendState(message, port, words, header_len)
        self._record("send-start", (message.dest, message.attempts))
        if self.telemetry.enabled:
            self.telemetry.attempt_started(cycle, self, port, message)

    def _build_stream(self, message):
        header = [W.data(v) for v in self.codec.encode(message.dest)]
        payload = [W.data(v) for v in message.payload]
        checksum = W.data(W.checksum_of(message.payload))
        return header + payload + [checksum, W.TURN_WORD], len(header)

    # ------------------------------------------------------------------
    # Send-side FSM
    # ------------------------------------------------------------------

    def _service_send(self, send):
        end = self.source_ends[send.port]
        bcb = end.recv_bcb()
        if bcb is not None:
            # Fast path reclamation: a router `bcb` stages in blocked.
            end.send(W.DROP_WORD)
            self._finish_attempt(send, M.BLOCKED_FAST, blocked_stage=bcb)
            return

        if send.phase == _STREAMING:
            end.send(send.words[send.position])
            send.position += 1
            if send.position >= len(send.words):
                send.phase = _AWAIT_REPLY
                send.timer = 0
                if self.telemetry.enabled:
                    self.telemetry.attempt_turn(self._cycle, self, send.port)
            elif send.position == send.header_len and self.telemetry.enabled:
                self.telemetry.attempt_stream(self._cycle, self, send.port)
            return

        if send.phase == _AWAIT_REPLY:
            word = end.recv()
            send.timer += 1
            if word is None or word.kind == W.IDLE:
                if send.timer >= self.reply_timeout:
                    end.send(W.DROP_WORD)
                    self._finish_attempt(send, M.TIMEOUT)
                return
            send.timer = 0
            if word.kind == W.STATUS:
                send.statuses.append(word.value)
            elif word.kind == W.DATA:
                send.reply_words.append(word.value)
            elif word.kind == W.TURN:
                send.turn_seen = True
                send.phase = _CLOSING
            elif word.kind == W.DROP:
                self._evaluate_dropped(send)
            return

        if send.phase == _CLOSING:
            end.send(W.DROP_WORD)
            self._evaluate_reply(send)

    def _evaluate_dropped(self, send):
        """The connection closed before the destination handed back."""
        blocked = [s for s in send.statuses if s.blocked]
        if blocked:
            stage = send.statuses.index(blocked[0]) + 1
            self._finish_attempt(send, M.BLOCKED, blocked_stage=stage)
        else:
            self._finish_attempt(send, M.DIED)

    def _evaluate_reply(self, send):
        message = send.message
        blocked = [s for s in send.statuses if s.blocked]
        if blocked:
            stage = send.statuses.index(blocked[0]) + 1
            self._finish_attempt(send, M.BLOCKED, blocked_stage=stage)
            return
        if not send.reply_words or send.reply_words[0] != ACK_OK:
            self._finish_attempt(send, M.NACKED)
            return
        if self.verify_stage_checksums and not self._stage_checksums_ok(send):
            self._finish_attempt(send, M.CORRUPTED)
            return
        message.reply_payload = send.reply_words[1:]
        message.done_cycle = self._cycle
        message.outcome = M.DELIVERED
        self.log.record(message)
        del self._sends[send.port]
        self._record("send-delivered", (message.dest, message.attempts))
        if self.telemetry.enabled:
            self.telemetry.attempt_finished(
                self._cycle, self, send.port, message, M.DELIVERED
            )

    def _stage_checksums_ok(self, send):
        expected = self.expected_stage_checksums(send.message)
        if len(send.statuses) != len(expected):
            return False
        return all(
            status.checksum == want
            for status, want in zip(send.statuses, expected)
        )

    def expected_stage_checksums(self, message):
        """What each router should report having forwarded.

        Stage ``s`` forwards the post-stage-``s`` header remnant, the
        payload, and the end-to-end checksum word; its STATUS checksum
        should cover exactly those values.
        """
        remnants = self.codec.simulate(message.dest)
        payload_tail = list(message.payload) + [W.checksum_of(message.payload)]
        expected = []
        for _direction, remaining_header in remnants:
            crc = W.Checksum()
            for value in remaining_header:
                crc.update(value)
            for value in payload_tail:
                crc.update(value)
            expected.append(crc.value)
        return expected

    def _finish_attempt(self, send, cause, blocked_stage=None):
        """An attempt failed; retry (after backoff) or abandon."""
        message = send.message
        message.failure_causes.append(cause)
        self.log.record_attempt_failure(cause)
        if blocked_stage is not None:
            message.blocked_stages.append(blocked_stage)
        del self._sends[send.port]
        self._record("send-failed", (message.dest, cause))
        if self.telemetry.enabled:
            self.telemetry.attempt_finished(
                self._cycle, self, send.port, message, cause,
                blocked_stage=blocked_stage,
            )
        if self.fault_listener is not None:
            self.fault_listener(self._cycle, self, send, cause, blocked_stage)
        delay = None
        if self.max_attempts is None or message.attempts < self.max_attempts:
            delay = self.retry_policy.delay(self._rng, message)
        if delay is None:
            message.outcome = M.ABANDONED
            message.done_cycle = self._cycle
            self.log.record(message)
            return
        self._queue.append((self._cycle + 1 + delay, message))

    # ------------------------------------------------------------------
    # Receive-side FSM
    # ------------------------------------------------------------------

    def _service_receive(self, port):
        end = self.receive_ends[port]
        state = self._recv_states[port]
        word = end.recv()

        if state.phase == _RX_IDLE:
            if word is not None and word.kind == W.DATA:
                state.buffer = [word.value]
                state.phase = _RX_COLLECT
                state.timer = 0
            return

        if state.phase == _RX_COLLECT:
            if word is None:
                state.timer += 1
                if state.timer >= self.reply_timeout:
                    state.reset()
                return
            state.timer = 0
            if word.kind == W.DATA:
                state.buffer.append(word.value)
            elif word.kind == W.TURN:
                self._assemble_reply(state)
            elif word.kind == W.DROP:
                state.reset()
            return

        if state.phase == _RX_REPLY:
            if state.delay > 0:
                state.delay -= 1
                end.send(W.IDLE_WORD)
                return
            end.send(state.reply[state.reply_position])
            state.reply_position += 1
            if state.reply_position >= len(state.reply):
                state.phase = _RX_AWAIT_CLOSE
                state.timer = 0
            return

        if state.phase == _RX_AWAIT_CLOSE:
            if word is None:
                state.timer += 1
                if state.timer >= self.reply_timeout:
                    state.reset()
                return
            state.timer = 0
            if word.kind == W.DROP:
                state.reset()
            elif word.kind == W.DATA:
                # Another forward round: the protocol above METRO may
                # reverse any number of times (Section 5.1).
                state.buffer = [word.value]
                state.phase = _RX_COLLECT

    def _assemble_reply(self, state):
        if len(state.buffer) < 1:
            checksum_ok = False
            payload = []
        else:
            payload = state.buffer[:-1]
            checksum_ok = W.checksum_of(payload) == state.buffer[-1]
        self.log.receiver_deliveries += 1
        self.log.receiver_arrivals.append((self._cycle, len(payload), checksum_ok))
        if not checksum_ok:
            self.log.receiver_checksum_failures += 1
        extra, delay = (
            self.reply_handler(payload, checksum_ok)
            if self.reply_handler is not None
            else ([], 0)
        )
        reply = [W.data(ACK_OK if checksum_ok else ACK_BAD)]
        if extra:
            reply.extend(W.data(v) for v in extra)
            reply.append(W.data(W.checksum_of(extra)))
        reply.append(W.TURN_WORD)
        state.reply = reply
        state.reply_position = 0
        state.delay = delay
        state.phase = _RX_REPLY
        self._record("recv-message", (len(payload), checksum_ok))
        if self.telemetry.enabled:
            self.telemetry.message_received(
                self._cycle, self, len(payload), checksum_ok
            )

    def _record(self, kind, detail):
        if self.trace is not None:
            self.trace.record(self._cycle, self.name, kind, detail)
