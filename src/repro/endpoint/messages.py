"""Message descriptors and the delivery log.

METRO pushes reliability out of the network and onto the endpoints:
the *source* detects blocked, damaged or lost connections and retries.
:class:`Message` is one application-level message;
:class:`MessageLog` aggregates the outcome of every message in a run —
the raw data behind every latency/throughput figure the harness
reports.
"""

# Terminal outcomes.
DELIVERED = "delivered"
ABANDONED = "abandoned"  # exceeded the attempt budget

# Per-attempt failure causes (attempts are retried unless abandoned).
BLOCKED = "blocked"          # a router had no free output (detailed reply)
BLOCKED_FAST = "blocked-fast"  # fast path reclamation (BCB) drop
NACKED = "nacked"            # destination checksum failed
TIMEOUT = "timeout"          # no reply within the source's patience
CORRUPTED = "corrupted"      # per-stage checksum mismatch on a turn
DIED = "died"                # connection dropped without a blocked status


class Message:
    """One application message from a source to a destination endpoint.

    :param dest: destination endpoint index.
    :param payload: list of word values (each < 2**w).
    :param queued_cycle: cycle the application handed the message to
        the network interface (set by the endpoint when submitted).
    """

    __slots__ = (
        "dest",
        "payload",
        "queued_cycle",
        "start_cycle",
        "done_cycle",
        "attempts",
        "outcome",
        "failure_causes",
        "blocked_stages",
        "reply_payload",
        "source",
    )

    def __init__(self, dest, payload):
        self.dest = dest
        self.payload = list(payload)
        self.queued_cycle = None
        self.start_cycle = None
        self.done_cycle = None
        self.attempts = 0
        self.outcome = None
        self.failure_causes = []
        self.blocked_stages = []
        self.reply_payload = None
        self.source = None

    @property
    def latency(self):
        """Cycles from first transmission to acknowledgment receipt."""
        if self.done_cycle is None or self.start_cycle is None:
            return None
        return self.done_cycle - self.start_cycle

    @property
    def total_latency(self):
        """Cycles from submission (including source queueing) to ack."""
        if self.done_cycle is None or self.queued_cycle is None:
            return None
        return self.done_cycle - self.queued_cycle

    def __repr__(self):
        return "<Message {}->{} {} attempts={}>".format(
            self.source, self.dest, self.outcome, self.attempts
        )


class MessageLog:
    """Collects every finished message of a simulation run."""

    def __init__(self):
        self.messages = []
        self.receiver_deliveries = 0
        self.receiver_checksum_failures = 0
        #: (cycle, payload_words, checksum_ok) per message *arrival* at
        #: a receiver — the one-way delivery instant, before any reply.
        self.receiver_arrivals = []
        #: Per-attempt failure tallies, updated live as attempts fail
        #: (finished-message tallies via failure_cause_counts()).
        self.attempt_failures = {}

    def record(self, message):
        self.messages.append(message)

    def record_attempt_failure(self, cause):
        self.attempt_failures[cause] = self.attempt_failures.get(cause, 0) + 1

    def delivered(self):
        return [m for m in self.messages if m.outcome == DELIVERED]

    def abandoned(self):
        return [m for m in self.messages if m.outcome == ABANDONED]

    def latencies(self):
        return [m.latency for m in self.delivered()]

    def total_latencies(self):
        return [m.total_latency for m in self.delivered()]

    def mean_latency(self):
        values = self.latencies()
        return sum(values) / len(values) if values else None

    def mean_attempts(self):
        delivered = self.delivered()
        if not delivered:
            return None
        return sum(m.attempts for m in delivered) / len(delivered)

    def failure_cause_counts(self):
        counts = {}
        for message in self.messages:
            for cause in message.failure_causes:
                counts[cause] = counts.get(cause, 0) + 1
        return counts

    def __len__(self):
        return len(self.messages)
