"""Source-responsible network interfaces, messages and traffic."""

from repro.endpoint.interface import ACK_BAD, ACK_OK, Endpoint
from repro.endpoint.messages import (
    ABANDONED,
    BLOCKED,
    BLOCKED_FAST,
    CORRUPTED,
    DELIVERED,
    DIED,
    Message,
    MessageLog,
    NACKED,
    TIMEOUT,
)
from repro.endpoint.retry import (
    BudgetedRetries,
    ExponentialBackoff,
    RetryPolicy,
    UniformBackoff,
)

__all__ = [
    "ABANDONED",
    "ACK_BAD",
    "ACK_OK",
    "BLOCKED",
    "BLOCKED_FAST",
    "BudgetedRetries",
    "CORRUPTED",
    "DELIVERED",
    "DIED",
    "Endpoint",
    "ExponentialBackoff",
    "Message",
    "MessageLog",
    "NACKED",
    "RetryPolicy",
    "TIMEOUT",
    "UniformBackoff",
]
