"""Source-responsible network interfaces, messages and traffic."""

from repro.endpoint.interface import ACK_BAD, ACK_OK, Endpoint
from repro.endpoint.messages import (
    ABANDONED,
    BLOCKED,
    BLOCKED_FAST,
    CORRUPTED,
    DELIVERED,
    DIED,
    Message,
    MessageLog,
    NACKED,
    TIMEOUT,
)

__all__ = [
    "ABANDONED",
    "ACK_BAD",
    "ACK_OK",
    "BLOCKED",
    "BLOCKED_FAST",
    "CORRUPTED",
    "DELIVERED",
    "DIED",
    "Endpoint",
    "Message",
    "MessageLog",
    "NACKED",
    "TIMEOUT",
]
