"""Analytical blocking: Lee's approximation for dilated circuit switching.

The simulation measures how often connection attempts block (Figure 3's
retry behaviour); classic switching theory predicts it.  Lee's
link-occupancy approximation, adapted to METRO's dilated multistage
networks with random output selection:

* every inter-stage wire carries the same mean load (uniform traffic on
  a randomized multibutterfly), so a wire is busy with probability
  ``u`` = delivered words per wire-cycle;
* an attempt is blocked at a stage when **all** ``d`` equivalent
  outputs of its dilation group are busy — probability ``u**d`` under
  Lee's independence assumption;
* the attempt survives the network with probability
  ``prod_s (1 - u**d_s)``.

The independence assumption is optimistic at high load (busy links are
correlated along paths) and pessimistic about retry dynamics (a
blocked attempt retries into the *same* average load), so agreement is
expected at light-to-moderate load and qualitative beyond — exactly
how Lee's formula behaves for real switch fabrics.
"""


def wire_utilization(delivered_load, endpoint_out_ports):
    """Mean per-wire occupancy from the harness's delivered-load metric.

    ``delivered_load`` is delivered words per endpoint-cycle; each
    endpoint owns ``endpoint_out_ports`` wires into every stage layer
    (wire count is conserved across stages for i = o routers), so the
    per-wire utilization is ``delivered_load / endpoint_out_ports``.
    """
    if endpoint_out_ports < 1:
        raise ValueError("endpoint_out_ports must be >= 1")
    return delivered_load / endpoint_out_ports


def stage_blocking(utilization, dilation):
    """P(all d equivalent outputs busy) under Lee independence."""
    if not 0 <= utilization <= 1:
        raise ValueError("utilization must be in [0, 1]")
    return utilization ** dilation


def path_blocking(utilization, dilations):
    """P(attempt blocks at some stage) for per-stage dilations."""
    survive = 1.0
    for dilation in dilations:
        survive *= 1.0 - stage_blocking(utilization, dilation)
    return 1.0 - survive


def expected_attempts(utilization, dilations):
    """Mean attempts per delivered message: geometric in P(block).

    Assumes independent retries (fresh random path each time — METRO's
    stochastic selection is what justifies this).
    """
    blocked = path_blocking(utilization, dilations)
    if blocked >= 1.0:
        return float("inf")
    return 1.0 / (1.0 - blocked)


def predict_from_result(result, plan):
    """Predictions for one harness :class:`ExperimentResult`.

    Returns ``(utilization, p_block, expected_attempts)`` computed from
    the measured delivered load and the plan's stage dilations.
    """
    utilization = wire_utilization(
        result.delivered_load, plan.endpoint_out_ports
    )
    dilations = [stage.dilation for stage in plan.stages]
    return (
        utilization,
        path_blocking(utilization, dilations),
        expected_attempts(utilization, dilations),
    )
