"""Table 5: contemporary routing technologies (1994).

The paper compares METRO against seven shipping/published routers by
estimating ``t_20,32`` — the unloaded time to move a 20-byte message
across a 32-processor configuration — from each system's published
per-router latency and channel rate:

    t_20,32 ~= hops * router_latency + 160 bits * t_bit

Each entry records the published figures, the hop-count assumptions
the estimate needs, and the value the paper printed, so the benchmark
regenerates the table and the tests check our recipe lands on (or
brackets) the paper's numbers.
"""

MESSAGE_BITS = 20 * 8


class Contemporary:
    """One row of Table 5.

    :param latency_ns: (lo, hi) published per-router/near-network
        latency in ns.
    :param t_bit_ns: seconds-per-bit of the channel (ns).
    :param hops: (lo, hi) router traversals for a 32-node configuration.
    :param paper_t_20_32_ns: (lo, hi) the value(s) printed in Table 5.
    """

    def __init__(
        self,
        name,
        description,
        latency_ns,
        t_bit_label,
        t_bit_ns,
        hops,
        paper_t_20_32_ns,
        reference,
    ):
        self.name = name
        self.description = description
        self.latency_ns = latency_ns
        self.t_bit_label = t_bit_label
        self.t_bit_ns = t_bit_ns
        self.hops = hops
        self.paper_t_20_32_ns = paper_t_20_32_ns
        self.reference = reference

    def serialization_ns(self):
        return MESSAGE_BITS * self.t_bit_ns

    def estimate_t_20_32(self):
        """(lo, hi) estimate from the paper's recipe."""
        lo = self.hops[0] * self.latency_ns[0] + self.serialization_ns()
        hi = self.hops[1] * self.latency_ns[1] + self.serialization_ns()
        return (lo, hi)

    def row(self):
        est = self.estimate_t_20_32()
        return {
            "router": self.name,
            "latency": self.description,
            "t_bit": self.t_bit_label,
            "t_20_32_paper_ns": self.paper_t_20_32_ns,
            "t_20_32_estimate_ns": est,
            "reference": self.reference,
        }

    def __repr__(self):
        return "<Contemporary {}>".format(self.name)


def table5_contemporaries():
    """All seven rows of Table 5, in the paper's order."""
    return [
        Contemporary(
            "DEC/GIGAswitch",
            "<15 us / 22-port xbar",
            latency_ns=(15000, 15000),
            t_bit_label="10 ns/1 b",
            t_bit_ns=10.0,
            hops=(1, 1),
            paper_t_20_32_ns=(16000, 16000),
            reference="[5]",
        ),
        Contemporary(
            "KSR/KSR-1",
            "3 us / 32-node ring",
            latency_ns=(3000, 3000),
            t_bit_label="30 ns/8 b",
            t_bit_ns=30.0 / 8,
            hops=(1, 1),
            paper_t_20_32_ns=(3500, 3500),
            reference="[12]",
        ),
        Contemporary(
            "TMC/CM-5 Router",
            "250 ns / 4-ary switch",
            latency_ns=(250, 250),
            t_bit_label="25 ns/4 b",
            t_bit_ns=25.0 / 4,
            hops=(2, 10),  # fat-tree up/down, nearest to farthest
            paper_t_20_32_ns=(1500, 3500),
            reference="[13]",
        ),
        Contemporary(
            "INMOS/C104",
            "<1 us / 32-port xbar",
            latency_ns=(1000, 1000),
            t_bit_label="10 ns/1 b",
            t_bit_ns=10.0,
            hops=(1, 1),
            paper_t_20_32_ns=(2500, 2500),
            reference="[18]",
        ),
        Contemporary(
            "MIT/J-Machine",
            "60 ns / 3D router",
            latency_ns=(60, 60),
            t_bit_label="30 ns/8 b",
            t_bit_ns=30.0 / 8,
            hops=(1, 7),  # 3D mesh of 32: adjacent to opposite corner
            paper_t_20_32_ns=(660, 1020),
            reference="[6]",
        ),
        Contemporary(
            "Caltech/MRC",
            "50-100 ns / 2D router",
            latency_ns=(50, 100),
            t_bit_label="11 ns/8 b",
            t_bit_ns=11.0 / 8,
            hops=(1, 6),  # 2D mesh of 32: adjacent to across the array
            paper_t_20_32_ns=(300, 800),
            reference="[21]",
        ),
        Contemporary(
            "Mercury/Race",
            "100 ns / 6-port xbar",
            latency_ns=(100, 100),
            t_bit_label="5 ns/8 b",
            t_bit_ns=5.0 / 8,
            hops=(4, 4),
            paper_t_20_32_ns=(500, 500),
            reference="[1]",
        ),
    ]
