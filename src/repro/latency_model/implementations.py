"""Table 3: METRO implementation examples.

Sixteen (potential) implementations across three technologies — the
fabricated METROJR-ORBIT gate array, 0.8µ standard cell, and 0.8µ
full custom — each with the paper's reported ``t_clk``/``t_io``/
``t_stg``/``t_bit``/stages/``t_20,32``.  The expected values are kept
alongside so the benchmark can regenerate the table and the tests can
assert an exact match with the Table 4 equations.
"""

from repro.latency_model import equations as EQ


class Implementation:
    """One row of Table 3."""

    def __init__(
        self,
        name,
        technology,
        t_clk,
        t_io,
        dp=1,
        hw=0,
        w=4,
        c=1,
        stage_radices=EQ.RADICES_32_NODE_4_STAGE,
        expected_t_stg=None,
        expected_t_20_32=None,
        interconnect_pipelined=True,
    ):
        self.name = name
        self.technology = technology
        self.t_clk = t_clk
        self.t_io = t_io
        self.dp = dp
        self.hw = hw
        self.w = w
        self.c = c
        self.stage_radices = tuple(stage_radices)
        self.expected_t_stg = expected_t_stg
        self.expected_t_20_32 = expected_t_20_32
        #: METRO treats the interconnect as its own pipeline stages
        #: (vtd); its ancestor RN1 folded wire flight time into the one
        #: routing pipeline stage, which capped its clock (Section 6.1).
        self.interconnect_pipelined = interconnect_pipelined

    @property
    def stages(self):
        return len(self.stage_radices)

    @property
    def word_width(self):
        """Effective datapath width (w per slice x cascade width)."""
        return self.w * self.c

    def t_stg(self):
        if not self.interconnect_pipelined:
            return EQ.t_on_chip(self.t_clk, self.dp)
        return EQ.t_stg(self.t_clk, self.t_io, self.dp)

    def t_bit(self):
        return EQ.t_bit(self.t_clk, self.w, self.c)

    def hbits(self):
        return EQ.hbits(self.w, self.hw, self.stage_radices, self.c)

    def t_20_32(self):
        if not self.interconnect_pipelined:
            total_bits = EQ.MESSAGE_BITS_20_BYTES + self.hbits()
            return self.stages * self.t_stg() + total_bits * self.t_bit()
        return EQ.t_20_32(
            self.t_clk,
            self.t_io,
            dp=self.dp,
            hw=self.hw,
            w=self.w,
            c=self.c,
            stage_radices=self.stage_radices,
        )

    def row(self):
        """The Table 3 row as a dict (for printing/benchmarks)."""
        return {
            "name": self.name,
            "technology": self.technology,
            "t_clk_ns": self.t_clk,
            "t_io_ns": self.t_io,
            "t_stg_ns": self.t_stg(),
            "t_bit": "{} ns/{} b".format(self.t_clk, self.word_width),
            "stages": self.stages,
            "t_20_32_ns": self.t_20_32(),
        }

    def __repr__(self):
        return "<Implementation {}>".format(self.name)


_GA = "1.2u Gate Array"
_SC = "0.8u Std. Cell"
_FC = "0.8u Full Custom"
_R4 = EQ.RADICES_32_NODE_4_STAGE
_R2 = EQ.RADICES_32_NODE_2_STAGE


def table3_implementations():
    """All sixteen rows of Table 3, in the paper's order."""
    return [
        Implementation("METROJR-ORBIT", _GA, 25, 10,
                       expected_t_stg=50, expected_t_20_32=1250),
        Implementation("METROJR-ORBIT 2-cascade", _GA, 25, 10, c=2,
                       expected_t_stg=50, expected_t_20_32=750),
        Implementation("METROJR-ORBIT 4-cascade", _GA, 25, 10, c=4,
                       expected_t_stg=50, expected_t_20_32=500),
        Implementation("METROJR w=8", _GA, 25, 10, w=8,
                       expected_t_stg=50, expected_t_20_32=725),
        Implementation("METROJR", _SC, 10, 5,
                       expected_t_stg=20, expected_t_20_32=500),
        Implementation("METROJR 2-cascade", _SC, 10, 5, c=2,
                       expected_t_stg=20, expected_t_20_32=300),
        Implementation("METROJR 4-cascade", _SC, 10, 5, c=4,
                       expected_t_stg=20, expected_t_20_32=200),
        Implementation("METRO i=o=8 w=4", _SC, 10, 5, stage_radices=_R2,
                       expected_t_stg=20, expected_t_20_32=460),
        Implementation("METROJR", _FC, 5, 3,
                       expected_t_stg=15, expected_t_20_32=270),
        Implementation("METRO i=o=8 w=4", _FC, 5, 3, stage_radices=_R2,
                       expected_t_stg=15, expected_t_20_32=240),
        Implementation("METROJR dp=2", _FC, 2, 3, dp=2,
                       expected_t_stg=10, expected_t_20_32=124),
        Implementation("METROJR hw=1", _FC, 2, 3, hw=1,
                       expected_t_stg=8, expected_t_20_32=120),
        Implementation("METROJR hw=1 2-cascade", _FC, 2, 3, hw=1, c=2,
                       expected_t_stg=8, expected_t_20_32=80),
        Implementation("METROJR hw=1 w=8", _FC, 2, 3, hw=1, w=8,
                       expected_t_stg=8, expected_t_20_32=80),
        Implementation("METRO i=o=8 hw=2 w=4", _FC, 2, 3, hw=2,
                       stage_radices=_R2,
                       expected_t_stg=8, expected_t_20_32=104),
        Implementation("METRO i=o=8 hw=2 w=4 4-cascade", _FC, 2, 3, hw=2,
                       c=4, stage_radices=_R2,
                       expected_t_stg=8, expected_t_20_32=44),
    ]


def metrojr_orbit():
    """The fabricated prototype (Section 6.1): 15K-gate 1.2u array."""
    return table3_implementations()[0]


def rn1():
    """RN1, the direct ancestor (Section 6.1, [19][20]).

    1.2u CMOS, i = o = 8, byte-wide datapaths, dilation 1 or 2.  Each
    routing stage was a *single* pipeline stage — wire flight time was
    not pipelined separately — which limited RN1 to about 50 MHz.
    Modeled with ``interconnect_pipelined=False`` so its stage latency
    is one 20 ns clock; the contrast with METROJR's higher clock at the
    same process is the architectural lesson METRO drew from it.
    """
    return Implementation(
        "RN1",
        "1.2u CMOS (ancestor)",
        t_clk=20,
        t_io=0,
        w=8,
        stage_radices=_R2,
        interconnect_pipelined=False,
        expected_t_stg=20,
    )
