"""Generalized analytical latency: beyond ``t_20,32``.

Table 3/4 fix the message at 20 bytes and the machine at 32 nodes.
Downstream users want the same arithmetic for *their* message sizes
and network shapes; this module provides it:

* :func:`t_message` — unloaded delivery latency for any message size
  over any stage-radix list, from any implementation's circuit numbers;
* :func:`plan_radices` — the radix list of a concrete
  :class:`~repro.network.topology.NetworkPlan`, so analytical and
  simulated networks line up;
* :func:`bandwidth_per_port` and :func:`saturation_messages_per_us` —
  the channel-rate side of the same numbers;
* :func:`crossover_message_bytes` — the message size at which one
  implementation overtakes another (e.g. where a cascaded router's
  header overhead is amortized).
"""

import math

from repro.latency_model import equations as EQ


def plan_radices(plan):
    """Stage radices of a concrete network plan."""
    return tuple(stage.radix for stage in plan.stages)


def t_message(
    impl,
    message_bytes,
    stage_radices=None,
):
    """Unloaded latency (ns) to deliver ``message_bytes`` through a
    network of the given stage radices using implementation ``impl``
    (an :class:`~repro.latency_model.implementations.Implementation`).
    """
    radices = tuple(
        stage_radices if stage_radices is not None else impl.stage_radices
    )
    return EQ.t_20_32(
        impl.t_clk,
        impl.t_io,
        dp=impl.dp,
        hw=impl.hw,
        w=impl.w,
        c=impl.c,
        stage_radices=radices,
        message_bits=message_bytes * 8,
    )


def bandwidth_per_port(impl):
    """Sustained channel bandwidth of one network port, in Mbit/s."""
    bits_per_cycle = impl.w * impl.c
    return bits_per_cycle / impl.t_clk * 1000.0


def saturation_messages_per_us(impl, message_bytes, stage_radices=None):
    """Back-to-back message rate one port sustains (messages/us).

    A circuit carries header + payload and then the wire is reusable;
    reversal/ack overhead is protocol-dependent and excluded, so this
    is the serialization-limited upper bound.
    """
    radices = tuple(
        stage_radices if stage_radices is not None else impl.stage_radices
    )
    header_bits = EQ.hbits(impl.w, impl.hw, radices, impl.c)
    total_bits = message_bytes * 8 + header_bits
    cycles = math.ceil(total_bits / (impl.w * impl.c))
    return 1000.0 / (cycles * impl.t_clk)


def crossover_message_bytes(slow_impl, fast_impl, stage_radices=None, limit=4096):
    """Smallest message size (bytes) where ``fast_impl`` wins.

    Returns None when ``fast_impl`` never catches up within ``limit``
    bytes.  Useful for cascade decisions: the wider router pays header
    replication on every stage but serializes payload faster, so there
    is a break-even size.
    """
    for message_bytes in range(1, limit + 1):
        if t_message(fast_impl, message_bytes, stage_radices) < t_message(
            slow_impl, message_bytes, stage_radices
        ):
            return message_bytes
    return None
