"""Table 4: the latency equations of the METRO architecture.

Given an implementation's circuit-level numbers — clock period
``t_clk``, i/o pad latency ``t_io``, wire delay ``t_wire``, router
pipeline depth ``dp``, header words ``hw``, slice width ``w`` and
cascade width ``c`` — these equations produce the stage latency and
the paper's application figure ``t_20,32``: the time to deliver a
5-word (20-byte) message (e.g. a 4-word cache line plus checksum)
across a 32-node multibutterfly.

All times are in nanoseconds.
"""

import math

from repro.network.headers import HeaderCodec

#: The 32-node example network of Table 3, 4-stage form: three
#: radix-2 dilation-2 stages followed by a radix-4 dilation-1 stage
#: (2*2*2*4 = 32 destinations) — the Figure 1 style scaled to 32.
RADICES_32_NODE_4_STAGE = (2, 2, 2, 4)

#: The 2-stage form used by the METRO i=o=8 rows: a radix-4 dilation-2
#: stage feeding a radix-8 dilation-1 stage (4*8 = 32).
RADICES_32_NODE_2_STAGE = (4, 8)

MESSAGE_BITS_20_BYTES = 20 * 8

#: Wire delay assumed throughout Table 3/4.
DEFAULT_T_WIRE = 3.0


def vtd(t_io, t_wire, t_clk):
    """Interconnect delay in clock cycles: ceil((t_io + t_wire)/t_clk)."""
    return math.ceil((t_io + t_wire) / t_clk)


def t_on_chip(t_clk, dp):
    """Time data traverses the chip: t_clk * dp."""
    return t_clk * dp


def t_stg(t_clk, t_io, dp, t_wire=DEFAULT_T_WIRE):
    """Chip-to-chip latency in the network: on-chip + interconnect."""
    return t_on_chip(t_clk, dp) + vtd(t_io, t_wire, t_clk) * t_clk


def t_bit(t_clk, w, c=1):
    """Seconds-per-bit: one w*c-bit word moves per clock."""
    return t_clk / (w * c)


def hbits(w, hw, stage_radices, c=1):
    """Routing bits required (Table 4), including cascade replication."""
    codec = HeaderCodec(w=w, hw=hw, stage_radices=list(stage_radices), cascade_width=c)
    return codec.hbits()


def t_20_32(
    t_clk,
    t_io,
    dp=1,
    hw=0,
    w=4,
    c=1,
    stage_radices=RADICES_32_NODE_4_STAGE,
    t_wire=DEFAULT_T_WIRE,
    message_bits=MESSAGE_BITS_20_BYTES,
):
    """Unloaded delivery latency for a 20-byte message, 32 nodes.

    ``stages * t_stg + (message_bits + hbits) * t_bit`` — the head of
    the message pays the pipeline once per stage; every bit of message
    and header then streams at the channel rate.
    """
    stages = len(stage_radices)
    stage_latency = stages * t_stg(t_clk, t_io, dp, t_wire)
    total_bits = message_bits + hbits(w, hw, stage_radices, c)
    return stage_latency + total_bits * t_bit(t_clk, w, c)
