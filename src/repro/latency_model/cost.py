"""Pin-budget economics: the width-cascading argument, quantified.

Section 5.1: "Routing components often tend to be pin-limited.  Width
cascading reduces the competition for pins between datapath width and
the number of forward and backward ports supported on a single IC.
For any fixed number of IC pins, this allows the IC to support more
forward and backward ports without sacrificing network datapath width
... this allows logical routers to be constructed from primitive
router ICs with less pins, and hence less expense."

This module prices that trade: a pin model for a METRO component, the
largest router geometry a pin budget affords at each slice width, and
the resulting 32-node network latency — so "narrow slices, more ports,
fewer stages, cascaded width" can be compared against "wide chip,
fewer ports, more stages" on one axis.
"""

import math

from repro.latency_model import equations as EQ

#: Per-port overhead beyond the data bits: frame/valid + the backward
#: control bit.
CONTROL_PINS_PER_PORT = 2
#: Pins per scan path (TCK, TMS, TDI, TDO).
PINS_PER_TAP = 4
#: Clock, reset, and the component's random output bit.
MISC_PINS = 3


def pin_count(i, o, w, sp=1, ri=1):
    """Signal pins of a METRO component (power/ground excluded)."""
    ports = i + o
    return ports * (w + CONTROL_PINS_PER_PORT) + sp * PINS_PER_TAP + ri + MISC_PINS


def max_ports_for_budget(pins, w, sp=1, ri=1):
    """Largest power-of-two ``i = o`` affordable within ``pins``."""
    available = pins - sp * PINS_PER_TAP - ri - MISC_PINS
    per_port = w + CONTROL_PINS_PER_PORT
    total_ports = available // per_port
    per_side = total_ports // 2
    if per_side < 1:
        return 0
    return 1 << (per_side.bit_length() - 1)


def stages_for_32_nodes(ports, dilation=2):
    """Stage structure reaching 32 destinations with i=o=``ports`` parts.

    Early stages at the given dilation plus one dilation-1 final stage
    (the Table 3 construction).  Returns the stage radix list, or None
    if 32 is unreachable with whole stages.
    """
    if ports < 2:
        return None
    early_radix = ports // dilation
    final_radix = ports
    if early_radix < 2:
        return None
    remaining = 32
    if remaining % final_radix:
        return None
    remaining //= final_radix
    radices = []
    while remaining > 1:
        if remaining % early_radix:
            return None
        radices.append(early_radix)
        remaining //= early_radix
    radices.append(final_radix)
    return tuple(radices)


def design_point(pins, w, c=1, t_clk=10, t_io=5, hw=0, sp=1, ri=1):
    """One (pin budget, slice width, cascade) design evaluated end to end.

    Returns a dict with the affordable geometry, the 32-node network it
    builds, and the delivered ``t_20,32`` — or None when the budget
    cannot build a working router.
    """
    ports = max_ports_for_budget(pins, w, sp=sp, ri=ri)
    if ports < 4:
        return None
    if w < math.log2(ports):
        return None  # Table 1: w >= log2(o)
    radices = stages_for_32_nodes(ports)
    if radices is None:
        return None
    latency = EQ.t_20_32(
        t_clk, t_io, hw=hw, w=w, c=c, stage_radices=radices
    )
    return {
        "pins": pins,
        "w": w,
        "cascade_c": c,
        "ports_per_side": ports,
        "pins_used": pin_count(ports, ports, w, sp=sp, ri=ri),
        "stages": len(radices),
        "radices": radices,
        "datapath_bits": w * c,
        "t_20_32_ns": latency,
        "chips_per_logical_router": c,
    }


def cascade_tradeoff_table(pins, t_clk=10, t_io=5):
    """The Section 5.1 comparison at one pin budget.

    Rows: (a) one wide chip spending pins on datapath width; (b) narrow
    chips spending pins on ports, cascaded 2- and 4-wide to recover the
    datapath.  Lower ``t_20_32`` with equal-or-wider datapath is the
    cascading win.
    """
    rows = []
    for w, c in ((16, 1), (8, 1), (8, 2), (4, 2), (4, 4)):
        point = design_point(pins, w, c=c, t_clk=t_clk, t_io=t_io)
        if point is not None:
            rows.append(point)
    return rows
