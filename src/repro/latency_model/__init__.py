"""Analytical latency models: Tables 3, 4 and 5 of the paper."""

from repro.latency_model import blocking, equations, general
from repro.latency_model.contemporaries import Contemporary, table5_contemporaries
from repro.latency_model.equations import hbits, t_20_32, t_bit, t_on_chip, t_stg, vtd
from repro.latency_model.implementations import (
    Implementation,
    metrojr_orbit,
    table3_implementations,
)

__all__ = [
    "Contemporary",
    "Implementation",
    "blocking",
    "equations",
    "general",
    "hbits",
    "metrojr_orbit",
    "t_20_32",
    "t_bit",
    "t_on_chip",
    "t_stg",
    "table3_implementations",
    "table5_contemporaries",
    "vtd",
]
