"""Host-side scan controller.

Drives TMS/TDI sequences into a router's (Multi)TAP to read the
IDCODE, read/write the Table 2 configuration chain, disable and
re-enable ports, and run the port-isolation tests that underpin
on-line fault diagnosis (paper, Section 5.1, Scan Support).
"""

import math

from repro.scan import registers as R
from repro.scan import tap as T
from repro.scan.multitap import MultiTap


def attach_scan(router, sp=None):
    """Create the MultiTAP + registers for one router; returns MultiTap.

    The result is also stored on the router as ``router.multitap`` so a
    controller can find it later.
    """
    regs = {
        T.CONFIG: R.make_config_register(router),
        T.SAMPLE: R.make_boundary_register(router),
        T.EXTEST: R.make_boundary_register(router),
    }
    multitap = MultiTap(
        regs,
        idcode=R.make_idcode(router.params),
        sp=sp if sp is not None else router.params.sp,
    )
    router.multitap = multitap
    return multitap


class ScanController:
    """Talks to one router through one TAP port of its MultiTAP."""

    def __init__(self, router, port=0):
        if not hasattr(router, "multitap"):
            attach_scan(router)
        self.router = router
        self.port = port

    # -- low-level TAP driving ------------------------------------------

    def _step(self, tms, tdi=0):
        return self.router.multitap.step(self.port, tms, tdi)

    def reset(self):
        for _ in range(5):  # five TMS=1 clocks reach reset from anywhere
            self._step(1)

    def _load_instruction(self, opcode):
        # From Run-Test/Idle: Select-DR, Select-IR, Capture-IR, then one
        # edge to enter Shift-IR (the capture edge shifts nothing).
        self._step(1)
        self._step(1)
        self._step(0)
        self._step(0)
        bits = [(opcode >> index) & 1 for index in range(T.IR_WIDTH)]
        for index, bit in enumerate(bits):
            last = index == len(bits) - 1
            self._step(1 if last else 0, bit)  # exit on the final shift
        self._step(1)  # Exit1-IR -> Update-IR
        self._step(0)  # -> Run-Test/Idle

    def _scan_dr(self, bits_in):
        """Shift ``bits_in`` through the selected DR; returns captured bits."""
        self._step(1)  # -> Select-DR
        self._step(0)  # -> Capture-DR
        self._step(0)  # -> Shift-DR (capture happened on this edge)
        out = []
        for index, bit in enumerate(bits_in):
            last = index == len(bits_in) - 1
            out.append(self._step(1 if last else 0, bit))
        self._step(1)  # Exit1-DR -> Update-DR
        self._step(0)  # -> Run-Test/Idle
        return out

    def _goto_idle(self):
        self.reset()
        self._step(0)  # -> Run-Test/Idle

    # -- high-level operations -------------------------------------------

    def read_idcode(self):
        self._goto_idle()
        self._load_instruction(T.IDCODE)
        bits = self._scan_dr([0] * 32)
        value = 0
        for index, bit in enumerate(bits):
            value |= (1 if bit else 0) << index
        return value

    def read_config_bits(self):
        """Read the chain non-destructively.

        One DR scan of 2x the chain width: the first half shifts the
        captured configuration out, the second half shifts it straight
        back in, so the mandatory Update-DR on exit rewrites exactly
        what was there — the live configuration never glitches.
        """
        self._goto_idle()
        self._load_instruction(T.CONFIG)
        width = R.config_chain_width(self.router.params)
        self._step(1)  # -> Select-DR
        self._step(0)  # -> Capture-DR
        self._step(0)  # -> Shift-DR
        captured = [self._step(0, 0) for _ in range(width)]
        for index, bit in enumerate(captured):
            last = index == width - 1
            self._step(1 if last else 0, bit)
        self._step(1)  # Exit1-DR -> Update-DR (rewrites the original)
        self._step(0)  # -> Run-Test/Idle
        return captured

    def write_config_bits(self, bits):
        self._goto_idle()
        self._load_instruction(T.CONFIG)
        return self._scan_dr(list(bits))

    def write_config(self, mutate):
        """Read-modify-write the configuration through the chain.

        ``mutate(config_copy)`` edits a scratch RouterConfig; the
        resulting serialization is shifted in and applied by Update-DR.
        Returns the previous chain bits.
        """
        from repro.core.parameters import RouterConfig

        scratch = RouterConfig(self.router.params)
        previous = self.read_config_bits()  # via the scan chain itself
        R.decode_config(scratch, previous)
        mutate(scratch)
        self.write_config_bits(R.encode_config(scratch))
        return previous

    def disable_port(self, port_id, drive=False):
        """Take one port out of service (optionally keep its driver)."""
        def mutate(config):
            config.port_enabled[port_id] = False
            config.off_port_drive[port_id] = drive
        self.write_config(mutate)

    def enable_port(self, port_id):
        def mutate(config):
            config.port_enabled[port_id] = True
            config.off_port_drive[port_id] = False
        self.write_config(mutate)

    def set_fast_reclaim(self, port_id, value):
        def mutate(config):
            config.fast_reclaim[port_id] = bool(value)
        self.write_config(mutate)

    def set_dilation(self, dilation):
        def mutate(config):
            config.dilation = dilation
        self.write_config(mutate)

    def sample_boundary(self):
        """SAMPLE: per-port last-seen data word values."""
        self._goto_idle()
        self._load_instruction(T.SAMPLE)
        width = R.boundary_width(self.router.params)
        bits = self._scan_dr([0] * width)
        w = self.router.params.w
        words = []
        for port_id in range(self.router.params.i + self.router.params.o):
            value = 0
            for index in range(w):
                value |= (1 if bits[port_id * w + index] else 0) << index
            words.append(value)
        return words

    def extest_drive(self, backward_port, value):
        """EXTEST: drive ``value`` out a disabled backward port.

        The port must already be disabled with off-port drive on (use
        :meth:`disable_port` with ``drive=True``).
        """
        params = self.router.params
        width = R.boundary_width(params)
        bits = [0] * width
        port_id = self.router.config.backward_port_id(backward_port)
        for index in range(params.w):
            bits[port_id * params.w + index] = (value >> index) & 1
        self._goto_idle()
        self._load_instruction(T.EXTEST)
        self._scan_dr(bits)
