"""IEEE 1149.1-1990 Test Access Port controller.

METRO integrates "extensive scan support using an IEEE 1149-1.1990
compliant Test Access Port (TAP)" (paper, Section 5.1): boundary scan
plus fine-grained on-line facilities — and, crucially, the TAP is how
METRO's mostly-static configuration options (Table 2) are set.

This is a faithful software model of the standard 16-state TAP
controller: TMS sequences walk the state machine, TDI shifts into the
selected register (instruction or data), TDO shifts out, captures
happen in Capture-* states and side effects in Update-* states.
"""

# The sixteen controller states.
TEST_LOGIC_RESET = "test-logic-reset"
RUN_TEST_IDLE = "run-test-idle"
SELECT_DR_SCAN = "select-dr-scan"
CAPTURE_DR = "capture-dr"
SHIFT_DR = "shift-dr"
EXIT1_DR = "exit1-dr"
PAUSE_DR = "pause-dr"
EXIT2_DR = "exit2-dr"
UPDATE_DR = "update-dr"
SELECT_IR_SCAN = "select-ir-scan"
CAPTURE_IR = "capture-ir"
SHIFT_IR = "shift-ir"
EXIT1_IR = "exit1-ir"
PAUSE_IR = "pause-ir"
EXIT2_IR = "exit2-ir"
UPDATE_IR = "update-ir"

#: state -> (next on TMS=0, next on TMS=1)
_TRANSITIONS = {
    TEST_LOGIC_RESET: (RUN_TEST_IDLE, TEST_LOGIC_RESET),
    RUN_TEST_IDLE: (RUN_TEST_IDLE, SELECT_DR_SCAN),
    SELECT_DR_SCAN: (CAPTURE_DR, SELECT_IR_SCAN),
    CAPTURE_DR: (SHIFT_DR, EXIT1_DR),
    SHIFT_DR: (SHIFT_DR, EXIT1_DR),
    EXIT1_DR: (PAUSE_DR, UPDATE_DR),
    PAUSE_DR: (PAUSE_DR, EXIT2_DR),
    EXIT2_DR: (SHIFT_DR, UPDATE_DR),
    UPDATE_DR: (RUN_TEST_IDLE, SELECT_DR_SCAN),
    SELECT_IR_SCAN: (CAPTURE_IR, TEST_LOGIC_RESET),
    CAPTURE_IR: (SHIFT_IR, EXIT1_IR),
    SHIFT_IR: (SHIFT_IR, EXIT1_IR),
    EXIT1_IR: (PAUSE_IR, UPDATE_IR),
    PAUSE_IR: (PAUSE_IR, EXIT2_IR),
    EXIT2_IR: (SHIFT_IR, UPDATE_IR),
    UPDATE_IR: (RUN_TEST_IDLE, SELECT_DR_SCAN),
}

# Standard instruction opcodes (4-bit IR).
IR_WIDTH = 4
BYPASS = 0b1111     # mandatory all-ones
IDCODE = 0b0001
SAMPLE = 0b0010     # sample/preload the boundary register
EXTEST = 0b0011     # drive boundary outputs from the register
CONFIG = 0b0100     # METRO extension: Table 2 configuration chain

_KNOWN = {BYPASS, IDCODE, SAMPLE, EXTEST, CONFIG}


class DataRegister:
    """A scannable data register.

    :param width: bits (fixed).
    :param capture: ``f() -> list[int]`` giving capture values.
    :param update: ``f(list[int])`` applying shifted-in values.
    """

    def __init__(self, width, capture=None, update=None):
        self.width = width
        self.bits = [0] * width
        self._capture = capture
        self._update = update

    def capture(self):
        if self._capture is not None:
            values = list(self._capture())
            if len(values) != self.width:
                raise ValueError(
                    "capture produced {} bits for a {}-bit register".format(
                        len(values), self.width
                    )
                )
            self.bits = [1 if v else 0 for v in values]

    def shift(self, tdi):
        """One shift clock: returns TDO (LSB out), TDI enters at MSB."""
        tdo = self.bits[0]
        self.bits = self.bits[1:] + [1 if tdi else 0]
        return tdo

    def update(self):
        if self._update is not None:
            self._update(list(self.bits))


class TapController:
    """One TAP: the FSM plus an instruction register and data registers.

    :param registers: mapping instruction opcode -> :class:`DataRegister`.
        BYPASS gets a mandatory 1-bit register automatically; unknown
        instructions select BYPASS, per the standard.
    :param idcode: 32-bit identification code (selected at reset).
    """

    def __init__(self, registers=None, idcode=0x1):
        self.state = TEST_LOGIC_RESET
        self.registers = dict(registers or {})
        self.registers.setdefault(BYPASS, DataRegister(1))
        self.registers.setdefault(
            IDCODE,
            DataRegister(32, capture=lambda: _int_bits(idcode, 32)),
        )
        self._ir_shift = [0] * IR_WIDTH
        self.instruction = IDCODE  # selected after reset, per the standard
        self.tdo = 0

    # ------------------------------------------------------------------

    def reset(self):
        self.state = TEST_LOGIC_RESET
        self.instruction = IDCODE

    def step(self, tms, tdi=0):
        """One TCK rising edge; returns TDO."""
        state = self.state
        tdo = 0
        if state == CAPTURE_DR:
            self._current_dr().capture()
        elif state == CAPTURE_IR:
            # Standard: capture-IR loads 01 in the low bits.
            self._ir_shift = _int_bits(0b0001, IR_WIDTH)
        elif state == SHIFT_DR:
            tdo = self._current_dr().shift(tdi)
        elif state == SHIFT_IR:
            tdo = self._ir_shift[0]
            self._ir_shift = self._ir_shift[1:] + [1 if tdi else 0]
        elif state == UPDATE_DR:
            self._current_dr().update()
        elif state == UPDATE_IR:
            opcode = _bits_int(self._ir_shift)
            self.instruction = opcode if opcode in self.registers else BYPASS

        self.state = _TRANSITIONS[state][1 if tms else 0]
        if self.state == TEST_LOGIC_RESET:
            self.instruction = IDCODE
        self.tdo = tdo
        return tdo

    def _current_dr(self):
        return self.registers.get(self.instruction, self.registers[BYPASS])


def _int_bits(value, width):
    """LSB-first bit list of ``value``."""
    return [(value >> index) & 1 for index in range(width)]


def _bits_int(bits):
    value = 0
    for index, bit in enumerate(bits):
        value |= (1 if bit else 0) << index
    return value
