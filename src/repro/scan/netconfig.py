"""Network-wide configuration over scan chains.

Machines built from METRO routers set Table 2 options through scan
(Section 5.3); this module is the glue: it organizes a network's
routers onto board-style daisy chains (one chain per stage, matching
how backplanes are laid out) and applies *policies* — "fast
reclamation everywhere except stage 1", "dilation 1 in the last
stage", "disable that port" — as scan traffic, never by poking the
config objects directly.
"""

from repro.scan.chain import ScanChain


class NetworkScanFabric:
    """Per-stage scan chains over every router of a network."""

    def __init__(self, network, port=0):
        self.network = network
        self.chains = []
        self._position = {}  # router key -> (chain_index, slot)
        for stage_index, stage_routers in enumerate(network.routers):
            chain = ScanChain(stage_routers, port=port)
            self.chains.append(chain)
            for slot, router in enumerate(stage_routers):
                key = _key_of(network, router)
                self._position[key] = (stage_index, slot)

    # ------------------------------------------------------------------

    def inventory(self):
        """(stage, chain length, IDCODEs) per chain — the board map."""
        rows = []
        for stage_index, chain in enumerate(self.chains):
            rows.append(
                {
                    "stage": stage_index,
                    "routers": len(chain),
                    "idcodes": chain.read_all_idcodes(),
                }
            )
        return rows

    def configure_router(self, key, mutate):
        """Apply ``mutate(config)`` to one router, by grid key, via scan."""
        stage_index, slot = self._position[key]
        self.chains[stage_index].configure(slot, mutate)

    def configure_stage(self, stage_index, mutate):
        """Apply ``mutate(config)`` to every router of one stage."""
        chain = self.chains[stage_index]
        for slot in range(len(chain)):
            chain.configure(slot, mutate)

    def configure_all(self, mutate):
        for stage_index in range(len(self.chains)):
            self.configure_stage(stage_index, mutate)

    # -- policies ---------------------------------------------------------

    def set_fast_reclaim_policy(self, detailed_stages=()):
        """Fast reclamation everywhere except the listed stages.

        The paper's mixed-mode operation (Section 5.1): detailed
        blocked replies only where diagnosis wants them.
        """
        detailed = set(detailed_stages)

        def fast(config):
            for port in range(config.params.i):
                config.fast_reclaim[config.forward_port_id(port)] = True

        def slow(config):
            for port in range(config.params.i):
                config.fast_reclaim[config.forward_port_id(port)] = False

        for stage_index in range(len(self.chains)):
            self.configure_stage(
                stage_index, slow if stage_index in detailed else fast
            )

    def disable_port(self, key, port_id, drive=False):
        def mutate(config):
            config.port_enabled[port_id] = False
            config.off_port_drive[port_id] = drive

        self.configure_router(key, mutate)

    def enable_port(self, key, port_id):
        def mutate(config):
            config.port_enabled[port_id] = True
            config.off_port_drive[port_id] = False

        self.configure_router(key, mutate)


def _key_of(network, router):
    for key, candidate in network.router_grid.items():
        if candidate is router:
            return key
    raise KeyError(router.name)
