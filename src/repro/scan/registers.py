"""Scan data registers binding a TAP to a METRO router.

Two registers matter:

* the **configuration chain** — the Table 2 options serialized as one
  long shift register (per-port enables, off-port drive, turn delays,
  fast reclaim, swallow, dilation);
* the **boundary register** — ``w`` bits per port sampling the last
  word value seen at that port (SAMPLE) and, for disabled backward
  ports with off-port drive, driving test patterns out (EXTEST).
"""

import math

from repro.core import words as W
from repro.scan.tap import DataRegister


def _turn_delay_bits(params):
    return max(1, math.ceil(math.log2(params.max_vtd + 1)))


def _dilation_bits(params):
    return max(1, int(math.log2(params.max_d)) + 1)


def config_chain_width(params):
    """Bits in the configuration chain for the given parameters."""
    nports = params.i + params.o
    return (
        nports * (3 + _turn_delay_bits(params))  # enable, drive, reclaim, delay
        + params.i  # swallow
        + _dilation_bits(params)
    )


def encode_config(config):
    """Serialize a RouterConfig to the chain's bit order (LSB first).

    Layout, per port id 0..i+o-1: enable, off-drive, fast-reclaim,
    then turn-delay (LSB first); then swallow per forward port; then
    log2(dilation) (LSB first).
    """
    params = config.params
    tbits = _turn_delay_bits(params)
    bits = []
    for port_id in range(params.i + params.o):
        bits.append(1 if config.port_enabled[port_id] else 0)
        bits.append(1 if config.off_port_drive[port_id] else 0)
        bits.append(1 if config.fast_reclaim[port_id] else 0)
        delay = config.turn_delay[port_id]
        bits.extend((delay >> index) & 1 for index in range(tbits))
    for port in range(params.i):
        bits.append(1 if config.swallow[port] else 0)
    log_d = int(math.log2(config.dilation))
    bits.extend((log_d >> index) & 1 for index in range(_dilation_bits(params)))
    return bits


def decode_config(config, bits):
    """Apply chain bits back onto a RouterConfig (inverse of encode)."""
    params = config.params
    tbits = _turn_delay_bits(params)
    expected = config_chain_width(params)
    if len(bits) != expected:
        raise ValueError(
            "chain is {} bits, expected {}".format(len(bits), expected)
        )
    cursor = 0
    for port_id in range(params.i + params.o):
        config.port_enabled[port_id] = bool(bits[cursor]); cursor += 1
        config.off_port_drive[port_id] = bool(bits[cursor]); cursor += 1
        config.fast_reclaim[port_id] = bool(bits[cursor]); cursor += 1
        delay = 0
        for index in range(tbits):
            delay |= (1 if bits[cursor] else 0) << index
            cursor += 1
        config.turn_delay[port_id] = min(delay, params.max_vtd)
        cursor += 0
    for port in range(params.i):
        config.swallow[port] = bool(bits[cursor]); cursor += 1
    log_d = 0
    for index in range(_dilation_bits(params)):
        log_d |= (1 if bits[cursor] else 0) << index
        cursor += 1
    dilation = 1 << log_d
    if dilation <= params.max_d:
        config.dilation = dilation


def make_config_register(router):
    """The CONFIG data register for one router's live configuration."""
    return DataRegister(
        config_chain_width(router.params),
        capture=lambda: encode_config(router.config),
        update=lambda bits: decode_config(router.config, bits),
    )


def boundary_width(params):
    return (params.i + params.o) * params.w


def make_boundary_register(router):
    """SAMPLE/EXTEST boundary register.

    Capture: the value bits of the last data word seen at each port
    (ports that last saw control words or silence capture zero).
    Update (EXTEST): for each *disabled* backward port with off-port
    drive enabled, the register's word for that port is driven out as
    a data word next cycle — the hook port-isolation tests use.
    """
    params = router.params

    def capture():
        bits = []
        for word in router.boundary_capture:
            value = word.value if (word is not None and word.kind == W.DATA) else 0
            bits.extend((value >> index) & 1 for index in range(params.w))
        return bits

    def update(bits):
        config = router.config
        for port in range(params.o):
            port_id = config.backward_port_id(port)
            if config.port_enabled[port_id] or not config.off_port_drive[port_id]:
                continue
            offset = port_id * params.w
            value = 0
            for index in range(params.w):
                value |= (1 if bits[offset + index] else 0) << index
            router.scan_drive_backward(port, W.data(value))

    return DataRegister(boundary_width(params), capture=capture, update=update)


def make_idcode(params):
    """A 32-bit IDCODE encoding the router geometry.

    version(4) | i(4) | o(4) | w(6) | max_d(3) | manufacturer(10) | 1
    """
    code = 1  # mandatory trailing 1
    code |= (0x2AB & 0x3FF) << 1       # "manufacturer"
    code |= (int(math.log2(params.max_d)) & 0x7) << 11
    code |= (params.w & 0x3F) << 14
    code |= (int(math.log2(params.o)) & 0xF) << 20
    code |= (int(math.log2(params.i)) & 0xF) << 24
    code |= 0x1 << 28                  # version
    return code
