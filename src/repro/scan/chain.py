"""Board-level scan chains: many routers on one serial path.

A machine built from METRO routers daisy-chains their TAPs: one
TCK/TMS pair fans out to every component and TDO of each feeds TDI of
the next.  The host then addresses one router by loading BYPASS into
all the others — their data registers collapse to a single bit — and
shifts the target's register through the whole chain.  (The MultiTAP
feature gives each component ``sp`` such chains for redundancy; a
:class:`ScanChain` represents one of them.)
"""

from repro.scan import registers as R
from repro.scan import tap as T


class ScanChain:
    """TAPs daisy-chained TDO -> TDI with common TMS.

    :param routers: the routers on this chain, in chain order (TDI of
        ``routers[0]`` is the host's TDI; TDO of the last is what the
        host reads).
    :param port: which MultiTAP port of each router this chain uses.
    """

    def __init__(self, routers, port=0):
        from repro.scan.controller import attach_scan

        if not routers:
            raise ValueError("a scan chain needs at least one router")
        self.routers = list(routers)
        self.port = port
        for router in self.routers:
            if not hasattr(router, "multitap"):
                attach_scan(router)

    def __len__(self):
        return len(self.routers)

    # -- chain-level clocking -------------------------------------------

    def step(self, tms, tdi=0):
        """One TCK edge on every TAP; returns the chain's TDO."""
        bit = tdi
        for router in self.routers:
            bit = router.multitap.step(self.port, tms, bit)
        return bit

    def reset(self):
        for _ in range(5):
            self.step(1)

    def _goto_idle(self):
        self.reset()
        self.step(0)

    # -- instruction loading --------------------------------------------

    def load_instructions(self, opcodes):
        """Shift one instruction per router (chain order).

        During Shift-IR the chain is ``4 * n`` bits long; the bits for
        the *last* router in the chain are shifted in first.
        """
        if len(opcodes) != len(self.routers):
            raise ValueError(
                "{} opcodes for {} routers".format(len(opcodes), len(self.routers))
            )
        self._goto_idle()
        self.step(1)
        self.step(1)
        self.step(0)  # -> Capture-IR everywhere
        self.step(0)  # capture edge -> Shift-IR
        bits = []
        for opcode in reversed(opcodes):
            bits.extend((opcode >> index) & 1 for index in range(T.IR_WIDTH))
        for index, bit in enumerate(bits):
            last = index == len(bits) - 1
            self.step(1 if last else 0, bit)
        self.step(1)  # -> Update-IR
        self.step(0)  # -> Run-Test/Idle

    # -- data scanning ---------------------------------------------------

    def _dr_lengths(self, opcodes):
        lengths = []
        for router, opcode in zip(self.routers, opcodes):
            if opcode == T.BYPASS:
                lengths.append(1)
            elif opcode == T.IDCODE:
                lengths.append(32)
            elif opcode == T.CONFIG:
                lengths.append(R.config_chain_width(router.params))
            elif opcode in (T.SAMPLE, T.EXTEST):
                lengths.append(R.boundary_width(router.params))
            else:
                lengths.append(1)
        return lengths

    def scan_dr(self, bits_in):
        """One DR scan through the whole chain; returns captured bits."""
        self.step(1)
        self.step(0)  # -> Capture-DR
        self.step(0)  # capture edge -> Shift-DR
        out = []
        for index, bit in enumerate(bits_in):
            last = index == len(bits_in) - 1
            out.append(self.step(1 if last else 0, bit))
        self.step(1)  # -> Update-DR
        self.step(0)  # -> Run-Test/Idle
        return out

    # -- high-level operations --------------------------------------------

    def read_all_idcodes(self):
        """IDCODE of every router, in chain order."""
        self.load_instructions([T.IDCODE] * len(self.routers))
        total = 32 * len(self.routers)
        bits = self.scan_dr([0] * total)
        codes = []
        # The first 32 bits out came from the LAST router in the chain.
        for slot in range(len(self.routers)):
            chunk = bits[slot * 32 : (slot + 1) * 32]
            value = 0
            for index, bit in enumerate(chunk):
                value |= (1 if bit else 0) << index
            codes.append(value)
        codes.reverse()
        return codes

    def write_config(self, target_index, config_bits):
        """Rewrite one router's configuration; all others in BYPASS.

        ``config_bits`` are the target's full chain encoding (see
        :func:`repro.scan.registers.encode_config`).
        """
        n = len(self.routers)
        opcodes = [T.BYPASS] * n
        opcodes[target_index] = T.CONFIG
        self.load_instructions(opcodes)
        lengths = self._dr_lengths(opcodes)
        if len(config_bits) != lengths[target_index]:
            raise ValueError(
                "config is {} bits, chain expects {}".format(
                    len(config_bits), lengths[target_index]
                )
            )
        # Build the full shift-in image: bits for the last router enter
        # first.  Registers shift LSB-first, TDI entering at the MSB
        # end, so each register's image is its bits in order.
        image = []
        for index in reversed(range(n)):
            if index == target_index:
                image.extend(config_bits)
            else:
                image.extend([0] * lengths[index])
        self.scan_dr(image)

    def configure(self, target_index, mutate):
        """Read-modify-write one router's config through the chain."""
        from repro.core.parameters import RouterConfig

        router = self.routers[target_index]
        scratch = RouterConfig(router.params)
        R.decode_config(scratch, R.encode_config(router.config))
        mutate(scratch)
        self.write_config(target_index, R.encode_config(scratch))
