"""IEEE 1149.1 TAP, MultiTAP, and scan-driven configuration."""

from repro.scan.chain import ScanChain
from repro.scan.controller import ScanController, attach_scan
from repro.scan.multitap import MultiTap
from repro.scan.registers import (
    boundary_width,
    config_chain_width,
    decode_config,
    encode_config,
    make_boundary_register,
    make_config_register,
    make_idcode,
)
from repro.scan.tap import (
    BYPASS,
    CONFIG,
    DataRegister,
    EXTEST,
    IDCODE,
    SAMPLE,
    TapController,
)

__all__ = [
    "BYPASS",
    "CONFIG",
    "DataRegister",
    "EXTEST",
    "IDCODE",
    "MultiTap",
    "SAMPLE",
    "ScanChain",
    "ScanController",
    "TapController",
    "attach_scan",
    "boundary_width",
    "config_chain_width",
    "decode_config",
    "encode_config",
    "make_boundary_register",
    "make_config_register",
    "make_idcode",
]
