"""MultiTAP: several TAP ports per component.

The paper extends IEEE 1149.1 "to support multiple TAPs on each
component (MultiTAP) [8]", giving tolerance to faults in the scan
paths themselves: a broken scan chain can be abandoned and the same
component reached through another TAP port.

Model: ``sp`` TAP front-ends share one set of data registers and one
live instruction.  Ownership is first-come: the first port driven out
of Test-Logic-Reset claims the shared logic; steps on other ports
advance nothing (their TDO floats to 0) until the owner returns to
Test-Logic-Reset and releases.  A *dead* TAP port models a scan-path
fault — it ignores all activity, and ownership can be reacquired
through a healthy port after the dead one is released by reset.
"""

from repro.scan.tap import TEST_LOGIC_RESET, TapController


class MultiTap:
    """``sp`` arbitrated TAP ports over one shared register file."""

    def __init__(self, registers, idcode=0x1, sp=2):
        if sp < 1:
            raise ValueError("need at least one TAP port")
        self.shared = TapController(registers=registers, idcode=idcode)
        self.sp = sp
        self.owner = None
        self.dead_ports = set()

    def kill_port(self, port):
        """Simulate a scan-path fault on one TAP port."""
        self._check(port)
        self.dead_ports.add(port)
        if self.owner == port:
            self.owner = None
            self.shared.reset()

    def step(self, port, tms, tdi=0):
        """Clock TCK on one port; returns that port's TDO."""
        self._check(port)
        if port in self.dead_ports:
            return 0
        if self.owner is None:
            if self.shared.state == TEST_LOGIC_RESET and tms:
                return self.shared.step(tms, tdi)  # idling in reset: no claim
            # A live port actually leaving reset claims the controller.
            self.owner = port
        if self.owner != port:
            return 0
        tdo = self.shared.step(tms, tdi)
        if self.shared.state == TEST_LOGIC_RESET:
            self.owner = None  # reset releases ownership
        return tdo

    def state(self):
        return self.shared.state

    def _check(self, port):
        if not 0 <= port < self.sp:
            raise ValueError("TAP port {} out of range 0..{}".format(port, self.sp - 1))
