"""Command-line interface: regenerate paper results from a terminal.

::

    python -m repro table3
    python -m repro table5
    python -m repro figure1
    python -m repro figure3 --measure 2500 --rates 0.002,0.02,0.16
    python -m repro figure3 --workers 4 --cache-dir ~/.cache/repro
    python -m repro figure3 --metrics
    python -m repro send 5 15 --trace-export trace.json
    python -m repro faults --links 8 --routers 4
    python -m repro faults --levels 0:0,8:0,8:4 --workers 4
    python -m repro faults --levels 0:0,8:4 --max-attempts 40 --max-undeliverable 0
    python -m repro chaos --seeds 4 --compare --workers 4
    python -m repro chaos --seeds 2 --min-availability 0.8 --snapshot chaos.json
    python -m repro chaos --seeds 2 --stream chaos-logs --stall-cycles 2000
    python -m repro chaos --seeds 4 --journal run.jsonl --cache-dir .cache
    python -m repro chaos --resume run.jsonl --cache-dir .cache
    python -m repro figure3 --retries 3 --quarantine --journal run.jsonl
    python -m repro tail run.jsonl
    python -m repro tail chaos-logs/soak0-healon.jsonl
    python -m repro tail chaos-logs/soak0-healon.jsonl --follow
    python -m repro figure3 --metrics-export metrics.json
    python -m repro bench-check --portable-only --threshold 0.5
    python -m repro saturation --workers 4
    python -m repro send 5 15 --network figure1
    python -m repro figure3 --backend events
    python -m repro verify --trials 100 --workers 4
    python -m repro verify --trials 100 --shrink
    python -m repro verify --replay .verify-artifacts/diff-fail-0.json
    python -m repro verify --backend-diff --trials 52 --workers 4

Commands exit nonzero on failure: ``send`` when the message is not
delivered, ``faults`` when the degraded network delivers nothing (or
degrades past ``--max-degradation`` / abandons more than
``--max-undeliverable`` messages), ``chaos`` when a soak misses its
service-level bounds, ``saturation`` when no saturation point is
found, ``verify`` on any simulator-vs-model mismatch or protocol
violation.

``chaos --stream`` writes one JSONL run log per live soak
(``metro-run-log-v1``: periodic metrics deltas, per-window SLO stats,
fault transitions, watchdog stalls); ``tail`` renders a log —
finished or still being written (``--follow``).  ``bench-check``
compares the newest record in each ``benchmarks/results/history/*.jsonl``
file against its trailing-median baseline and exits nonzero on a
regression past ``--threshold`` (see ``docs/observability.md``).

``--workers N`` fans a sweep's independent trials across N worker
processes; results are bit-identical to a serial run for the same
``--seed``.  ``--cache-dir DIR`` reuses already-computed trial results
across invocations (see ``docs/parallel.md``).  ``--backend events``
runs a simulation command on the event-driven engine backend — same
results, faster at low load (see ``docs/API.md`` and
``repro.sim.backends``); ``verify --backend-diff`` checks that claim
end to end.

The sweep commands (``figure3``/``faults``/``chaos``/``saturation``)
also take resilience flags (see ``docs/resilience.md``): ``--journal``
writes a durable run journal, ``--resume <journal>`` finishes a killed
sweep byte-identically, ``--retries``/``--quarantine`` retry crashed
or hung trials and quarantine poison ones.  Exit codes are consistent
across commands: 0 success, 1 a result gate failed (SLO, degradation,
verification), 2 usage/input error, 3 the sweep completed but
quarantined trials (structured failure report on stderr), 130
interrupted by SIGINT/SIGTERM (journal flushed for resume).
"""

import argparse
import os
import sys


def _runner(args, resume_partial=None):
    """The shared TrialRunner configured by --workers/--cache-dir.

    The resilience flags ride along when the subcommand defines them:
    ``--journal`` (durable run journal), ``--resume`` (replay a
    journal so finished trials are served from the cache instead of
    re-running), ``--retries`` (per-trial attempt budget with
    exponential backoff on recycled workers) and ``--quarantine``
    (poison trials become structured reports instead of killing the
    sweep).  A ``--resume`` pointing at a *directory* is the chaos
    snapshot-ring form, handled by the chaos command itself.
    """
    from repro.harness.parallel import TrialRunner
    from repro.harness.reporting import progress_printer

    resume_from = getattr(args, "resume", None)
    if resume_from and os.path.isdir(resume_from):
        resume_from = None
    journal = getattr(args, "journal", None) or resume_from
    return TrialRunner(
        workers=args.workers,
        cache_dir=args.cache_dir,
        progress=progress_printer() if args.progress else None,
        journal=journal,
        retries=getattr(args, "retries", None),
        on_exhausted=(
            "quarantine" if getattr(args, "quarantine", False) else None
        ),
        resume_from=resume_from,
        resume_partial=resume_partial,
    )


def _print_metrics(results):
    """Merge per-trial snapshots (spec order) and print the summaries."""
    from repro.harness.reporting import format_percentiles, format_stage_heatmap
    from repro.telemetry import MetricsSnapshot

    merged = MetricsSnapshot.merge_all(r.metrics for r in results)
    if not len(merged):
        return
    print()
    print(
        format_percentiles(
            merged,
            [
                "message.latency.cycles",
                "message.queueing.cycles",
                "message.attempts",
                "channel.in_flight",
            ],
            title="Metrics: distributions over the merged sweep",
        )
    )
    print()
    print(
        format_stage_heatmap(
            merged, title="Metrics: mean backward-port utilization by stage"
        )
    )


def _export_metrics(results, path):
    """Dump the merged MetricsSnapshot of a sweep as JSON.

    The document carries the snapshot twice: ``series`` is the
    lossless wire encoding (``repro.telemetry.stream`` round-trips it
    back into a :class:`MetricsSnapshot`), ``rendered`` the
    human-oriented summaries ``as_dict`` produces.
    """
    import json

    from repro.telemetry import MetricsSnapshot
    from repro.telemetry.stream import snapshot_to_jsonable

    merged = MetricsSnapshot.merge_all(
        r.metrics for r in results if r.metrics is not None
    )
    document = {
        "format": "metro-metrics-v1",
        "series": snapshot_to_jsonable(merged),
        "rendered": merged.as_dict(),
    }
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote metrics snapshot to {}".format(path))


def _report_runner_stats(runner):
    if runner.journal is not None:
        runner.journal.close()
    if runner.stats.executed or runner.stats.cached:
        print(
            "trials: {} executed ({:.1f}s), {} from cache".format(
                runner.stats.executed, runner.stats.seconds, runner.stats.cached
            ),
            file=sys.stderr,
        )


def _strip_quarantined(results):
    """Split results, printing the structured failure report.

    Returns ``(ok_results, status)`` where status is 3 (the dedicated
    exit code) when any trial was quarantined, else 0.  Downstream
    tables/metrics render the ok results only — a
    :class:`~repro.harness.parallel.QuarantinedTrial` has no
    latencies to plot, just the report printed here.
    """
    from repro.harness.parallel import partition_quarantined
    from repro.harness.reporting import format_quarantine_report

    ok, quarantined = partition_quarantined(results)
    if not quarantined:
        return ok, 0
    print()
    print(format_quarantine_report(quarantined))
    print(
        "FAIL: {} trial(s) quarantined after exhausting their attempt "
        "budget".format(len(quarantined)),
        file=sys.stderr,
    )
    return ok, 3


def _cmd_table3(args):
    from repro.harness.reporting import format_table
    from repro.latency_model.implementations import table3_implementations

    rows = [impl.row() for impl in table3_implementations()]
    print(format_table(rows, title="Table 3: METRO implementation examples"))
    return 0


def _cmd_table5(args):
    from repro.harness.reporting import format_table
    from repro.latency_model.contemporaries import table5_contemporaries

    rows = [c.row() for c in table5_contemporaries()]
    print(
        format_table(
            rows,
            columns=[
                "router",
                "latency",
                "t_bit",
                "t_20_32_estimate_ns",
                "t_20_32_paper_ns",
                "reference",
            ],
            title="Table 5: contemporary routing technologies",
            floatfmt="{:.0f}",
        )
    )
    return 0


def _cmd_figure1(args):
    import random

    from repro.network import analysis
    from repro.network.multibutterfly import wire
    from repro.network.topology import figure1_plan

    plan = figure1_plan()
    links = wire(plan, rng=random.Random(args.seed))
    graph = analysis.build_graph(plan, links)
    print("Figure 1: 16x16 multipath network")
    print("  stages: {} | routers/stage: {}".format(
        plan.n_stages, [plan.routers_in_stage(s) for s in range(plan.n_stages)]))
    print("  paths endpoint 6 -> 16: {}".format(
        analysis.count_paths(plan, graph, 5, 15)))
    print("  min route diversity over all pairs: {}".format(
        analysis.min_route_diversity(plan, graph)))
    for stage in range(plan.n_stages):
        ok = analysis.tolerates_any_single_router_loss(plan, graph, stage)
        print("  survives any single stage-{} router loss: {}".format(stage, ok))
    return 0


def _cmd_figure3(args):
    from repro.harness.load_sweep import figure3_sweep, unloaded_latency
    from repro.harness.reporting import ascii_chart, format_series, results_to_series

    rates = tuple(float(r) for r in args.rates.split(","))
    base = unloaded_latency(seed=args.seed, samples=8)
    print("Unloaded latency: {:.1f} cycles (paper: 28)\n".format(base))
    runner = _runner(args)
    sweep_kwargs = dict(
        rates=rates,
        seed=args.seed,
        warmup_cycles=args.warmup,
        measure_cycles=args.measure,
        runner=runner,
    )
    if args.metrics or args.metrics_export:
        sweep_kwargs["metrics"] = True
    if args.backend != "reference":
        sweep_kwargs["backend"] = args.backend
    results = figure3_sweep(**sweep_kwargs)
    _report_runner_stats(runner)
    results, status = _strip_quarantined(results)
    if not results:
        print("FAIL: every trial was quarantined", file=sys.stderr)
        return status or 1
    print(
        format_series(
            results_to_series(results),
            x_label="label",
            y_labels=["delivered_load", "mean_latency", "p95_latency", "mean_attempts"],
            title="Figure 3: latency vs. network loading",
        )
    )
    print()
    print(
        ascii_chart(
            [(r.delivered_load, r.mean_latency) for r in results],
            title="latency vs delivered load",
            x_label="delivered load (words/endpoint-cycle)",
            y_label="mean latency (cycles)",
        )
    )
    if args.metrics:
        _print_metrics(results)
    if args.metrics_export:
        _export_metrics(results, args.metrics_export)
    return status


def _cmd_faults(args):
    from repro.harness.fault_sweep import (
        degradation_failures,
        fault_degradation_sweep,
        run_fault_point,
    )
    from repro.harness.reporting import format_table

    if args.levels:
        levels = tuple(
            tuple(int(n) for n in level.split(":"))
            for level in args.levels.split(",")
        )
        runner = _runner(args)
        sweep_kwargs = dict(
            fault_levels=levels,
            rate=args.rate,
            seed=args.seed,
            warmup_cycles=args.warmup,
            measure_cycles=args.measure,
            runner=runner,
        )
        if args.metrics or args.metrics_export:
            sweep_kwargs["metrics"] = True
        if args.max_attempts is not None:
            sweep_kwargs["max_attempts"] = args.max_attempts
        if args.backend != "reference":
            sweep_kwargs["backend"] = args.backend
        results = fault_degradation_sweep(**sweep_kwargs)
        _report_runner_stats(runner)
        results, status = _strip_quarantined(results)
        if not results:
            print("FAIL: every fault level was quarantined", file=sys.stderr)
            return status or 1
        print(
            format_table(
                [r.as_dict() for r in results],
                title="Fault degradation sweep",
            )
        )
        if args.metrics:
            _print_metrics(results)
        if args.metrics_export:
            _export_metrics(results, args.metrics_export)
        if any(r.delivered_count == 0 for r in results):
            print("FAIL: a fault level delivered no messages", file=sys.stderr)
            status = status or 1
        for result, floor in degradation_failures(
            results,
            max_degradation=args.max_degradation,
            max_undeliverable=args.max_undeliverable,
        ):
            if floor is None:
                print(
                    "FAIL: {} abandoned {} message(s), over the "
                    "--max-undeliverable bound {}".format(
                        result.label,
                        result.undeliverable,
                        args.max_undeliverable,
                    ),
                    file=sys.stderr,
                )
            else:
                print(
                    "FAIL: {} delivered {:.4f} words/endpoint-cycle, "
                    "below the {:.0%}-degradation floor {:.4f}".format(
                        result.label,
                        result.delivered_load,
                        args.max_degradation,
                        floor,
                    ),
                    file=sys.stderr,
                )
            status = status or 1
        return status
    result = run_fault_point(
        n_dead_links=args.links,
        n_dead_routers=args.routers,
        rate=args.rate,
        seed=args.seed,
        warmup_cycles=args.warmup,
        measure_cycles=args.measure,
        metrics=args.metrics or bool(args.metrics_export),
        max_attempts=args.max_attempts,
        backend=args.backend,
    )
    print(format_table([result.as_dict()], title="Fault degradation point"))
    if args.metrics:
        _print_metrics([result])
    if args.metrics_export:
        _export_metrics([result], args.metrics_export)
    if result.delivered_count == 0:
        print("FAIL: faulted network delivered no messages", file=sys.stderr)
        return 1
    return 0


def _cmd_chaos(args):
    from repro.harness.chaos import chaos_slo_failures, chaos_sweep
    from repro.harness.reporting import format_table, sparkline

    ring_resume = bool(args.resume) and os.path.isdir(args.resume)
    status = 0
    if ring_resume:
        from repro.harness.chaos import resume_chaos_point

        result = resume_chaos_point(
            args.resume,
            backend=args.backend,
            stream_path=args.stream,
            stall_cycles=args.stall_cycles,
        )
        print("resumed interrupted soak from {}".format(args.resume))
        results = [result]
    else:
        resume_partial = None
        if args.resume:
            from repro.harness.chaos import chaos_journal_partial

            resume_partial = chaos_journal_partial(
                backend=(
                    args.backend if args.backend != "reference" else None
                ),
                stall_cycles=args.stall_cycles,
            )
            print(
                "resuming interrupted sweep from journal {}".format(
                    args.resume
                )
            )
        heal_modes = (True, False) if args.compare else (True,)
        runner = _runner(args, resume_partial=resume_partial)
        sweep_kwargs = {}
        if args.backend != "reference":
            sweep_kwargs["backend"] = args.backend
        if args.snapshot_every:
            if not args.snapshot_dir:
                print(
                    "--snapshot-every requires --snapshot-dir",
                    file=sys.stderr,
                )
                return 2
            sweep_kwargs["snapshot_every"] = args.snapshot_every
            sweep_kwargs["snapshot_dir"] = args.snapshot_dir
        if args.stream:
            sweep_kwargs["stream_dir"] = args.stream
        if args.stall_cycles is not None:
            sweep_kwargs["stall_cycles"] = args.stall_cycles
        results = chaos_sweep(
            seeds=args.seeds,
            seed=args.seed,
            self_heal=heal_modes,
            n_windows=args.windows,
            window_cycles=args.window_cycles,
            warmup_windows=args.warmup_windows,
            n_flaky_links=args.flaky_links,
            n_dead_routers=args.dead_routers,
            mtbf=args.mtbf,
            mttr=args.mttr,
            rate=args.rate,
            metrics=args.metrics
            or bool(args.snapshot)
            or bool(args.stream)
            or bool(args.metrics_export),
            oracle=args.oracle,
            runner=runner,
            **sweep_kwargs
        )
        _report_runner_stats(runner)
        results, status = _strip_quarantined(results)
        if not results:
            print("FAIL: every soak was quarantined", file=sys.stderr)
            return status or 1
    rows = []
    for result in results:
        row = result.as_dict()
        row["windows"] = sparkline(
            result.windows, lo=0, hi=max(result.baseline_rate, 1)
        )
        del row["fault_events"]
        del row["seed"]
        rows.append(row)
    if ring_resume:
        title = "Chaos soak: resumed, {} windows x {} cycles".format(
            len(results[0].windows), results[0].window_cycles
        )
    else:
        title = (
            "Chaos soak: {} seed(s), {} windows x {} cycles, "
            "{} flaky link(s) + {} dead router(s)".format(
                args.seeds,
                args.windows,
                args.window_cycles,
                args.flaky_links,
                args.dead_routers,
            )
        )
    print(format_table(rows, title=title, floatfmt="{:.2f}"))
    if args.metrics:
        from repro.harness.reporting import format_percentiles
        from repro.telemetry import MetricsSnapshot

        merged = MetricsSnapshot.merge_all(
            r.metrics for r in results if r.metrics is not None
        )
        if len(merged):
            print()
            print(
                format_percentiles(
                    merged,
                    ["message.latency.cycles", "message.attempts"],
                    title="Metrics: distributions over the merged soaks",
                )
            )
    if args.snapshot:
        import json

        from repro.telemetry import MetricsSnapshot

        merged = MetricsSnapshot.merge_all(
            r.metrics for r in results if r.metrics is not None
        )
        document = {
            "soaks": [r.as_dict() for r in results],
            "metrics": merged.as_dict(),
        }
        with open(args.snapshot, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
        print("wrote soak snapshot to {}".format(args.snapshot))
    if args.metrics_export:
        _export_metrics(results, args.metrics_export)
    for result in results:
        for stall in result.stalls:
            print(
                "WARNING: {} stalled at cycle {}: no progress for {} "
                "cycles with {} message(s) pending ({} quiescence "
                "violation(s) diagnosed)".format(
                    result.label,
                    stall["cycle"],
                    stall["stalled_cycles"],
                    stall["pending"],
                    len(stall["violations"]),
                ),
                file=sys.stderr,
            )
    if any(r.oracle_violations for r in results):
        for result in results:
            if result.oracle_violations:
                print(
                    "FAIL: {} saw {} protocol violation(s) under the "
                    "oracle".format(result.label, result.oracle_violations),
                    file=sys.stderr,
                )
        status = status or 1
    healed = [r for r in results if r.self_heal]
    for result, reason in chaos_slo_failures(
        healed,
        min_availability=args.min_availability,
        max_undeliverable=args.max_undeliverable,
        max_mttr_cycles=args.max_mttr,
    ):
        print("FAIL: {} violated SLO: {}".format(result.label, reason),
              file=sys.stderr)
        status = status or 1
    return status


def _parse_fault_levels(text):
    levels = []
    for part in text.split(","):
        links, _, routers = part.partition(":")
        levels.append((int(links), int(routers or 0)))
    return tuple(levels)


def _cmd_workloads(args):
    """Application workload sweeps with SLO gates (docs/workloads.md).

    Exit codes follow the repo convention: 1 when the SLO gate fails
    (a latency percentile over its bound, abandoned requests over
    their bound, or an incomplete collective), 3 when trials were
    quarantined, 0 otherwise.
    """
    from repro.harness.reporting import format_table
    from repro.harness.workload_sweep import (
        collective_fault_sweep,
        service_sweep,
        workload_slo_failures,
    )

    runner = _runner(args)
    metrics = args.metrics or bool(args.metrics_export)
    common = dict(network=args.network, seed=args.seed, runner=runner)
    if args.backend != "reference":
        common["backend"] = args.backend
    if metrics:
        common["metrics"] = True

    slo = {}
    if args.kind == "collective":
        layers = (
            [int(part) for part in args.layers.split(",")]
            if args.layers
            else None
        )
        results = collective_fault_sweep(
            fault_levels=_parse_fault_levels(args.fault_levels),
            algorithm=args.algorithm,
            words=args.words,
            layers=layers,
            microbatches=args.microbatches,
            max_cycles=args.max_cycles,
            **common
        )
        if args.slo_cycles is not None:
            slo["collective_cycles"] = args.slo_cycles
    else:
        results = service_sweep(
            rates=tuple(float(r) for r in args.rates.split(",")),
            servers=tuple(int(s) for s in args.servers.split(",")),
            clients=args.clients,
            burst_prob=args.burst_prob,
            burst_size=args.burst_size,
            request_words=args.request_words,
            reply_words=args.reply_words,
            service_time=tuple(
                int(part) for part in args.service_time.split(":")
            ),
            warmup_cycles=args.warmup,
            measure_cycles=args.measure,
            **common
        )
        for name in ("p50", "p95", "p99", "p999"):
            bound = getattr(args, "slo_{}".format(name))
            if bound is not None:
                slo[name] = bound
        if args.slo_abandoned is not None:
            slo["abandoned"] = args.slo_abandoned

    _report_runner_stats(runner)
    results, status = _strip_quarantined(results)
    if not results:
        print("FAIL: every trial was quarantined", file=sys.stderr)
        return status or 1

    rows = []
    for result in results:
        row = result.as_dict()
        row.pop("log_digest", None)
        rows.append(row)
    if args.kind == "collective":
        print(format_table(rows, title="Collective completion vs fault level"))
        for result in results:
            print()
            print(
                format_table(
                    result.steps,
                    title="{}: per-step completion".format(result.label),
                )
            )
    else:
        print(
            format_table(
                rows, title="Service tail latency vs offered load"
            )
        )

    failures = workload_slo_failures(results, slo)
    for failure in failures:
        print("FAIL: SLO violated: {}".format(failure), file=sys.stderr)
    if failures:
        status = status or 1
    if metrics and args.metrics:
        _print_metrics(results)
    if args.metrics_export:
        _export_metrics(results, args.metrics_export)
    return status


def _cmd_breakdown(args):
    from repro.harness.breakdown import measure_breakdown
    from repro.harness.load_sweep import figure3_network
    from repro.harness.reporting import format_table

    rows = []
    for words in (1, 4, 20, 60):
        breakdown = measure_breakdown(
            figure3_network, message_words=words, samples=6, seed=args.seed
        )
        row = {"message_words": words}
        row.update(breakdown.as_dict())
        row["injection_dominates"] = breakdown.injection_dominates
        rows.append(row)
    print(
        format_table(
            rows,
            title="Latency decomposition (Figure 3 network, unloaded): "
            "the short-haul condition is injection >= transit",
        )
    )
    return 0


def _cmd_saturation(args):
    from repro.harness.reporting import format_series, results_to_series
    from repro.harness.saturation import find_saturation

    runner = _runner(args)
    saturated, results = find_saturation(
        seed=args.seed,
        measure_cycles=args.measure,
        metrics=args.metrics or bool(args.metrics_export),
        backend=args.backend,
        runner=runner,
    )
    _report_runner_stats(runner)
    print(
        format_series(
            results_to_series(results),
            x_label="label",
            y_labels=["delivered_load", "mean_latency", "mean_attempts"],
            title="Saturation search (Figure 3 network)",
        )
    )
    print(
        "\nSaturation: ~{:.2f} words/endpoint-cycle at {}".format(
            saturated.delivered_load, saturated.label
        )
    )
    if args.metrics:
        _print_metrics(results)
    if args.metrics_export:
        _export_metrics(results, args.metrics_export)
    if saturated.delivered_load <= 0:
        print("FAIL: network carried no traffic at any rate", file=sys.stderr)
        return 1
    return 0


def _cmd_send(args):
    from repro.endpoint.messages import DELIVERED, Message
    from repro.network.builder import build_network
    from repro.network.fattree import fattree_plan
    from repro.network.topology import figure1_plan, figure3_plan
    from repro.sim.trace import Trace

    plans = {
        "figure1": figure1_plan,
        "figure3": figure3_plan,
        "fattree": fattree_plan,
    }
    telemetry = None
    if args.trace_export:
        from repro.telemetry import TelemetryHub

        telemetry = TelemetryHub()
    trace = Trace()
    network = build_network(
        plans[args.network](),
        seed=args.seed,
        trace=trace,
        trace_routers=True,
        telemetry=telemetry,
        backend=args.backend,
    )
    message = network.send(args.src, Message(dest=args.dest, payload=[1, 2, 3, 4]))
    network.run_until_quiet(max_cycles=args.max_cycles)
    if telemetry is not None:
        document = telemetry.export_trace(args.trace_export)
        print(
            "wrote {} trace events to {} (open in Perfetto / "
            "chrome://tracing)".format(
                len(document["traceEvents"]), args.trace_export
            )
        )
    print(
        "{} -> {}: {} in {} cycles, {} attempt(s)".format(
            args.src, args.dest, message.outcome, message.latency, message.attempts
        )
    )
    if args.verbose:
        for event in trace.events:
            print("  @{:>4} {:>10} {:<22} {}".format(
                event.cycle, event.source, event.kind, event.detail))
    if message.outcome != DELIVERED:
        print("FAIL: message was not delivered", file=sys.stderr)
        return 1
    return 0


def _cmd_verify(args):
    import os

    from repro.verify.differential import (
        differential_sweep,
        mismatch_aware_run,
    )
    from repro.verify.scenario import Scenario
    from repro.verify.shrink import shrink_scenario

    if args.backend_diff:
        from repro.verify.backend_diff import diff_failures, diff_sweep

        runner = _runner(args)
        reports = diff_sweep(
            n_trials=args.trials,
            seed=args.seed,
            backend=args.backend if args.backend != "reference" else "events",
            runner=runner,
        )
        _report_runner_stats(runner)
        failures = diff_failures(reports)
        print(
            "backend diff sweep: {}/{} workloads byte-identical across "
            "backends".format(len(reports) - len(failures), len(reports))
        )
        for report in failures:
            print(
                "MISMATCH {}[seed={}]:".format(report.kind, report.seed),
                file=sys.stderr,
            )
            for line in report.mismatches[:5]:
                print("  {}".format(line[:200]), file=sys.stderr)
        return 1 if failures else 0

    if args.resume_diff:
        from repro.verify.resume_diff import resume_failures, resume_sweep

        runner = _runner(args)
        reports = resume_sweep(
            n_trials=args.trials, seed=args.seed, runner=runner
        )
        _report_runner_stats(runner)
        failures = resume_failures(reports)
        print(
            "resume diff sweep: {}/{} workloads resumed byte-identically "
            "from mid-run snapshots (incl. cross-backend)".format(
                len(reports) - len(failures), len(reports)
            )
        )
        for report in failures:
            print(
                "MISMATCH {}[seed={}] {}->{}:".format(
                    report.kind,
                    report.seed,
                    report.backend,
                    report.restore_backend,
                ),
                file=sys.stderr,
            )
            for line in report.mismatches[:5]:
                print("  {}".format(line[:200]), file=sys.stderr)
        return 1 if failures else 0

    if args.replay:
        scenario = Scenario.load(args.replay)
        result = scenario.run(max_cycles=args.max_cycles, backend=args.backend)
        print("replay {!r}".format(scenario))
        print(
            "  quiet={} outcomes={} violations={}".format(
                result.quiet, result.outcomes, len(result.violations)
            )
        )
        for cycle, router, port, rule, detail in result.violations[:20]:
            print("  @{} {} port={} [{}] {}".format(
                cycle, router, port, rule, detail))
        return 0 if result.clean else 1

    runner = _runner(args)
    reports, mismatches = differential_sweep(
        n_trials=args.trials, root_seed=args.seed, runner=runner
    )
    _report_runner_stats(runner)
    print(
        "differential sweep: {}/{} configurations agree with the "
        "latency model".format(len(reports) - len(mismatches), len(reports))
    )
    if not mismatches:
        return 0

    os.makedirs(args.save, exist_ok=True)
    for index, report in enumerate(mismatches):
        scenario = Scenario.from_dict(report["scenario"])
        path = os.path.join(args.save, "diff-fail-{}.json".format(index))
        scenario.save(path)
        print("MISMATCH {}: {} -> {}".format(index, report["detail"], path))

    if args.shrink:
        scenario = Scenario.from_dict(mismatches[0]["scenario"])
        shrunk = shrink_scenario(
            scenario,
            max_cycles=args.max_cycles,
            run=mismatch_aware_run(max_cycles=args.max_cycles),
        )
        path = os.path.join(args.save, "diff-fail-0.min.json")
        shrunk.minimal.save(path)
        print(
            "shrunk first failure: {} -> {} messages in {} runs, "
            "signature {} -> {}".format(
                len(shrunk.original.messages),
                len(shrunk.minimal.messages),
                shrunk.tests_run,
                sorted(shrunk.signature),
                path,
            )
        )
    return 1


def _format_stream_event(event):
    """One `tail --follow` line for a run-log event (None = silent).

    Deltas are deliberately silent in follow mode — they are transport,
    not narrative; the summary rendering folds them into percentiles.
    """
    kind = event.get("event")
    cycle = event.get("cycle")
    if kind == "run.start":
        return "run.start  flush every {} cycles, window {} cycles".format(
            event.get("flush_every"), event.get("window_cycles")
        )
    if kind == "window.stats":
        p50 = event.get("p50_latency")
        p99 = event.get("p99_latency")
        p999 = event.get("p999_latency")
        return (
            "window {:>4} @{:<8} delivered={:<6} p50={} p99={} p999={}".format(
                event.get("window"),
                cycle,
                event.get("delivered"),
                "-" if p50 is None else p50,
                "-" if p99 is None else p99,
                "-" if p999 is None else p999,
            )
        )
    if kind == "fault.transition":
        return "fault       @{:<8} {:<8} {}".format(
            cycle, event.get("action"), event.get("fault")
        )
    if kind == "watchdog.stall":
        return (
            "STALL       @{:<8} no progress for {} cycles, {} pending, "
            "{} violation(s)".format(
                cycle,
                event.get("stalled_cycles"),
                event.get("pending"),
                len(event.get("violations", [])),
            )
        )
    if kind == "snapshot.write":
        return "checkpoint  @{:<8} {}".format(cycle, event.get("path"))
    if kind == "run.end":
        return "run.end     @{:<8} {} delta(s)".format(
            cycle, event.get("deltas")
        )
    if kind == "journal.start":
        return "journal.start ({}, pid {})".format(
            event.get("format"), event.get("pid")
        )
    if kind == "sweep.start":
        return "sweep.start {} trial(s), {} worker(s)".format(
            event.get("total"), event.get("workers")
        )
    if kind == "trial.start":
        return "trial       [{}] {} attempt {} on worker {}".format(
            event.get("index"), event.get("label"),
            event.get("attempt"), event.get("worker"),
        )
    if kind == "trial.done":
        elapsed = event.get("elapsed")
        return "trial done  [{}] {} ({}{})".format(
            event.get("index"), event.get("label"), event.get("source"),
            "" if elapsed is None else ", {:.2f}s".format(elapsed),
        )
    if kind == "trial.failed":
        return "trial FAIL  [{}] {} attempt {}: {} ({})".format(
            event.get("index"), event.get("label"), event.get("attempt"),
            event.get("kind"), event.get("detail"),
        )
    if kind == "trial.quarantined":
        return "QUARANTINE  [{}] {}".format(
            event.get("index"), event.get("label")
        )
    if kind == "sweep.end":
        return (
            "sweep.end   {} trial(s): {} executed, {} cached, "
            "{} quarantined".format(
                event.get("total"), event.get("executed"),
                event.get("cached"), event.get("quarantined"),
            )
        )
    if kind == "sweep.interrupted":
        return "INTERRUPT   {} — journal flushed, resume with --resume".format(
            event.get("signal") or event.get("signum")
        )
    return None


def _render_run_log(events, last=12):
    """Summary rendering of a whole (possibly still-growing) run log."""
    from repro.harness.reporting import (
        format_percentiles,
        format_table,
        sparkline,
    )
    from repro.telemetry.stream import merge_stream_metrics

    kinds = {}
    for event in events:
        kinds.setdefault(event.get("event"), []).append(event)

    start = events[0]
    line = "run log: {} event(s), flush every {} cycles".format(
        len(events), start.get("flush_every")
    )
    if start.get("window_cycles"):
        line += ", window {} cycles".format(start.get("window_cycles"))
    print(line)
    meta = start.get("meta") or {}
    if meta:
        print(
            "  meta: "
            + ", ".join(
                "{}={}".format(key, meta[key]) for key in sorted(meta)
            )
        )

    windows = kinds.get("window.stats", [])
    if windows:
        print()
        print(
            "delivered/window: {}".format(
                sparkline([w.get("delivered", 0) for w in windows], lo=0)
            )
        )
        rows = [
            {
                "window": w.get("window"),
                "cycles": "{}..{}".format(
                    w.get("start_cycle"), w.get("end_cycle")
                ),
                "delivered": w.get("delivered"),
                "p50": w.get("p50_latency"),
                "p95": w.get("p95_latency"),
                "p99": w.get("p99_latency"),
                "p999": w.get("p999_latency"),
            }
            for w in windows[-last:]
        ]
        title = (
            "last {} of {} windows".format(len(rows), len(windows))
            if len(windows) > len(rows)
            else "windows"
        )
        print(format_table(rows, title=title))

    faults = kinds.get("fault.transition", [])
    if faults:
        print()
        print("fault transitions: {}".format(len(faults)))
        for event in faults[-last:]:
            print("  " + _format_stream_event(event))

    for event in kinds.get("watchdog.stall", []):
        print()
        print(_format_stream_event(event))
        for violation in event.get("violations", [])[:5]:
            print(
                "    {} port={} [{}] {}".format(
                    violation.get("component"),
                    violation.get("port"),
                    violation.get("rule"),
                    violation.get("detail"),
                )
            )

    snapshots = kinds.get("snapshot.write", [])
    if snapshots:
        print()
        print(
            "checkpoints: {} (latest {})".format(
                len(snapshots), snapshots[-1].get("path")
            )
        )

    merged = merge_stream_metrics(events)
    if len(merged):
        print()
        print(
            format_percentiles(
                merged,
                ["message.latency.cycles", "message.attempts"],
                title="metrics ({} delta(s) merged)".format(
                    len(kinds.get("metrics.delta", []))
                ),
            )
        )

    print()
    ends = kinds.get("run.end", [])
    if ends:
        summary = ends[-1].get("summary") or {}
        line = "run ended at cycle {}".format(ends[-1].get("cycle"))
        if summary:
            line += ": " + ", ".join(
                "{}={}".format(key, summary[key]) for key in sorted(summary)
            )
        print(line)
    else:
        print("run in progress (no run.end yet)")


def _render_journal(events, last=12):
    """Summary rendering of a run journal (see docs/resilience.md)."""
    from repro.harness.journal import replay_journal
    from repro.harness.parallel import QuarantinedTrial
    from repro.harness.reporting import format_quarantine_report, format_table

    state = replay_journal(events)
    print("run journal: {} event(s); {}".format(len(events), state.describe()))

    rows = []
    for event in events:
        kind = event.get("event")
        if kind == "trial.done":
            detail = event.get("source")
            elapsed = event.get("elapsed")
            if elapsed is not None:
                detail = "{} ({:.2f}s)".format(detail, elapsed)
        elif kind == "trial.failed":
            detail = "{}: {}".format(
                event.get("kind"), (event.get("detail") or "")[:40]
            )
        elif kind == "trial.quarantined":
            detail = "attempt budget exhausted"
        else:
            continue
        rows.append(
            {
                "trial": event.get("label"),
                "event": kind.split(".", 1)[1],
                "attempt": event.get("attempt", "-"),
                "detail": detail,
            }
        )
    if rows:
        shown = rows[-last:]
        title = (
            "last {} of {} trial event(s)".format(len(shown), len(rows))
            if len(rows) > len(shown)
            else "trial events"
        )
        print()
        print(format_table(shown, title=title))

    if state.quarantined:
        reports = [
            QuarantinedTrial.from_dict(report)
            for report in state.quarantined.values()
        ]
        print()
        print(format_quarantine_report(reports))

    print()
    if state.interrupted:
        print(
            "sweep interrupted by {} (finish it with --resume)".format(
                state.interrupted
            )
        )
    elif state.completed:
        print("sweep completed")
    else:
        print("sweep in progress (no sweep.end yet)")


def _cmd_tail(args):
    from repro.telemetry.stream import read_run_log, validate_run_log

    def load():
        events = read_run_log(args.run_log)
        if events and events[0].get("event") == "journal.start":
            from repro.harness.journal import validate_journal

            validate_journal(events)
        else:
            validate_run_log(events)
        return events

    try:
        events = load()
    except (OSError, ValueError) as exc:
        print("tail: {}".format(exc), file=sys.stderr)
        return 2
    if not args.follow:
        if events and events[0].get("event") == "journal.start":
            _render_journal(events, last=args.last)
        else:
            _render_run_log(events, last=args.last)
        return 0

    import time

    printed = 0
    try:
        while True:
            for event in events[printed:]:
                line = _format_stream_event(event)
                if line:
                    print(line, flush=True)
            printed = len(events)
            if events and events[-1].get("event") in ("run.end", "sweep.end"):
                return 0
            time.sleep(args.interval)
            try:
                events = load()
            except (OSError, ValueError) as exc:
                print("tail: {}".format(exc), file=sys.stderr)
                return 2
    except KeyboardInterrupt:
        return 0


def _cmd_bench_check(args):
    from repro.harness.benchtrack import check_history_dir

    try:
        regressions, lines = check_history_dir(
            args.history_dir,
            benches=args.bench or None,
            threshold=args.threshold,
            window=args.window,
            min_history=args.min_history,
            portable_only=args.portable_only,
        )
    except FileNotFoundError as exc:
        print("bench-check: {}".format(exc), file=sys.stderr)
        return 2
    for line in lines:
        print(line)
    if regressions:
        print(
            "bench-check: {} metric(s) regressed past the {:.0%} "
            "threshold".format(len(regressions), args.threshold),
            file=sys.stderr,
        )
        return 1
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="METRO (ISCA 1994) reproduction: regenerate paper results.",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for sweep trials (1 = serial; results "
        "are identical either way for the same --seed)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory for the on-disk trial cache (repeat runs skip "
        "already-computed sweep points)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print per-trial progress/timing lines to stderr",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table3", help="Table 3 implementation examples")
    sub.add_parser("table5", help="Table 5 contemporary comparison")
    sub.add_parser("figure1", help="Figure 1 structural statistics")

    metrics_help = (
        "collect per-trial telemetry metrics and print merged "
        "latency/occupancy percentiles plus a per-stage utilization "
        "heatmap (identical for serial and parallel runs)"
    )
    export_help = (
        "write the sweep's merged metrics snapshot to FILE as JSON "
        "(metro-metrics-v1: a lossless 'series' encoding plus rendered "
        "summaries); implies metrics collection"
    )

    def add_backend(command):
        command.add_argument(
            "--backend",
            choices=("reference", "events", "vector"),
            default="reference",
            help="engine backend: 'events' activity-gates idle "
            "components for the same results faster at low load; "
            "'vector' adds a structure-of-arrays fast path for "
            "saturated loads (see docs/API.md)",
        )

    def add_resilience(command, resume=True, quarantine=True):
        command.add_argument(
            "--journal", default=None, metavar="FILE",
            help="write a durable run journal (metro-run-journal-v1, "
            "append-only JSONL, fsynced per record) of every trial "
            "state transition; a killed sweep finishes with --resume "
            "FILE (see docs/resilience.md; render with 'repro tail')",
        )
        if resume:
            command.add_argument(
                "--resume", default=None, metavar="JOURNAL",
                help="replay a run journal: finished trials are served "
                "from the --cache-dir trial cache (content-hash "
                "verified), only unfinished trials re-execute, and the "
                "resumed leg appends to the same journal — "
                "byte-identical to an uninterrupted run",
            )
        command.add_argument(
            "--retries", type=int, default=None, metavar="N",
            help="per-trial attempt budget with exponential backoff: "
            "a trial whose worker crashes (SIGKILL/OOM), times out, or "
            "raises is retried on a recycled worker up to N attempts "
            "(default 1 = fail fast)",
        )
        if quarantine:
            command.add_argument(
                "--quarantine", action="store_true",
                help="after the --retries budget, quarantine a poison "
                "trial (structured failure report, exit code 3) so the "
                "rest of the sweep still completes",
            )

    fig3 = sub.add_parser("figure3", help="Figure 3 latency/load sweep")
    fig3.add_argument("--rates", default="0.002,0.01,0.04,0.16")
    fig3.add_argument("--warmup", type=int, default=600)
    fig3.add_argument("--measure", type=int, default=2500)
    fig3.add_argument("--metrics", action="store_true", help=metrics_help)
    fig3.add_argument(
        "--metrics-export", default=None, metavar="FILE", help=export_help
    )
    add_backend(fig3)
    add_resilience(fig3)

    faults = sub.add_parser("faults", help="fault-degradation point")
    faults.add_argument("--links", type=int, default=8)
    faults.add_argument("--routers", type=int, default=0)
    faults.add_argument("--rate", type=float, default=0.02)
    faults.add_argument("--warmup", type=int, default=600)
    faults.add_argument("--measure", type=int, default=2500)
    faults.add_argument(
        "--levels",
        default=None,
        help="run a full degradation sweep over LINKS:ROUTERS levels, "
        "e.g. 0:0,8:0,8:4 (parallelizes with --workers)",
    )
    faults.add_argument(
        "--max-degradation",
        type=float,
        default=None,
        metavar="FRACTION",
        help="with --levels: exit nonzero if any level's delivered load "
        "falls more than FRACTION below the first (baseline) level",
    )
    faults.add_argument(
        "--max-attempts",
        type=int,
        default=None,
        help="per-message retry budget; exhausted messages surface as "
        "'undeliverable' in the sweep results",
    )
    faults.add_argument(
        "--max-undeliverable",
        type=int,
        default=None,
        metavar="N",
        help="with --levels: exit nonzero if any level abandons more "
        "than N messages (retry-budget exhaustion)",
    )
    faults.add_argument("--metrics", action="store_true", help=metrics_help)
    faults.add_argument(
        "--metrics-export", default=None, metavar="FILE", help=export_help
    )
    add_backend(faults)
    add_resilience(faults)

    chaos = sub.add_parser(
        "chaos",
        help="chaos soak: transient faults with online self-healing",
    )
    chaos.add_argument(
        "--seeds", type=int, default=4,
        help="independent soaks (parallelizes with --workers)",
    )
    chaos.add_argument("--windows", type=int, default=30)
    chaos.add_argument("--window-cycles", type=int, default=400)
    chaos.add_argument("--warmup-windows", type=int, default=5)
    chaos.add_argument("--flaky-links", type=int, default=1)
    chaos.add_argument("--dead-routers", type=int, default=1)
    chaos.add_argument("--mtbf", type=int, default=1500,
                       help="mean cycles between transient failures")
    chaos.add_argument("--mttr", type=int, default=600,
                       help="mean cycles a transient fault stays down")
    chaos.add_argument("--rate", type=float, default=0.02)
    chaos.add_argument(
        "--compare",
        action="store_true",
        help="run each soak twice, self-healing ON and OFF, for the "
        "paired availability comparison",
    )
    chaos.add_argument(
        "--oracle",
        action="store_true",
        help="attach the protocol conformance oracle for the whole "
        "soak; violations fail the command",
    )
    chaos.add_argument(
        "--min-availability", type=float, default=None, metavar="FRACTION",
        help="exit nonzero if a self-healing soak's availability "
        "(fraction of post-fault windows meeting the delivered SLO) "
        "falls below FRACTION",
    )
    chaos.add_argument(
        "--max-undeliverable", type=int, default=None, metavar="N",
        help="exit nonzero if a self-healing soak abandons more than "
        "N messages",
    )
    chaos.add_argument(
        "--max-mttr", type=float, default=None, metavar="CYCLES",
        help="exit nonzero if a self-healing soak's mean degraded "
        "episode exceeds CYCLES",
    )
    chaos.add_argument(
        "--snapshot-every", type=int, default=None, metavar="K",
        help="checkpoint each live soak every K completed windows into "
        "a ring of engine snapshots under --snapshot-dir (one "
        "subdirectory per soak); a crashed run resumes with --resume",
    )
    chaos.add_argument(
        "--snapshot-dir", default=None, metavar="DIR",
        help="directory for the --snapshot-every checkpoint rings",
    )
    chaos.add_argument(
        "--resume", default=None, metavar="PATH",
        help="resume interrupted work: a run-journal FILE (from "
        "--journal) resumes the whole sweep — finished soaks come "
        "from the trial cache, mid-flight soaks from their checkpoint "
        "rings; a soak's ring DIR (a subdirectory of a "
        "--snapshot-dir) resumes that one soak directly",
    )
    chaos.add_argument(
        "--snapshot", default=None, metavar="FILE",
        help="write soak summaries + merged telemetry metrics as JSON "
        "(the chaos-smoke CI artifact)",
    )
    chaos.add_argument(
        "--stream", default=None, metavar="PATH",
        help="stream live JSONL run logs (metro-run-log-v1: metrics "
        "deltas, window stats, fault transitions, watchdog stalls): "
        "PATH is a directory holding one log per soak for a sweep, or "
        "the log file for the resumed leg with --resume; implies "
        "--metrics and attaches a run-health watchdog (render with "
        "'repro tail')",
    )
    chaos.add_argument(
        "--stall-cycles", type=int, default=None, metavar="N",
        help="watchdog threshold: flag a soak making no delivery "
        "progress for N cycles while messages are pending (defaults "
        "to 5 windows when --stream or a heartbeat file is active)",
    )
    chaos.add_argument("--metrics", action="store_true", help=metrics_help)
    chaos.add_argument(
        "--metrics-export", default=None, metavar="FILE", help=export_help
    )
    add_backend(chaos)
    add_resilience(chaos, resume=False)

    workloads = sub.add_parser(
        "workloads",
        help="application workloads: ML collectives and request/response "
        "services (docs/workloads.md)",
    )
    workloads.add_argument(
        "kind", choices=("collective", "service"),
        help="'collective': dependency-DAG ML collectives swept over "
        "fault levels; 'service': open-loop request/response soaks "
        "swept over offered load",
    )
    workloads.add_argument(
        "--network", choices=("figure1", "figure3"), default="figure1",
        help="fabric: the 16-endpoint Figure 1 network (quick) or the "
        "64-endpoint Figure 3 network",
    )
    workloads.add_argument(
        "--algorithm",
        choices=("ring", "recursive-doubling", "all-to-all", "pipeline"),
        default="ring",
        help="collective schedule generator",
    )
    workloads.add_argument(
        "--words", type=int, default=20,
        help="per-rank vector words (chunked by the algorithm)",
    )
    workloads.add_argument(
        "--layers", default=None, metavar="W1,W2,...",
        help="model-shaped mode: per-layer gradient sizes in words; "
        "one serialized all-reduce per layer in backprop order",
    )
    workloads.add_argument(
        "--microbatches", type=int, default=4,
        help="microbatches for the pipeline-parallel schedule",
    )
    workloads.add_argument(
        "--fault-levels", default="0:0,4:0,8:0", metavar="L:R,...",
        help="dead-links:dead-routers levels for the collective sweep",
    )
    workloads.add_argument(
        "--max-cycles", type=int, default=400000,
        help="cycle budget per collective execution",
    )
    workloads.add_argument(
        "--slo-cycles", type=float, default=None, metavar="CYCLES",
        help="exit 1 if a collective's completion time exceeds CYCLES "
        "(incomplete collectives always fail)",
    )
    workloads.add_argument(
        "--rates", default="0.0005,0.001,0.002,0.004",
        help="per-client mean arrivals/cycle for the service sweep",
    )
    workloads.add_argument(
        "--servers", default="0", metavar="E1,E2,...",
        help="server endpoint indices; every other endpoint hosts "
        "clients",
    )
    workloads.add_argument(
        "--clients", type=int, default=4,
        help="simulated clients multiplexed per client endpoint",
    )
    workloads.add_argument(
        "--burst-prob", type=float, default=0.0,
        help="probability an arrival triggers a burst",
    )
    workloads.add_argument(
        "--burst-size", type=int, default=1,
        help="requests per burst (1 = pure Poisson arrivals)",
    )
    workloads.add_argument("--request-words", type=int, default=8)
    workloads.add_argument("--reply-words", type=int, default=4)
    workloads.add_argument(
        "--service-time", default="0:16", metavar="LO:HI",
        help="uniform simulated server processing cycles per request",
    )
    workloads.add_argument("--warmup", type=int, default=1000)
    workloads.add_argument("--measure", type=int, default=6000)
    for quantile in ("p50", "p95", "p99", "p999"):
        workloads.add_argument(
            "--slo-{}".format(quantile), type=float, default=None,
            metavar="CYCLES",
            help="exit 1 if the {} request latency exceeds "
            "CYCLES".format(quantile),
        )
    workloads.add_argument(
        "--slo-abandoned", type=int, default=None, metavar="N",
        help="exit 1 if more than N requests were abandoned",
    )
    workloads.add_argument("--metrics", action="store_true", help=metrics_help)
    workloads.add_argument(
        "--metrics-export", default=None, metavar="FILE", help=export_help
    )
    add_backend(workloads)
    add_resilience(workloads)

    saturation = sub.add_parser("saturation", help="find saturation throughput")
    saturation.add_argument("--measure", type=int, default=2000)
    saturation.add_argument(
        "--metrics", action="store_true", help=metrics_help
    )
    saturation.add_argument(
        "--metrics-export", default=None, metavar="FILE", help=export_help
    )
    add_backend(saturation)
    # No --quarantine: the saturation search reads delivered_load off
    # every probed point, which a quarantine report cannot provide.
    add_resilience(saturation, quarantine=False)

    tail = sub.add_parser(
        "tail",
        help="render a streamed JSONL run log (finished or live)",
    )
    tail.add_argument("run_log", metavar="RUNLOG")
    tail.add_argument(
        "--follow", "-f", action="store_true",
        help="poll the log and print new windows/faults/stalls as "
        "they are appended, until run.end (Ctrl-C to stop)",
    )
    tail.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="--follow poll interval",
    )
    tail.add_argument(
        "--last", type=int, default=12, metavar="N",
        help="window/fault rows shown in the summary tables",
    )

    bench_check = sub.add_parser(
        "bench-check",
        help="flag benchmark regressions against the recorded history",
    )
    bench_check.add_argument(
        "--history-dir",
        default="benchmarks/results/history",
        metavar="DIR",
        help="benchmark history directory (<bench>.jsonl, appended by "
        "every bench run)",
    )
    bench_check.add_argument(
        "--bench", action="append", default=None, metavar="NAME",
        help="check only the named benchmark (repeatable; default all "
        "with history)",
    )
    bench_check.add_argument(
        "--threshold", type=float, default=0.3, metavar="FRACTION",
        help="fractional worsening vs the trailing-median baseline "
        "that counts as a regression",
    )
    bench_check.add_argument(
        "--window", type=int, default=5, metavar="N",
        help="baseline is the median of the last N prior records",
    )
    bench_check.add_argument(
        "--min-history", type=int, default=2, metavar="N",
        help="prior records required before a metric is compared at all",
    )
    bench_check.add_argument(
        "--portable-only", action="store_true",
        help="compare only machine-portable metrics (the CI mode: "
        "committed history spans machines)",
    )

    sub.add_parser("breakdown", help="latency decomposition by message size")

    send = sub.add_parser("send", help="trace one message end to end")
    send.add_argument("src", type=int)
    send.add_argument("dest", type=int)
    send.add_argument("--network", choices=("figure1", "figure3", "fattree"),
                      default="figure1")
    send.add_argument("--verbose", "-v", action="store_true")
    send.add_argument("--max-cycles", type=int, default=50000)
    send.add_argument(
        "--trace-export",
        default=None,
        metavar="FILE",
        help="record the message's span timeline and write it as "
        "Chrome trace-event JSON (load in Perfetto or chrome://tracing)",
    )
    add_backend(send)

    verify = sub.add_parser(
        "verify",
        help="differential-test the simulator against the latency model",
    )
    verify.add_argument(
        "--trials",
        type=int,
        default=50,
        help="number of random configurations (parallelizes with --workers)",
    )
    verify.add_argument(
        "--shrink",
        action="store_true",
        help="delta-debug the first failing scenario to a minimal "
        "reproduction before exiting",
    )
    verify.add_argument(
        "--save",
        default=".verify-artifacts",
        metavar="DIR",
        help="directory for failing-scenario JSON artifacts",
    )
    verify.add_argument(
        "--replay",
        default=None,
        metavar="FILE",
        help="re-run one saved scenario JSON under the conformance "
        "oracle instead of sweeping",
    )
    verify.add_argument("--max-cycles", type=int, default=50000)
    verify.add_argument(
        "--backend-diff",
        action="store_true",
        help="instead of the latency-model sweep, differentially test "
        "the --backend engine against the reference engine over "
        "--trials seeded workloads (scenario/traffic/faults/chaos); "
        "any observable difference fails the command",
    )
    verify.add_argument(
        "--resume-diff",
        action="store_true",
        help="prove snapshot/restore transparency: each of --trials "
        "seeded workloads (scenario/traffic/faults/chaos) is run "
        "straight through and as run-half/snapshot/restore/run-half "
        "across every (capture, restore) backend pair; any observable "
        "difference fails the command",
    )
    add_backend(verify)

    return parser


_COMMANDS = {
    "table3": _cmd_table3,
    "table5": _cmd_table5,
    "figure1": _cmd_figure1,
    "figure3": _cmd_figure3,
    "faults": _cmd_faults,
    "chaos": _cmd_chaos,
    "workloads": _cmd_workloads,
    "breakdown": _cmd_breakdown,
    "saturation": _cmd_saturation,
    "send": _cmd_send,
    "verify": _cmd_verify,
    "tail": _cmd_tail,
    "bench-check": _cmd_bench_check,
}


def main(argv=None):
    args = build_parser().parse_args(argv)
    from repro.harness.parallel import SweepInterrupted

    try:
        return _COMMANDS[args.command](args)
    except SweepInterrupted as exc:
        print(
            "interrupted: {} — the journal is flushed; finish the "
            "sweep with --resume".format(exc),
            file=sys.stderr,
        )
        return 130


if __name__ == "__main__":
    sys.exit(main())
