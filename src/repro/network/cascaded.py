"""Width-cascaded networks: every logical router is ``c`` slices wide.

Table 3's cascade rows (2-cascade, 4-cascade) build each logical
router from ``c`` METRO components in parallel, multiplying channel
bandwidth by ``c`` at unchanged stage latency.  This module applies
Section 5.1's cascading at *network* scale:

* ``c`` identical copies ("slices") of the whole network are built
  from the same seed, so wiring, router randomness, and endpoint
  behaviour are identical — the simulation equivalent of the shared
  external random bits (identically-seeded PRNGs make identical
  decisions whenever the request streams are identical, which is
  exactly the non-faulty cascade condition);
* wide messages are split word-by-word across the slices
  (:func:`~repro.core.cascade.split_value`) and their replies joined;
* a cross-slice consistency checker implements the wired-AND IN-USE
  pull-up: any allocation disagreement between slices of one logical
  router is detected at once and the connection is shut down on every
  slice (fault containment).

The cascade-speedup arithmetic follows directly: a B-byte message is
``ceil(8B / (w*c))`` words long, so message serialization shrinks by
``c`` while per-stage latency is unchanged — the behavioural version
of Table 4's ``t_20,32`` cascade scaling.
"""

from repro.core.cascade import join_slices, split_value
from repro.endpoint.messages import DELIVERED, Message
from repro.network.builder import build_network


class WideMessage:
    """One logical message carried by ``c`` slice messages."""

    def __init__(self, dest, wide_payload, slices):
        self.dest = dest
        self.wide_payload = list(wide_payload)
        self.slices = slices

    @property
    def outcome(self):
        outcomes = {m.outcome for m in self.slices}
        if outcomes == {DELIVERED}:
            return DELIVERED
        if None in outcomes:
            return None
        return "partial" if DELIVERED in outcomes else self.slices[0].outcome

    @property
    def latency(self):
        latencies = [m.latency for m in self.slices]
        if any(l is None for l in latencies):
            return None
        return max(latencies)

    def slices_in_lockstep(self):
        """True when every slice saw identical timing and retries."""
        reference = self.slices[0]
        return all(
            m.latency == reference.latency and m.attempts == reference.attempts
            for m in self.slices[1:]
        )

    def wide_reply(self, w):
        """Join the slices' reply payloads back into wide words."""
        parts = [m.reply_payload for m in self.slices]
        if any(p is None for p in parts):
            return None
        length = min(len(p) for p in parts)
        return [
            join_slices([p[index] for p in parts], w) for index in range(length)
        ]


class CascadedNetwork:
    """``c`` lockstep slice networks forming one wide network.

    :param plan: the per-slice :class:`~repro.network.topology.NetworkPlan`.
    :param c: cascade width (number of slices).
    :param seed: master seed; all slices share it (identical behaviour).
    :param build_kwargs: forwarded to every
        :func:`~repro.network.builder.build_network` call.
    """

    def __init__(self, plan, c=2, seed=0, **build_kwargs):
        if c < 1:
            raise ValueError("cascade width must be >= 1")
        self.plan = plan
        self.c = c
        self.w = plan.stages[0].params.w
        self.slices = [
            build_network(plan, seed=seed, **build_kwargs) for _ in range(c)
        ]
        self.inuse_mismatches = 0
        self._torn_down = set()
        #: Optional callback ``(router_key, backward_port, owners)``
        #: invoked on every cross-slice IN-USE disagreement; the
        #: conformance oracle hooks this to record the violation with
        #: its cycle/router/port context.
        self.consistency_observer = None

    @property
    def wide_width(self):
        """Effective datapath bits: ``w * c``."""
        return self.w * self.c

    # ------------------------------------------------------------------

    def send_wide(self, src, dest, wide_payload):
        """Send wide words (each < 2**(w*c)) from ``src`` to ``dest``."""
        limit = 1 << self.wide_width
        for value in wide_payload:
            if not 0 <= value < limit:
                raise ValueError(
                    "wide word {:#x} exceeds {} bits".format(value, self.wide_width)
                )
        per_slice = [[] for _ in range(self.c)]
        for value in wide_payload:
            for index, part in enumerate(split_value(value, self.w, self.c)):
                per_slice[index].append(part)
        slice_messages = [
            network.send(src, Message(dest=dest, payload=payload))
            for network, payload in zip(self.slices, per_slice)
        ]
        return WideMessage(dest, wide_payload, slice_messages)

    def run(self, cycles):
        for _ in range(cycles):
            self.step()

    def step(self):
        for network in self.slices:
            network.engine.step()
        self._check_consistency()

    def run_until_quiet(self, max_cycles=100000):
        for _ in range(max_cycles):
            if all(self._network_quiet(n) for n in self.slices):
                self.run(4)
                return True
            self.step()
        return all(self._network_quiet(n) for n in self.slices)

    @staticmethod
    def _network_quiet(network):
        return all(ep.idle() for ep in network.endpoints) and all(
            router.is_quiescent()
            for stage in network.routers
            for router in stage
            if not router.dead
        )

    # ------------------------------------------------------------------

    def _check_consistency(self):
        """The wired-AND IN-USE pull-up, across slices of each router."""
        if self.c == 1:
            return
        reference = self.slices[0]
        for key, router in reference.router_grid.items():
            ports = router.backward_owner_ports()
            for other in self.slices[1:]:
                other_ports = other.router_grid[key].backward_owner_ports()
                if other_ports == ports:
                    continue
                for q in range(len(ports)):
                    if ports[q] == other_ports[q]:
                        continue
                    event = (key, q, ports[q], other_ports[q])
                    if event in self._torn_down:
                        continue
                    self._torn_down.add(event)
                    self.inuse_mismatches += 1
                    if self.consistency_observer is not None:
                        self.consistency_observer(
                            key, q, (ports[q], other_ports[q])
                        )
                    for owner in (ports[q], other_ports[q]):
                        if owner is None:
                            continue
                        for network in self.slices:
                            network.router_grid[key].force_teardown(owner)

    def consistent(self):
        reference = [
            r.backward_owner_ports()
            for r in self.slices[0].router_grid.values()
        ]
        for other in self.slices[1:]:
            ports = [
                r.backward_owner_ports() for r in other.router_grid.values()
            ]
            if ports != reference:
                return False
        return True
