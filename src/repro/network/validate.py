"""Network linter: consistency checks over a built network.

A METRO network has redundant descriptions of the same facts — the
plan, the codec, each router's Table 2 configuration, and the physical
channel graph.  :func:`validate_network` cross-checks them and returns
a list of human-readable problems (empty = consistent).  The builder
produces consistent networks by construction; the validator exists for
users who reconfigure networks by hand (or through scan) and want to
know the configuration still makes sense before running traffic.
"""


def validate_network(network):
    """Return a list of problem strings for ``network``."""
    problems = []
    problems.extend(_check_attachment(network))
    problems.extend(_check_dilation(network))
    problems.extend(_check_swallow(network))
    problems.extend(_check_turn_delays(network))
    problems.extend(_check_reachability(network))
    return problems


def _check_attachment(network):
    problems = []
    for router in network.all_routers():
        for port, end in enumerate(router.forward_ends):
            if end is None:
                problems.append(
                    "{}: forward port {} unattached".format(router.name, port)
                )
        for port, end in enumerate(router.backward_ends):
            if end is None:
                problems.append(
                    "{}: backward port {} unattached".format(router.name, port)
                )
    for endpoint in network.endpoints:
        if len(endpoint.source_ends) != network.plan.endpoint_out_ports:
            problems.append(
                "{}: {} source ports attached, plan says {}".format(
                    endpoint.name,
                    len(endpoint.source_ends),
                    network.plan.endpoint_out_ports,
                )
            )
        if len(endpoint.receive_ends) != network.plan.endpoint_in_ports:
            problems.append(
                "{}: {} receive ports attached, plan says {}".format(
                    endpoint.name,
                    len(endpoint.receive_ends),
                    network.plan.endpoint_in_ports,
                )
            )
    return problems


def _check_dilation(network):
    problems = []
    for (stage, _block, _index), router in network.router_grid.items():
        want = network.plan.stages[stage].dilation
        if router.config.dilation != want:
            problems.append(
                "{}: dilation {} but stage {} plans {}".format(
                    router.name, router.config.dilation, stage, want
                )
            )
    return problems


def _check_swallow(network):
    problems = []
    flags = network.codec.swallow_flags()
    for (stage, _block, _index), router in network.router_grid.items():
        if router.params.hw != 0:
            continue
        for port in range(router.params.i):
            if router.config.swallow[port] != flags[stage]:
                problems.append(
                    "{}: forward port {} swallow={} but codec wants {} at "
                    "stage {}".format(
                        router.name,
                        port,
                        router.config.swallow[port],
                        flags[stage],
                        stage,
                    )
                )
    return problems


def _check_turn_delays(network):
    problems = []
    for (src_key, dst_key), channel in network.channels.items():
        for key, is_source in ((src_key, True), (dst_key, False)):
            if key[0] != "router":
                continue
            _, stage, block, index, port = key
            router = network.router_grid[(stage, block, index)]
            if is_source:
                port_id = router.config.backward_port_id(port)
            else:
                port_id = router.config.forward_port_id(port)
            want = min(channel.delay, router.params.max_vtd)
            have = router.config.turn_delay[port_id]
            if have != want:
                problems.append(
                    "{}: port id {} turn delay {} but wire {} is {} deep".format(
                        router.name, port_id, have, channel.name, channel.delay
                    )
                )
    return problems


def _check_reachability(network):
    """Every destination must keep at least one enabled route.

    Uses the destination-filtered graph restricted to *enabled* ports;
    a too-aggressive masking session can silently isolate an endpoint,
    which is exactly what an operator wants the linter to say.
    """
    import networkx as nx

    from repro.network import analysis

    problems = []
    graph = analysis.build_graph(network.plan, network.links)
    # Remove edges whose producing or consuming port is disabled.
    removed = []
    for link in network.links:
        for ref, backward in ((link.src, True), (link.dst, False)):
            if ref.kind != "router":
                continue
            router = network.router_grid[(ref.stage, ref.block, ref.index)]
            if backward:
                port_id = router.config.backward_port_id(ref.port)
            else:
                port_id = router.config.forward_port_id(ref.port)
            if not router.config.port_enabled[port_id]:
                removed.append(
                    (
                        analysis._node(link.src, is_source=True),
                        analysis._node(link.dst, is_source=False),
                    )
                )
                break
    for dest in range(network.plan.n_endpoints):
        sub = analysis.route_subgraph(network.plan, graph, dest)
        for edge in removed:
            u, v = edge
            while sub.has_edge(u, v):
                sub.remove_edge(u, v)
        sink = ("dst", dest)
        reaches_sink = (
            nx.ancestors(sub, sink) if sink in sub else set()
        )
        for src in range(network.plan.n_endpoints):
            source = ("src", src)
            if source not in reaches_sink:
                problems.append(
                    "no enabled route from endpoint {} to endpoint {}".format(
                        src, dest
                    )
                )
    return problems
