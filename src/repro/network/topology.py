"""Multistage network topology arithmetic.

A multibutterfly-style network (paper, Section 2, *Network
Organization*) recursively subdivides the destination set: stage ``s``
splits every destination *block* into ``r_s`` sub-blocks, so after the
final stage each block is one network endpoint.  Dilation ``d_s > 1``
gives each logical direction ``d_s`` equivalent wires, creating the
multiple independent paths that provide bandwidth and fault tolerance.

:class:`StageSpec` describes the routers used at one stage (their
architectural parameters plus the configured dilation);
:class:`NetworkPlan` checks that a sequence of stages wires up
consistently and precomputes all the counts the builder needs.
"""

from repro.core.parameters import RouterParameters


class StageSpec:
    """Routers used at one network stage.

    :param params: the routers' :class:`RouterParameters`.
    :param dilation: configured dilation at this stage (power of two
        <= ``params.max_d``); the logical radix follows as ``o / d``.
    """

    def __init__(self, params, dilation):
        self.params = params
        self.dilation = dilation
        self.radix = params.radix(dilation)  # validates dilation too

    def __repr__(self):
        return "<StageSpec {}x{} r={} d={}>".format(
            self.params.i, self.params.o, self.radix, self.dilation
        )


class NetworkPlan:
    """A validated plan for a multibutterfly-style network.

    :param n_endpoints: number of network endpoints.
    :param endpoint_out_ports: wires each endpoint drives into stage 0.
    :param endpoint_in_ports: wires each endpoint receives from the
        final stage (derived quantities must agree with this).
    :param stages: list of :class:`StageSpec`, first stage first.

    Invariants checked at construction time:

    * the product of stage radices equals ``n_endpoints`` (each leaf
      block is exactly one endpoint);
    * at every stage the block's incoming wires divide evenly among
      routers (``wires_per_block % i == 0``);
    * the wires emerging from the final stage give each endpoint
      exactly ``endpoint_in_ports`` inputs.
    """

    def __init__(self, n_endpoints, endpoint_out_ports, endpoint_in_ports, stages):
        if n_endpoints < 1:
            raise ValueError("need at least one endpoint")
        if not stages:
            raise ValueError("need at least one stage")
        self.n_endpoints = n_endpoints
        self.endpoint_out_ports = endpoint_out_ports
        self.endpoint_in_ports = endpoint_in_ports
        self.stages = list(stages)

        radix_product = 1
        for stage in self.stages:
            radix_product *= stage.radix
        if radix_product != n_endpoints:
            raise ValueError(
                "stage radices multiply to {} but there are {} endpoints".format(
                    radix_product, n_endpoints
                )
            )

        #: Per-stage derived counts, filled by the walk below.
        self.blocks_per_stage = []
        self.routers_per_block = []
        self.wires_in_per_stage = []

        wires = n_endpoints * endpoint_out_ports
        blocks = 1
        for index, stage in enumerate(self.stages):
            per_block = wires // blocks
            if wires % blocks:
                raise ValueError(
                    "stage {}: {} wires do not divide into {} blocks".format(
                        index, wires, blocks
                    )
                )
            if per_block % stage.params.i:
                raise ValueError(
                    "stage {}: {} wires per block do not fill {}-input routers".format(
                        index, per_block, stage.params.i
                    )
                )
            routers = per_block // stage.params.i
            self.blocks_per_stage.append(blocks)
            self.routers_per_block.append(routers)
            self.wires_in_per_stage.append(wires)
            # Each router contributes d wires to each of its r logical
            # directions; a direction's wires feed one sub-block.
            wires = blocks * stage.radix * routers * stage.dilation
            blocks *= stage.radix

        if wires % n_endpoints:
            raise ValueError(
                "final stage emits {} wires, not a multiple of {} endpoints".format(
                    wires, n_endpoints
                )
            )
        derived_in = wires // n_endpoints
        if derived_in != endpoint_in_ports:
            raise ValueError(
                "topology delivers {} wires per endpoint, expected {}".format(
                    derived_in, endpoint_in_ports
                )
            )

    @property
    def n_stages(self):
        return len(self.stages)

    def routers_in_stage(self, stage_index):
        """Total routers at the given stage."""
        return (
            self.blocks_per_stage[stage_index] * self.routers_per_block[stage_index]
        )

    def total_routers(self):
        return sum(self.routers_in_stage(s) for s in range(self.n_stages))

    def stage_radices(self):
        return [stage.radix for stage in self.stages]

    def destination_block(self, stage_index, dest):
        """Which stage-``stage_index`` block serves destination ``dest``.

        Block indices refine left-to-right: a stage-``s`` block splits
        into sub-blocks ``b * r_s + g`` for direction ``g``.
        """
        block = 0
        remainder = dest
        divisor = self.n_endpoints
        for s in range(stage_index):
            radix = self.stages[s].radix
            divisor //= radix
            digit = remainder // divisor
            remainder -= digit * divisor
            block = block * radix + digit
        return block

    def __repr__(self):
        return "<NetworkPlan {} endpoints, {} stages, {} routers>".format(
            self.n_endpoints, self.n_stages, self.total_routers()
        )


def multibutterfly_plan(
    n_endpoints,
    router_ports=8,
    w=8,
    endpoint_ports=2,
    dilation=2,
    hw=0,
    dp=1,
):
    """A Figure-1-style multipath plan for any power-of-two size.

    Early stages use ``router_ports`` x ``router_ports`` routers at the
    given dilation; the final stage uses dilation-1 routers sized so
    each endpoint keeps ``endpoint_ports`` redundant inputs — the
    construction of Figure 1 and Figure 3, generalized.

    :raises ValueError: when ``n_endpoints`` cannot be reached with a
        whole number of stages of this radix.
    """
    if n_endpoints & (n_endpoints - 1):
        raise ValueError("n_endpoints must be a power of two")
    early = RouterParameters(
        i=router_ports, o=router_ports, w=w, max_d=max(2, dilation), hw=hw, dp=dp
    )
    early_radix = early.radix(dilation)
    if early_radix < 2:
        raise ValueError(
            "radix {} stages cannot subdivide destinations; use more "
            "router ports or less dilation".format(early_radix)
        )
    final_ports = router_ports // dilation  # final radix == early radix
    final = RouterParameters(
        i=final_ports, o=final_ports, w=w, max_d=min(2, final_ports), hw=hw, dp=dp
    )
    final_radix = final.radix(1)
    remaining = n_endpoints // final_radix
    if remaining * final_radix != n_endpoints:
        raise ValueError(
            "final radix {} does not divide {} endpoints".format(
                final_radix, n_endpoints
            )
        )
    early_stages = 0
    while remaining > 1:
        if remaining % early_radix:
            raise ValueError(
                "{} endpoints unreachable with radix-{} stages and a "
                "radix-{} final stage".format(n_endpoints, early_radix, final_radix)
            )
        remaining //= early_radix
        early_stages += 1
    stages = [StageSpec(early, dilation) for _ in range(early_stages)]
    stages.append(StageSpec(final, 1))
    return NetworkPlan(
        n_endpoints=n_endpoints,
        endpoint_out_ports=endpoint_ports,
        endpoint_in_ports=endpoint_ports,
        stages=stages,
    )


def table3_32node_plan(two_stage=False, w=4, hw=0, dp=1):
    """The 32-node example machine behind Table 3's ``t_20,32`` column.

    Four-stage form (the METROJR rows): three radix-2 dilation-2 stages
    of 4x4 parts plus a radix-4 dilation-1 final stage.  Two-stage form
    (the METRO i=o=8 rows): a radix-4 dilation-2 stage of 8x8 parts
    into a radix-8 dilation-1 stage.
    """
    if two_stage:
        eight = RouterParameters(i=8, o=8, w=max(w, 3), max_d=2, hw=hw, dp=dp)
        return NetworkPlan(
            32,
            2,
            2,
            [StageSpec(eight, 2), StageSpec(eight, 1)],
        )
    four = RouterParameters(i=4, o=4, w=w, max_d=2, hw=hw, dp=dp)
    return NetworkPlan(
        32,
        2,
        2,
        [StageSpec(four, 2), StageSpec(four, 2), StageSpec(four, 2),
         StageSpec(four, 1)],
    )


def figure1_plan():
    """The paper's Figure 1: a 16x16 multipath network.

    Built from 4x2 (inputs x radix) dilation-2 routers in the first two
    stages and 4x4 dilation-1 routers in the final stage; each of the
    16 endpoints has two inputs and two outputs.
    """
    four_by_four = RouterParameters(i=4, o=4, w=4, max_d=2, hw=0, dp=1)
    return NetworkPlan(
        n_endpoints=16,
        endpoint_out_ports=2,
        endpoint_in_ports=2,
        stages=[
            StageSpec(four_by_four, dilation=2),
            StageSpec(four_by_four, dilation=2),
            StageSpec(four_by_four, dilation=1),
        ],
    )


def figure3_plan(w=8):
    """The paper's Figure 3 network: 3 stages of radix-4 routers.

    64 endpoints, 8-bit-wide datapaths, the first two stages in
    dilation-2 mode (8x8 routers, radix 4) and the last stage in
    dilation-1 mode (4x4 routers, radix 4); each endpoint has two
    connections entering and leaving the network.
    """
    eight_port = RouterParameters(i=8, o=8, w=w, max_d=2, hw=0, dp=1)
    four_port = RouterParameters(i=4, o=4, w=w, max_d=2, hw=0, dp=1)
    return NetworkPlan(
        n_endpoints=64,
        endpoint_out_ports=2,
        endpoint_in_ports=2,
        stages=[
            StageSpec(eight_port, dilation=2),
            StageSpec(eight_port, dilation=2),
            StageSpec(four_port, dilation=1),
        ],
    )
