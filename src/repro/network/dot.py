"""Graphviz DOT export of METRO networks.

Emits plain DOT text (no graphviz dependency): stages as ranked
clusters, endpoints on both flanks, optional highlighting of all legal
routes to one destination — a textual rendering of what the paper's
Figure 1 draws.  Paste into any DOT viewer.
"""

from repro.network import analysis


def network_to_dot(plan, links, highlight_dest=None, name="metro"):
    """DOT source for the network defined by ``plan`` + ``links``.

    :param highlight_dest: if given, edges on legal routes to this
        destination are drawn bold/colored (the Figure 1 bold paths).
    """
    graph = analysis.build_graph(plan, links)
    highlighted = set()
    if highlight_dest is not None:
        sub = analysis.route_subgraph(plan, graph, highlight_dest)
        highlighted = {
            (u, v, k) for u, v, k in sub.edges(keys=True)
        }

    lines = ["digraph {} {{".format(name)]
    lines.append('  rankdir=LR;')
    lines.append('  node [shape=box, fontsize=9];')

    # Endpoint columns.
    lines.append("  subgraph cluster_sources {")
    lines.append('    label="endpoints (out)"; style=dashed;')
    for e in range(plan.n_endpoints):
        lines.append('    "src{0}" [label="ep{0}"];'.format(e))
    lines.append("  }")
    for s in range(plan.n_stages):
        lines.append("  subgraph cluster_stage{} {{".format(s))
        stage = plan.stages[s]
        lines.append(
            '    label="stage {} ({}x{} r={} d={})"; style=dashed;'.format(
                s, stage.params.i, stage.params.o, stage.radix, stage.dilation
            )
        )
        for block in range(plan.blocks_per_stage[s]):
            for index in range(plan.routers_per_block[s]):
                lines.append(
                    '    "r{0}.{1}.{2}" [label="r{0}.{1}.{2}"];'.format(
                        s, block, index
                    )
                )
        lines.append("  }")
    lines.append("  subgraph cluster_dests {")
    lines.append('    label="endpoints (in)"; style=dashed;')
    for e in range(plan.n_endpoints):
        lines.append('    "dst{0}" [label="ep{0}"];'.format(e))
    lines.append("  }")

    for u, v, k in graph.edges(keys=True):
        attrs = ""
        if (u, v, k) in highlighted:
            attrs = ' [color=red, penwidth=2.0]'
        lines.append('  "{}" -> "{}"{};'.format(_name(u), _name(v), attrs))
    lines.append("}")
    return "\n".join(lines)


def _name(node):
    if node[0] == "src":
        return "src{}".format(node[1])
    if node[0] == "dst":
        return "dst{}".format(node[1])
    _, stage, block, index = node
    return "r{}.{}.{}".format(stage, block, index)
