"""Fat-tree-style networks from METRO routers.

The paper (Section 2) notes that fat-trees [17][14] are "another class
of multistage, multipath networks which can be built using METRO
routing components".  This module builds the randomized-routing form:
a connection first climbs ``up_stages`` of routers configured at
*maximal dilation* — radix 1, so every output is equivalent and the
router picks one uniformly at random, exactly Greenberg & Leiserson's
randomized fat-tree routing — and then descends through ordinary
destination-subdividing stages.

In METRO terms an up stage is nothing special: a router whose
configured dilation equals its port count has a single logical
direction, consumes zero routing bits, and spreads load randomly.
That one observation lets the standard multibutterfly builder
(:mod:`repro.network.builder`) assemble and operate fat-trees with no
new mechanism; this constructor just picks the stage specs.

We build the full-bandwidth (non-tapered) variant in which every
connection climbs to the top: stage widths stay constant, so the
result is plan-compatible.  Tapered capacity variants differ only in
wire counts, not in routing behaviour.
"""

import math

from repro.core.parameters import RouterParameters
from repro.network.topology import NetworkPlan, StageSpec


def fattree_plan(
    n_endpoints=16,
    endpoint_ports=2,
    up_stages=1,
    router_ports=4,
    w=8,
    down_dilation=2,
):
    """A randomized-routing fat-tree plan.

    :param n_endpoints: leaves of the tree (power of the down radix).
    :param endpoint_ports: wires per endpoint in each direction.
    :param up_stages: stages of radix-1 random climbing.
    :param router_ports: ``i = o`` of every router used.
    :param w: datapath width.
    :param down_dilation: dilation of the descending stages (the final
        stage is always dilation-1 so endpoints keep multiple inputs).
    """
    up_params = RouterParameters(
        i=router_ports, o=router_ports, w=w, max_d=router_ports, hw=0, dp=1
    )
    down_params = RouterParameters(
        i=router_ports, o=router_ports, w=w, max_d=max(2, down_dilation), hw=0, dp=1
    )
    down_radix = router_ports // down_dilation
    final_radix = router_ports  # dilation-1 final stage

    remaining = n_endpoints // final_radix
    if remaining * final_radix != n_endpoints:
        raise ValueError(
            "n_endpoints {} not divisible by final radix {}".format(
                n_endpoints, final_radix
            )
        )
    if remaining < 1:
        raise ValueError("n_endpoints too small for one final stage")
    middle_stages = (
        int(math.log(remaining, down_radix)) if remaining > 1 else 0
    )
    if down_radix ** middle_stages != remaining:
        raise ValueError(
            "n_endpoints {} is not final_radix * down_radix**k".format(n_endpoints)
        )

    stages = [StageSpec(up_params, dilation=router_ports) for _ in range(up_stages)]
    stages.extend(
        StageSpec(down_params, dilation=down_dilation) for _ in range(middle_stages)
    )
    stages.append(StageSpec(down_params, dilation=1))
    return NetworkPlan(
        n_endpoints=n_endpoints,
        endpoint_out_ports=endpoint_ports,
        endpoint_in_ports=endpoint_ports,
        stages=stages,
    )
