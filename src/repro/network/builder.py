"""Assemble a runnable METRO network from a plan.

:func:`build_network` turns a :class:`~repro.network.topology.NetworkPlan`
into live simulation objects: routers (configured with the right
dilation, swallow bits and turn delays), channels (with per-stage
pipeline depth), endpoints, and an engine clocking them all.  The
result is a :class:`MetroNetwork` — the main entry point of the whole
library.
"""

import random

from repro.core.crossbar import RANDOM
from repro.core.parameters import RouterConfig
from repro.core.random_source import RandomStream
from repro.core.router import MetroRouter
from repro.endpoint.interface import Endpoint
from repro.endpoint.messages import MessageLog
from repro.network.headers import HeaderCodec
from repro.network.multibutterfly import wire
from repro.sim.backends import make_engine
from repro.sim.channel import Channel
from repro.sim.trace import Trace


class MetroNetwork:
    """A fully wired METRO network ready to simulate.

    Attributes of interest:

    * ``engine`` — the simulation engine (``network.run(n)`` forwards).
    * ``routers`` — ``routers[stage][index]``, stage-major.
    * ``router_grid`` — ``{(stage, block, idx): router}``.
    * ``endpoints`` — list of :class:`~repro.endpoint.interface.Endpoint`.
    * ``channels`` — ``{(src_key, dst_key): Channel}`` for fault injection.
    * ``log`` — the shared message log.
    * ``codec`` — the header codec endpoints encode with.
    * ``telemetry`` — the bound TelemetryHub, or None.
    """

    #: Overridden per-instance when a hub is bound (builder ``telemetry=``
    #: argument or :func:`repro.telemetry.attach_telemetry`).
    telemetry = None

    def __init__(self, plan, engine, routers, router_grid, endpoints, channels, log, codec, links):
        self.plan = plan
        self.engine = engine
        self.routers = routers
        self.router_grid = router_grid
        self.endpoints = endpoints
        self.channels = channels
        self.log = log
        self.codec = codec
        self.links = links

    def run(self, cycles):
        self.engine.run(cycles)

    def run_until_quiet(self, max_cycles=100000, settle=4):
        """Run until every endpoint is idle and every router quiescent.

        ``settle`` extra cycles drain channel pipelines after the last
        component goes idle.  Returns True if quiet within the budget.
        ``max_cycles=0`` is a pure check: it reports quiescence without
        advancing the clock at all (no settle cycles either).
        """

        def quiet(engine):
            # Dead routers are frozen mid-state; they hold no live
            # resources and cannot become quiescent, so skip them.
            return all(ep.idle() for ep in self.endpoints) and all(
                router.is_quiescent()
                for stage in self.routers
                for router in stage
                if not router.dead
            )

        ok = self.engine.run_until(quiet, max_cycles)
        if ok and max_cycles > 0:
            self.engine.run(settle)
        return ok

    def send(self, src, message):
        """Submit ``message`` at endpoint ``src``; returns the message."""
        endpoint = self.endpoints[src]
        # The endpoint may have been parked by an event-driven engine
        # backend with a stale clock; wake (and resync) it before the
        # submit so queue timestamps match the reference engine's.
        self.engine.wake(endpoint)
        return endpoint.submit(message)

    def request(self, src, dest, payload, max_cycles=30000):
        """Synchronous request/reply: send, run until done, return reply.

        The remote-read convenience: submits the message, runs the
        simulation until the network drains, and returns the reply
        payload (the destination handler's words, without the trailing
        reply checksum).  Raises on non-delivery.
        """
        from repro.endpoint.messages import DELIVERED, Message

        message = self.send(src, Message(dest=dest, payload=payload))
        if not self.run_until_quiet(max_cycles=max_cycles):
            raise RuntimeError("network did not drain within the budget")
        if message.outcome != DELIVERED:
            raise RuntimeError(
                "request failed: {} after {} attempts ({})".format(
                    message.outcome, message.attempts, message.failure_causes
                )
            )
        reply = message.reply_payload
        return reply[:-1] if len(reply) > 0 else reply

    def all_routers(self):
        for stage in self.routers:
            for router in stage:
                yield router

    def channel_between(self, src_key, dst_key):
        return self.channels[(src_key, dst_key)]


def build_network(
    plan,
    seed=0,
    randomize_wiring=True,
    link_delay=1,
    fast_reclaim=False,
    selection_policy=RANDOM,
    signal_timeout=64,
    endpoint_kwargs=None,
    trace=None,
    trace_routers=False,
    telemetry=None,
    backend="reference",
):
    """Instantiate every component of a METRO network.

    :param plan: validated :class:`~repro.network.topology.NetworkPlan`.
    :param seed: master seed; wiring, router selection randomness and
        endpoint behaviour all derive from it reproducibly.
    :param randomize_wiring: random multibutterfly vs. deterministic
        butterfly-style wiring.
    :param link_delay: pipeline stages per wire (uniform ``vtd``); may
        also be a callable ``f(link) -> int`` for non-uniform wiring
        (Section 5.1, Variable Turn Delay).
    :param fast_reclaim: enable fast path reclamation on every forward
        port (the per-port knob remains adjustable afterwards).
    :param selection_policy: backward-port selection policy for all
        routers (ablations may pass first-free / round-robin).
    :param signal_timeout: router dead-signal watchdog, in cycles.
    :param endpoint_kwargs: extra keyword arguments forwarded to every
        :class:`~repro.endpoint.interface.Endpoint`.
    :param trace: a shared :class:`~repro.sim.trace.Trace`; endpoint
        events always go there, router events only when
        ``trace_routers`` is set (they are voluminous).
    :param telemetry: an unbound
        :class:`~repro.telemetry.TelemetryHub`; it is bound to the
        finished network (engine observer + per-component hooks).
        Omitted, every component carries the null-telemetry fast path.
    :param backend: simulation engine backend — ``"reference"`` (the
        dense two-phase sweep) or ``"events"`` (the activity-gated
        event-driven engine of :mod:`repro.sim.backends`; identical
        results, faster at low-to-moderate load).
    """
    rng = random.Random(seed)
    engine = make_engine(backend)
    log = MessageLog()
    endpoint_kwargs = dict(endpoint_kwargs or {})

    first_params = plan.stages[0].params
    hw = first_params.hw
    w = first_params.w
    for stage in plan.stages:
        if stage.params.w != w or stage.params.hw != hw:
            raise ValueError("all stages must share w and hw for one header codec")

    codec = HeaderCodec(w=w, hw=hw, stage_radices=plan.stage_radices())
    swallow_flags = codec.swallow_flags()

    # ------------------------------------------------------------- routers
    routers = []
    router_grid = {}
    for s, stage in enumerate(plan.stages):
        stage_routers = []
        for block in range(plan.blocks_per_stage[s]):
            for index in range(plan.routers_per_block[s]):
                name = "r{}.{}.{}".format(s, block, index)
                config = RouterConfig(stage.params, dilation=stage.dilation)
                if swallow_flags[s]:
                    config.swallow = [True] * stage.params.i
                if fast_reclaim:
                    for port in range(stage.params.i):
                        config.fast_reclaim[config.forward_port_id(port)] = True
                router = MetroRouter(
                    stage.params,
                    name=name,
                    config=config,
                    random_stream=RandomStream(rng.getrandbits(32)),
                    selection_policy=selection_policy,
                    signal_timeout=signal_timeout,
                    trace=trace if trace_routers else None,
                )
                engine.add_component(router)
                stage_routers.append(router)
                router_grid[(s, block, index)] = router
        routers.append(stage_routers)

    # ----------------------------------------------------------- endpoints
    endpoints = []
    for e in range(plan.n_endpoints):
        endpoint = Endpoint(
            index=e,
            codec=codec,
            log=log,
            n_stages=plan.n_stages,
            seed=rng.getrandbits(24),
            trace=trace,
            **endpoint_kwargs
        )
        engine.add_component(endpoint)
        endpoints.append(endpoint)

    # ------------------------------------------------------------- wiring
    links = wire(plan, rng=random.Random(rng.getrandbits(32)), randomize=randomize_wiring)
    channels = {}
    for link in links:
        delay = link_delay(link) if callable(link_delay) else link_delay
        name = "{}->{}".format(link.src, link.dst)
        channel = Channel(delay=delay, name=name)
        engine.add_channel(channel)
        channels[(link.src.key(), link.dst.key())] = channel
        _attach(router_grid, endpoints, link.src, channel.a, is_source=True, delay=delay)
        _attach(router_grid, endpoints, link.dst, channel.b, is_source=False, delay=delay)

    network = MetroNetwork(
        plan, engine, routers, router_grid, endpoints, channels, log, codec, links
    )
    if telemetry is not None:
        telemetry.bind(network)
        network.telemetry = telemetry
    return network


def _attach(router_grid, endpoints, ref, channel_end, is_source, delay):
    if ref.kind == "endpoint":
        endpoint = endpoints[ref.index]
        if is_source:
            endpoint.attach_source(channel_end)
        else:
            endpoint.attach_receive(channel_end)
        return
    router = router_grid[(ref.stage, ref.block, ref.index)]
    if is_source:
        router.attach_backward(ref.port, channel_end)
        port_id = router.config.backward_port_id(ref.port)
    else:
        router.attach_forward(ref.port, channel_end)
        port_id = router.config.forward_port_id(ref.port)
    # Record the physical wire's pipeline depth in the Table 2 turn
    # delay register (bounded by the architectural max_vtd).
    router.config.set_turn_delay(port_id, min(delay, router.params.max_vtd))
