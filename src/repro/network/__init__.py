"""Multistage, multipath network construction and analysis."""

from repro.network import analysis
from repro.network.builder import MetroNetwork, build_network
from repro.network.cascaded import CascadedNetwork, WideMessage
from repro.network.fattree import fattree_plan
from repro.network.headers import HeaderCodec
from repro.network.multibutterfly import Link, NodeRef, wire
from repro.network.topology import (
    NetworkPlan,
    StageSpec,
    figure1_plan,
    figure3_plan,
)

__all__ = [
    "CascadedNetwork",
    "HeaderCodec",
    "Link",
    "WideMessage",
    "MetroNetwork",
    "NetworkPlan",
    "NodeRef",
    "StageSpec",
    "analysis",
    "build_network",
    "fattree_plan",
    "figure1_plan",
    "figure3_plan",
    "wire",
]
