"""Graph analysis of METRO networks: path multiplicity, fault tolerance.

The paper's Figure 1 caption makes two structural claims about the
16x16 network: there are *many* paths between each pair of endpoints,
and the dilation-1 final stage lets the network "tolerate the complete
loss of any router in the final stage without isolating any
endpoints".  This module verifies such claims on any
:class:`~repro.network.topology.NetworkPlan` plus wiring, using
networkx for the graph plumbing.

Because METRO networks are *self-routing*, not every graph path is a
legal route: at stage ``s`` a connection to destination ``dest`` may
only leave through the dilation group of digit ``s`` of ``dest``.  All
functions here therefore work on the *destination-filtered* subgraph.
"""

import networkx as nx


def build_graph(plan, links):
    """The full network as a directed multigraph.

    Nodes: ``("src", e)`` / ``("dst", e)`` endpoint sides and
    ``("r", stage, block, index)`` routers.  Edges carry the producing
    port's direction group as attribute ``direction`` (None for
    endpoint-originated edges).  A multigraph is essential: dilated
    wiring frequently runs two parallel wires between the same pair of
    routers, and each is an independent path.
    """
    graph = nx.MultiDiGraph()
    for link in links:
        src = _node(link.src, is_source=True)
        dst = _node(link.dst, is_source=False)
        direction = None
        if link.src.kind == "router":
            stage = plan.stages[link.src.stage]
            direction = link.src.port // stage.dilation
        graph.add_edge(src, dst, direction=direction, src_port=link.src.port)
    return graph


def _node(ref, is_source):
    if ref.kind == "endpoint":
        return ("src" if is_source else "dst", ref.index)
    return ("r", ref.stage, ref.block, ref.index)


def route_subgraph(plan, graph, dest):
    """Only the edges a connection to ``dest`` may legally use."""
    digits = _digits(plan, dest)
    keep = []
    for u, v, key, attrs in graph.edges(keys=True, data=True):
        if v[0] == "dst" and v[1] != dest:
            continue
        if attrs["direction"] is not None:
            stage = u[1]
            if attrs["direction"] != digits[stage]:
                continue
        keep.append((u, v, key))
    return graph.edge_subgraph(keep).copy()


def _digits(plan, dest):
    digits = []
    remainder = dest
    for radix in reversed([s.radix for s in plan.stages]):
        digits.append(remainder % radix)
        remainder //= radix
    digits.reverse()
    return digits


def count_paths(plan, graph, src, dest):
    """Number of distinct legal routes from ``src`` to ``dest``.

    Dynamic programming over the (acyclic) destination-filtered
    subgraph — exact even when the count is large.
    """
    sub = route_subgraph(plan, graph, dest)
    source, sink = ("src", src), ("dst", dest)
    if source not in sub or sink not in sub:
        return 0
    counts = {source: 1}
    for node in nx.topological_sort(sub):
        here = counts.get(node)
        if here is None:
            continue
        for successor in sub.successors(node):
            multiplicity = sub.number_of_edges(node, successor)
            counts[successor] = counts.get(successor, 0) + here * multiplicity
    return counts.get(sink, 0)


def path_multiplicity_matrix(plan, graph):
    """``matrix[src][dest]`` legal-route counts for every pair."""
    n = plan.n_endpoints
    return [
        [count_paths(plan, graph, src, dest) for dest in range(n)]
        for src in range(n)
    ]


def reachable_with_removed(plan, graph, src, dest, removed_nodes=(), removed_edges=()):
    """Is ``dest`` still reachable from ``src`` after removals?

    ``removed_nodes`` are router nodes ``("r", stage, block, index)``;
    ``removed_edges`` are ``(u, v, key)`` triples identifying a single
    wire, or ``(u, v)`` pairs removing every parallel wire.
    """
    sub = route_subgraph(plan, graph, dest)
    sub.remove_nodes_from([n for n in removed_nodes if n in sub])
    for edge in removed_edges:
        if len(edge) == 3:
            if sub.has_edge(*edge):
                sub.remove_edge(*edge)
        else:
            u, v = edge
            while sub.has_edge(u, v):
                sub.remove_edge(u, v)
    source, sink = ("src", src), ("dst", dest)
    if source not in sub or sink not in sub:
        return False
    return nx.has_path(sub, source, sink)


def tolerates_any_single_router_loss(plan, graph, stage):
    """Figure 1's claim, checked exhaustively for one stage.

    True iff removing any single stage-``stage`` router leaves every
    (src, dest) pair connected.
    """
    routers = [
        node for node in graph.nodes if node[0] == "r" and node[1] == stage
    ]
    for router in routers:
        for dest in range(plan.n_endpoints):
            for src in range(plan.n_endpoints):
                if not reachable_with_removed(
                    plan, graph, src, dest, removed_nodes=[router]
                ):
                    return False
    return True


def isolated_pairs_after_loss(plan, graph, removed_nodes=(), removed_edges=()):
    """All (src, dest) pairs disconnected by the given removals."""
    broken = []
    for src in range(plan.n_endpoints):
        for dest in range(plan.n_endpoints):
            if not reachable_with_removed(
                plan, graph, src, dest, removed_nodes, removed_edges
            ):
                broken.append((src, dest))
    return broken


def min_route_diversity(plan, graph):
    """The smallest legal-route count over all endpoint pairs."""
    matrix = path_multiplicity_matrix(plan, graph)
    return min(min(row) for row in matrix)
