"""Multibutterfly wiring: who connects to whom.

Within each destination block, the incoming wires are assigned to
router inputs by a random permutation — the "randomly-wired
multibutterfly" of Leighton & Maggs that the paper builds on — or by
the identity permutation for a deterministic butterfly-style network
(useful for reproducible tests and as an ablation).  The *logical*
structure (which block each wire belongs to) is identical either way;
randomization only spreads which redundant path serves which input.

The output of :func:`wire` is a flat list of :class:`Link` records,
which the builder (:mod:`repro.network.builder`) turns into channels,
and which the analysis module turns into a graph.
"""

import random


class NodeRef:
    """One side of a link: an endpoint port or a router port.

    ``kind`` is ``"endpoint"`` or ``"router"``.  For endpoints,
    ``index`` is the endpoint number and ``port`` its out/in port.  For
    routers, ``stage``/``block``/``index`` locate the router and
    ``port`` is the forward (as destination) or backward (as source)
    port number.
    """

    __slots__ = ("kind", "stage", "block", "index", "port")

    def __init__(self, kind, index, port, stage=None, block=None):
        self.kind = kind
        self.index = index
        self.port = port
        self.stage = stage
        self.block = block

    def key(self):
        return (self.kind, self.stage, self.block, self.index, self.port)

    def router_key(self):
        """Identity of the router/endpoint, ignoring the port."""
        return (self.kind, self.stage, self.block, self.index)

    def __eq__(self, other):
        return isinstance(other, NodeRef) and self.key() == other.key()

    def __hash__(self):
        return hash(self.key())

    def __repr__(self):
        if self.kind == "endpoint":
            return "ep{}[{}]".format(self.index, self.port)
        return "r{}.{}.{}[{}]".format(self.stage, self.block, self.index, self.port)


class Link:
    """A wire from a producer port to a consumer port."""

    __slots__ = ("src", "dst")

    def __init__(self, src, dst):
        self.src = src
        self.dst = dst

    def __repr__(self):
        return "<Link {} -> {}>".format(self.src, self.dst)


def endpoint_out(index, port):
    return NodeRef("endpoint", index, port)


def endpoint_in(index, port):
    return NodeRef("endpoint", index, port)


def router_ref(stage, block, index, port):
    return NodeRef("router", index, port, stage=stage, block=block)


def _assign_groups_to_routers(groups, n_targets, capacity, rng, randomize):
    """Assign each group's wires to routers, distinct routers per group.

    ``groups`` is a list of wire lists; wires belonging to one group
    are the ``d`` equivalent outputs of one upstream dilation group (or
    one endpoint's output ports), and landing them on *distinct*
    downstream routers is what makes dilation provide router-level
    redundancy — the defining multibutterfly property.

    Balanced greedy: each group takes the currently-emptiest targets
    (ties broken randomly, or by index for deterministic wiring).
    With ``capacity % group_size == 0`` this never dead-ends in
    practice; if a group is larger than the target count, repeats are
    unavoidable and allowed.

    Returns a list of ``(wire, target_index)`` pairs.
    """
    remaining = [capacity] * n_targets
    order = list(range(len(groups)))
    if randomize:
        rng.shuffle(order)
    assignment = []
    for group_index in order:
        wires = groups[group_index]
        chosen = []
        taken = set()
        for wire_ref in wires:
            candidates = [
                t for t in range(n_targets) if remaining[t] > 0 and t not in taken
            ]
            if not candidates:
                # Group larger than target count: repeats unavoidable.
                candidates = [t for t in range(n_targets) if remaining[t] > 0]
            if randomize:
                best = max(remaining[t] for t in candidates)
                pool = [t for t in candidates if remaining[t] == best]
                target = rng.choice(pool)
            else:
                target = max(candidates, key=lambda t: (remaining[t], -t))
            remaining[target] -= 1
            taken.add(target)
            chosen.append((wire_ref, target))
        assignment.extend(chosen)
    return assignment


def wire(plan, rng=None, randomize=True):
    """Produce the full link list for ``plan``.

    The wiring within each destination block places the ``d`` wires of
    every upstream dilation group on ``d`` distinct routers (see
    :func:`_assign_groups_to_routers`); with ``randomize`` the choice
    among balanced targets and the port assignment within each router
    are random (a randomly-wired multibutterfly), otherwise both are
    deterministic.

    :param plan: a validated :class:`~repro.network.topology.NetworkPlan`.
    :param rng: ``random.Random`` used when ``randomize``; defaults to
        a fixed-seed generator so networks are reproducible.
    :param randomize: False builds a deterministic butterfly-style
        wiring instead.
    :returns: list of :class:`Link`.
    """
    if rng is None:
        rng = random.Random(0x4D4554)  # "MET"
    links = []

    # Wires flowing into the current stage, grouped by block.  Each
    # block holds a list of *groups*; a group is the list of equivalent
    # wires that must spread across distinct routers.
    initial_groups = [
        [endpoint_out(e, p) for p in range(plan.endpoint_out_ports)]
        for e in range(plan.n_endpoints)
    ]
    groups_by_block = {0: initial_groups}

    for s, stage in enumerate(plan.stages):
        routers_per_block = plan.routers_per_block[s]
        next_groups = {}
        for block in range(plan.blocks_per_stage[s]):
            groups = groups_by_block[block]
            total = sum(len(g) for g in groups)
            if total != routers_per_block * stage.params.i:
                raise AssertionError(
                    "stage {} block {}: {} wires for {} router inputs".format(
                        s, block, total, routers_per_block * stage.params.i
                    )
                )
            assignment = _assign_groups_to_routers(
                groups, routers_per_block, stage.params.i, rng, randomize
            )
            # Deal each router's incoming wires onto its forward ports.
            per_router = [[] for _ in range(routers_per_block)]
            for wire_ref, target in assignment:
                per_router[target].append(wire_ref)
            for router_index, wires in enumerate(per_router):
                if randomize:
                    rng.shuffle(wires)
                for fwd_port, producer in enumerate(wires):
                    links.append(
                        Link(producer, router_ref(s, block, router_index, fwd_port))
                    )
            # Outgoing wires: direction g's dilation group feeds the
            # sub-block block*r + g of the next stage; the group's d
            # wires stay together as one next-stage group.
            for router_index in range(routers_per_block):
                for g in range(stage.radix):
                    group = [
                        router_ref(s, block, router_index, g * stage.dilation + j)
                        for j in range(stage.dilation)
                    ]
                    next_block = block * stage.radix + g
                    next_groups.setdefault(next_block, []).append(group)
        groups_by_block = next_groups

    # Final stage blocks map one-to-one onto endpoints.
    for dest in range(plan.n_endpoints):
        incoming = [ref for group in groups_by_block[dest] for ref in group]
        if len(incoming) != plan.endpoint_in_ports:
            raise AssertionError(
                "endpoint {} receives {} wires, expected {}".format(
                    dest, len(incoming), plan.endpoint_in_ports
                )
            )
        for port, producer in enumerate(incoming):
            links.append(Link(producer, endpoint_in(dest, port)))

    return links
