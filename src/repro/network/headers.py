"""Routing-header construction and the Table 4 ``hbits`` rule.

A METRO stream begins with a routing specification: one direction
digit per network stage, where the stage-``s`` digit selects one of
that stage's ``r_s`` logical output directions.  How those digits are
carried depends on the connection-setup style:

* ``hw >= 1`` (pipelined connection setup): every router consumes
  ``hw`` whole words from the head of the stream; the digit rides in
  the low bits of the first word of each stage's group and the source
  pads the rest (Section 5.1, *Pipelined Connection Setup*).  Header
  bits: ``hw * w * c * stages`` (Table 4).

* ``hw = 0``: digits are packed MSB-first into ``w``-bit words; each
  router shifts the head word left by ``log2(r_s)`` bits, and the
  per-forward-port *swallow* configuration bit drops the head word at
  the stage where it becomes exhausted (Table 2).  Header bits:
  ``ceil(sum(log2 r_s) / w) * w * c`` (Table 4).

The codec is the single source of truth shared by endpoints (which
encode headers), the network builder (which programs swallow bits) and
tests (which check the router's shifting against :meth:`simulate`).
"""

import math


class HeaderCodec:
    """Encodes destination addresses into routing headers.

    :param w: data channel width in bits.
    :param hw: header words consumed per router (0 for shift-and-swallow).
    :param stage_radices: logical radix of each network stage, in order.
    :param cascade_width: ``c``, the number of width-cascaded routers
        forming each logical router (affects the padded header size
        exactly as in Table 4; each cascade slice carries its own copy
        of the routing bits).
    """

    def __init__(self, w, hw, stage_radices, cascade_width=1):
        if w < 1:
            raise ValueError("w must be >= 1")
        if hw < 0:
            raise ValueError("hw must be >= 0")
        if cascade_width < 1:
            raise ValueError("cascade_width must be >= 1")
        for radix in stage_radices:
            if radix < 1 or radix & (radix - 1):
                raise ValueError("stage radices must be powers of two, got {}".format(radix))
            if radix > (1 << w):
                raise ValueError(
                    "stage radix {} needs more than w={} bits".format(radix, w)
                )
        self.w = w
        self.hw = hw
        self.stage_radices = list(stage_radices)
        self.cascade_width = cascade_width
        self.stage_bits = [int(math.log2(r)) for r in self.stage_radices]

    @property
    def stages(self):
        return len(self.stage_radices)

    @property
    def destinations(self):
        """Number of distinct destinations the header can address."""
        product = 1
        for radix in self.stage_radices:
            product *= radix
        return product

    # ------------------------------------------------------------------
    # Address digits
    # ------------------------------------------------------------------

    def digits(self, dest):
        """Per-stage direction digits for ``dest``, most significant first."""
        if not 0 <= dest < self.destinations:
            raise ValueError(
                "destination {} out of range 0..{}".format(dest, self.destinations - 1)
            )
        digits = []
        remainder = dest
        for radix in reversed(self.stage_radices):
            digits.append(remainder % radix)
            remainder //= radix
        digits.reverse()
        return digits

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------

    def encode(self, dest):
        """Header word values (for one cascade slice) addressing ``dest``."""
        digits = self.digits(dest)
        if self.hw >= 1:
            words = []
            for digit in digits:
                words.append(digit)
                words.extend([0] * (self.hw - 1))
            return words
        return self._pack_hw0(digits)

    def _pack_hw0(self, digits):
        words = []
        current = 0
        bits_left = self.w
        for digit, bits in zip(digits, self.stage_bits):
            if bits_left < bits:
                # The digit would straddle a word boundary: pad the
                # current word with zeros and start a fresh one.  The
                # matching router gets its swallow bit set instead.
                words.append(current << bits_left)
                current = 0
                bits_left = self.w
            current = (current << bits) | digit
            bits_left -= bits
            if bits_left == 0:
                words.append(current)
                current = 0
                bits_left = self.w
        if bits_left != self.w:
            words.append(current << bits_left)
        return words

    def header_length(self):
        """Words of header per cascade slice (identical for all dests)."""
        return len(self.encode(0))

    def hbits(self):
        """Total routing bits including cascade copies — Table 4's ``hbits``.

        For ``hw = 0`` Table 4 states ``ceil(sum(log2 r_s) / w) * w * c``,
        which assumes digits pack without crossing word boundaries (true
        of every configuration in Table 3).  When a digit *would*
        straddle, the encoder pads and starts a new word, so the header
        can be longer than the formula; this method always reports the
        real encoded size.
        """
        if self.hw >= 1:
            return self.hw * self.w * self.cascade_width * self.stages
        return len(self._pack_hw0(self.digits(0))) * self.w * self.cascade_width

    # ------------------------------------------------------------------
    # Router-side configuration and oracle
    # ------------------------------------------------------------------

    def swallow_flags(self):
        """Per-stage swallow configuration bits (hw = 0 only).

        A stage swallows when its shift exhausts the head word —
        including the forced-padding case where a later stage's digit
        would not have fit (the last stage that consumed bits from the
        padded word drops it) — and the last bit-consuming stage drops
        any final partial word so endpoints receive pure payload.
        Radix-1 stages consume no bits and never swallow.  For
        ``hw >= 1`` routers the flags are all False (swallow is "only
        relevant on components where hw = 0", Table 2).
        """
        flags = [False] * self.stages
        if self.hw >= 1:
            return flags
        bits_left = self.w
        last_consumer = None
        word_open = False
        for s, bits in enumerate(self.stage_bits):
            if bits == 0:
                continue
            if bits_left < bits:
                flags[last_consumer] = True
                bits_left = self.w
            word_open = True
            last_consumer = s
            bits_left -= bits
            if bits_left == 0:
                flags[s] = True
                bits_left = self.w
                word_open = False
        if word_open and last_consumer is not None:
            flags[last_consumer] = True
        return flags

    def simulate(self, dest):
        """Oracle: per-stage (direction, remaining header words).

        Mirrors exactly what a chain of correctly configured routers
        does to the header: returns a list with one entry per stage,
        ``(direction, header_words_after_stage)`` where the word list
        is what a downstream observer would see of the header after
        that stage consumed/shifted its share.
        """
        words = self.encode(dest)
        flags = self.swallow_flags()
        results = []
        if self.hw >= 1:
            for s in range(self.stages):
                direction = words[0] & (self.stage_radices[s] - 1)
                words = words[self.hw :]
                results.append((direction, list(words)))
            return results
        mask = (1 << self.w) - 1
        for s, bits in enumerate(self.stage_bits):
            if bits == 0:
                # Radix-1 stage: routes on the head word (which may be
                # payload) without consuming or shifting anything.
                results.append((0, list(words)))
                continue
            head = words[0]
            direction = head >> (self.w - bits)
            if flags[s]:
                words = words[1:]
            else:
                words = [((head << bits) & mask)] + words[1:]
            results.append((direction, list(words)))
        return results
