"""Differential testing: cycle-accurate simulator vs. Table 4 equations.

The repository carries two independent models of an unloaded METRO
network: the cycle-accurate simulator and the closed-form latency
equations of :mod:`repro.latency_model.equations` (Table 4).  This
module runs randomized ``(r, d, vtd, dp, hw)`` configurations through
*both* and asserts they agree exactly.

The mapping: take the equations at ``t_clk = 1`` (so every time is in
clock cycles), ``t_io = vtd`` and ``t_wire = 0`` (so the interconnect
term equals the simulated channel pipeline depth), and message bits
``(payload_words + 1) * w`` (payload plus the end-to-end checksum
word).  The model then predicts the one-way head-to-tail delivery
time; the simulator's observable is the cycle the destination endpoint
accepts the message (its TURN arrival) minus the send start cycle.

The two differ by a *fixed, stated slack* of ``vtd + 1`` cycles:

* ``+ vtd`` — the model charges the head ``stages`` chip-to-chip hops,
  while the simulated path crosses ``stages + 1`` physical channels
  (the final hop into the destination endpoint);
* ``+ 1`` — the TURN token that hands the connection to the receiver
  occupies one word slot the bit-count model does not bill.

Anything other than exact agreement at that slack is a mismatch: one
of the two models is wrong about pipelining, header length, or stream
framing.  Trials are independent and picklable, so the sweep fans out
over the :class:`~repro.harness.parallel.TrialRunner` and is
bit-identical serial or parallel.
"""

from repro.core.random_source import derive_seed
from repro.endpoint.messages import DELIVERED
from repro.harness.parallel import TrialRunner, TrialSpec
from repro.latency_model import equations
from repro.verify.scenario import Scenario, random_scenario


def model_one_way(scenario):
    """The Table 4 prediction for the scenario's one-way latency."""
    payload_words = len(scenario.messages[0]["payload"])
    predicted = equations.t_20_32(
        t_clk=1,
        t_io=scenario.link_delay,
        dp=scenario.dp,
        hw=scenario.hw,
        w=scenario.w,
        c=1,
        stage_radices=[scenario.radix] * scenario.n_stages,
        t_wire=0.0,
        message_bits=(payload_words + 1) * scenario.w,
    )
    return int(round(predicted))


def model_slack(scenario):
    """The stated simulator-vs-model slack: the final channel hop into
    the destination plus the TURN token's word slot."""
    return scenario.link_delay + 1


def compare(scenario, max_cycles=50000):
    """Run ``scenario`` through both models; returns a result dict.

    The scenario must carry exactly one message (the unloaded case the
    equations describe).  The returned dict is picklable/JSON-able:
    keys ``ok``, ``sim``, ``model``, ``slack``, ``delta``, ``detail``,
    ``scenario``, ``violations``.
    """
    if len(scenario.messages) != 1:
        raise ValueError("differential scenarios carry exactly one message")
    result = scenario.run(max_cycles=max_cycles)
    report = {
        "scenario": scenario.as_dict(),
        "model": model_one_way(scenario),
        "slack": model_slack(scenario),
        "sim": None,
        "delta": None,
        "ok": False,
        "detail": "",
        "violations": result.violations,
    }
    if result.outcomes != [DELIVERED]:
        report["detail"] = "message not delivered: {}".format(result.outcomes)
        return report
    if result.attempts != [1]:
        report["detail"] = "unloaded send took {} attempts".format(
            result.attempts[0]
        )
        return report
    if result.violations:
        report["detail"] = "oracle violations: {}".format(
            result.violation_rules()
        )
        return report
    sim = result.arrivals[0] - result.start_cycles[0]
    report["sim"] = sim
    report["delta"] = sim - report["model"]
    if report["delta"] != report["slack"]:
        report["detail"] = (
            "sim={} model={} delta={} != stated slack {}".format(
                sim, report["model"], report["delta"], report["slack"]
            )
        )
        return report
    report["ok"] = True
    return report


def run_trial(seed):
    """One differential trial (module-level for TrialSpec workers)."""
    return compare(random_scenario(seed, n_messages=1))


def differential_specs(n_trials, root_seed=0):
    """The picklable spec list for an ``n_trials`` differential sweep."""
    return [
        TrialSpec(
            runner="repro.verify.differential:run_trial",
            params={},
            seed=derive_seed(root_seed, "verify-differential", index),
            label="diff[{}]".format(index),
        )
        for index in range(n_trials)
    ]


def mismatch_aware_run(max_cycles=50000):
    """A Scenario runner for the shrinker that also checks the model.

    Wraps :meth:`Scenario.run` so that a simulator-vs-model latency
    disagreement surfaces as a synthetic ``differential-mismatch``
    violation — giving the shrinker a failure tag to preserve even when
    the conformance oracle itself is clean.
    """

    def run(scenario):
        result = scenario.run(max_cycles=max_cycles)
        if (
            len(scenario.messages) == 1
            and result.all_delivered
            and result.attempts == [1]
            and result.arrivals
        ):
            sim = result.arrivals[0] - result.start_cycles[0]
            delta = sim - model_one_way(scenario)
            if delta != model_slack(scenario):
                result.violations.append(
                    (
                        result.arrivals[0],
                        "latency-model",
                        None,
                        "differential-mismatch",
                        "sim={} model={} delta={}".format(
                            sim, model_one_way(scenario), delta
                        ),
                    )
                )
        return result

    return run


def differential_sweep(n_trials=50, root_seed=0, runner=None):
    """Run the sweep; returns ``(reports, mismatches)``.

    Deterministic in ``root_seed``: per-trial seeds come from
    :func:`~repro.core.random_source.derive_seed`, so a parallel runner
    returns results identical to a serial one.
    """
    if runner is None:
        runner = TrialRunner()
    reports = runner.run(differential_specs(n_trials, root_seed))
    mismatches = [report for report in reports if not report["ok"]]
    return reports, mismatches
