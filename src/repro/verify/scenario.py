"""Randomized, picklable verification scenarios.

A :class:`Scenario` is a complete, self-contained description of one
verification run: a uniform network shape — the ``(r, d, vtd, dp, hw)``
axes of the paper's design space — plus the messages to send through
it.  Scenarios are plain data (JSON round-trippable), so a failing one
can be shrunk by :mod:`repro.verify.shrink`, committed to the test
suite, and replayed from the CLI (``repro verify --replay``).

Running a scenario always attaches the conformance oracle; the
resulting :class:`ScenarioResult` carries delivery outcomes and every
violation the oracle recorded, in a picklable form suitable for the
parallel :class:`~repro.harness.parallel.TrialRunner`.
"""

import json
import random

from repro.core.parameters import RouterParameters
from repro.endpoint.messages import DELIVERED, Message
from repro.network.builder import build_network
from repro.network.topology import NetworkPlan, StageSpec
from repro.verify.oracle import attach_oracle


class Scenario:
    """One verification run: a uniform network plus a message plan.

    :param radix: logical radix ``r`` of every stage (power of two).
    :param dilation: dilation ``d`` of every stage (routers are
        ``r*d x r*d`` parts).
    :param n_stages: network depth; endpoints number ``r ** n_stages``.
    :param w: datapath width in bits.
    :param hw: header words consumed per router (0 = shift/swallow).
    :param dp: router pipeline depth.
    :param link_delay: uniform channel pipeline depth (the ``vtd``).
    :param seed: master seed for wiring and router randomness.
    :param fast_reclaim: enable BCB fast path reclamation.
    :param messages: list of ``{"src", "dest", "payload"}`` dicts.
    """

    FIELDS = (
        "radix",
        "dilation",
        "n_stages",
        "w",
        "hw",
        "dp",
        "link_delay",
        "seed",
        "fast_reclaim",
        "messages",
    )

    def __init__(
        self,
        radix=2,
        dilation=1,
        n_stages=1,
        w=4,
        hw=0,
        dp=1,
        link_delay=1,
        seed=0,
        fast_reclaim=False,
        messages=(),
    ):
        self.radix = radix
        self.dilation = dilation
        self.n_stages = n_stages
        self.w = w
        self.hw = hw
        self.dp = dp
        self.link_delay = link_delay
        self.seed = seed
        self.fast_reclaim = fast_reclaim
        self.messages = [dict(m) for m in messages]

    # ------------------------------------------------------------------
    # Serialization (JSON-committable reproductions)
    # ------------------------------------------------------------------

    def as_dict(self):
        return {name: getattr(self, name) for name in self.FIELDS}

    @classmethod
    def from_dict(cls, data):
        return cls(**data)

    def to_json(self):
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text):
        return cls.from_dict(json.loads(text))

    def save(self, path):
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path):
        with open(path) as handle:
            return cls.from_json(handle.read())

    def __eq__(self, other):
        return isinstance(other, Scenario) and self.as_dict() == other.as_dict()

    def __repr__(self):
        return (
            "<Scenario r={} d={} stages={} w={} hw={} dp={} vtd={} "
            "seed={} msgs={}>".format(
                self.radix,
                self.dilation,
                self.n_stages,
                self.w,
                self.hw,
                self.dp,
                self.link_delay,
                self.seed,
                len(self.messages),
            )
        )

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------

    @property
    def n_endpoints(self):
        return self.radix ** self.n_stages

    def params(self):
        ports = self.radix * self.dilation
        return RouterParameters(
            i=ports,
            o=ports,
            w=self.w,
            max_d=self.dilation,
            hw=self.hw,
            dp=self.dp,
        )

    def plan(self):
        params = self.params()
        stages = [StageSpec(params, self.dilation) for _ in range(self.n_stages)]
        # Find the smallest endpoint multiplicity that wires up evenly
        # (dilated stages need enough wires per block to fill routers).
        last_error = None
        for m in (1, 2, 4, 8):
            try:
                return NetworkPlan(self.n_endpoints, m, m, stages)
            except ValueError as error:
                last_error = error
        raise ValueError(
            "no endpoint multiplicity wires up {!r}: {}".format(self, last_error)
        )

    def build(self, backend="reference", **endpoint_kwargs):
        return build_network(
            self.plan(),
            seed=self.seed,
            link_delay=self.link_delay,
            fast_reclaim=self.fast_reclaim,
            endpoint_kwargs=endpoint_kwargs or None,
            backend=backend,
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, max_cycles=50000, backend="reference"):
        """Simulate the scenario under the conformance oracle."""
        network = self.build(backend=backend, verify_stage_checksums=True)
        oracle = attach_oracle(network)
        sent = [
            network.send(
                m["src"], Message(dest=m["dest"], payload=list(m["payload"]))
            )
            for m in self.messages
        ]
        quiet = network.run_until_quiet(max_cycles=max_cycles)
        if quiet:
            oracle.check_quiescent(network.engine.cycle)
        return ScenarioResult(
            scenario=self,
            quiet=quiet,
            outcomes=[m.outcome for m in sent],
            attempts=[m.attempts for m in sent],
            start_cycles=[m.start_cycle for m in sent],
            arrivals=[entry[0] for entry in network.log.receiver_arrivals],
            checksum_failures=network.log.receiver_checksum_failures,
            violations=[
                (v.cycle, v.router, v.port, v.rule, v.detail)
                for v in oracle.violations
            ],
        )


class ScenarioResult:
    """Picklable outcome of one :meth:`Scenario.run`."""

    __slots__ = (
        "scenario",
        "quiet",
        "outcomes",
        "attempts",
        "start_cycles",
        "arrivals",
        "checksum_failures",
        "violations",
    )

    def __init__(
        self,
        scenario,
        quiet,
        outcomes,
        attempts,
        start_cycles,
        arrivals,
        checksum_failures,
        violations,
    ):
        self.scenario = scenario
        self.quiet = quiet
        self.outcomes = outcomes
        self.attempts = attempts
        self.start_cycles = start_cycles
        self.arrivals = arrivals
        self.checksum_failures = checksum_failures
        self.violations = violations

    @property
    def all_delivered(self):
        return all(outcome == DELIVERED for outcome in self.outcomes)

    @property
    def clean(self):
        """True when nothing at all went wrong."""
        return (
            self.quiet
            and self.all_delivered
            and not self.violations
            and self.checksum_failures == 0
        )

    def violation_rules(self):
        return sorted({v[3] for v in self.violations})

    def __repr__(self):
        return "<ScenarioResult clean={} outcomes={} violations={}>".format(
            self.clean, self.outcomes, len(self.violations)
        )


# ---------------------------------------------------------------------------
# Random generation
# ---------------------------------------------------------------------------

#: The randomized design-space axes (kept modest so any single draw
#: simulates in well under a second; the sweep gets its coverage from
#: the number of draws, not the size of each one).
RADIX_CHOICES = (2, 4)
DILATION_CHOICES = (1, 2)
STAGE_CHOICES = (1, 2, 3)
HW_CHOICES = (0, 1, 2)
DP_CHOICES = (1, 2, 3)
LINK_DELAY_CHOICES = (1, 2, 3)


def random_scenario(seed, n_messages=1, max_payload_words=12):
    """Draw a random scenario from the ``(r, d, vtd, dp, hw)`` space.

    Deterministic in ``seed``; the same seed always produces the same
    scenario (the contract the trial cache and the shrinker rely on).
    """
    rng = random.Random(seed)
    radix = rng.choice(RADIX_CHOICES)
    n_stages = rng.choice(STAGE_CHOICES)
    if radix == 4 and n_stages == 3:
        n_stages = 2  # keep 64-endpoint draws out of the quick sweep
    scenario = Scenario(
        radix=radix,
        dilation=rng.choice(DILATION_CHOICES),
        n_stages=n_stages,
        w=4,
        hw=rng.choice(HW_CHOICES),
        dp=rng.choice(DP_CHOICES),
        link_delay=rng.choice(LINK_DELAY_CHOICES),
        seed=rng.getrandbits(32),
        fast_reclaim=bool(rng.getrandbits(1)),
        messages=[],
    )
    n_endpoints = scenario.n_endpoints
    for _ in range(n_messages):
        src = rng.randrange(n_endpoints)
        dest = rng.randrange(n_endpoints)
        payload = [
            rng.randrange(1 << scenario.w)
            for _ in range(rng.randint(1, max_payload_words))
        ]
        scenario.messages.append({"src": src, "dest": dest, "payload": payload})
    return scenario
