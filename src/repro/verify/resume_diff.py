"""Deterministic-resume proof for engine snapshots.

:mod:`repro.sim.snapshot` claims that a restored simulation is
indistinguishable from one that never stopped.  This module is the
proof harness, the snapshot counterpart of
:mod:`repro.verify.backend_diff`: each resume point runs the same
seeded workload twice —

* **reference**: N cycles straight through;
* **resumed**: N/2 cycles, snapshot, pickle round-trip (simulating a
  process boundary), restore, remaining N/2 cycles —

and compares everything observable with the same fingerprints the
backend diff uses: the full message log message by message, arrivals,
checksum failures, attempt-failure tallies, telemetry metrics,
applied-fault histories, oracle verdicts and the final engine cycle.
The *original* simulation also keeps running after the capture and is
held to the same fingerprint, proving the capture itself perturbs
nothing.

The same four workload families as the backend diff are covered —
``scenario`` (random topology under the conformance oracle),
``traffic`` (figure-1 network, seeded open-ended traffic, metrics
hub), ``faults`` (traffic plus static/scheduled/reverted/transient
faults) and ``chaos`` (a self-healing soak, resumed from its on-disk
snapshot ring via :func:`~repro.harness.chaos.resume_chaos_point`) —
and every restore is exercised **across backends** too: a snapshot
captured under the dense reference engine must resume byte-identically
under the event-driven engine and vice versa.

Comparisons are structural (field-by-field ``==``), never pickle-bytes
equality: objects that rode a snapshot carry non-interned strings, so
re-pickling a resumed result encodes the same values with different
memoization — a serialization artifact, not a behavioural difference.

Every resume point is a pure function of ``(kind, seed, backend,
restore_backend)``, so sweeps are reproducible and fan out across a
:class:`~repro.harness.parallel.TrialRunner` worker pool.
"""

import pickle
import random
import tempfile
from collections import namedtuple

from repro.core.random_source import derive_seed
from repro.harness.parallel import TrialRunner, TrialSpec
from repro.sim.snapshot import restore_network, snapshot_network
from repro.verify.backend_diff import (
    DEFAULT_KINDS,
    _build_traffic,
    _compare,
    _traffic_fingerprint,
)

#: (capture backend, restore backend) pairs swept by default: both
#: same-backend resumes plus both cross-backend directions.
DEFAULT_PAIRS = (
    ("reference", "reference"),
    ("events", "events"),
    ("reference", "events"),
    ("events", "reference"),
)

#: Outcome of one resume point.  ``mismatches`` is a list of
#: human-readable field descriptions (empty when the resumed run is
#: indistinguishable from the uninterrupted one).
ResumeReport = namedtuple(
    "ResumeReport",
    ["kind", "seed", "backend", "restore_backend", "ok", "mismatches"],
)


def _roundtrip(snap):
    """Pickle the snapshot and load it back — the process boundary a
    real checkpoint crosses (worker hand-off, host restart)."""
    return pickle.loads(pickle.dumps(snap, protocol=pickle.HIGHEST_PROTOCOL))


def _run_spans(network, cycles):
    """Run ``cycles`` cycles in several run() calls, like the backend
    diff does: run boundaries must be transparent, so the reference and
    resumed runs deliberately use *different* boundaries."""
    remaining = cycles
    while remaining > 0:
        span = min(remaining, max(1, cycles // 3))
        network.run(span)
        remaining -= span


# ---------------------------------------------------------------------------
# Workload families
# ---------------------------------------------------------------------------

_TRAFFIC_CYCLES = 2400


def _resume_traffic(seed, backend, restore_backend, with_faults):
    mismatches = []
    # Uninterrupted reference.
    network, telemetry, injector = _build_traffic(
        seed, backend, _TRAFFIC_CYCLES, with_faults
    )
    _run_spans(network, _TRAFFIC_CYCLES)
    reference = _traffic_fingerprint(network, telemetry, injector)

    # Same workload, snapshotted at the midpoint.  The original keeps
    # running after the capture and must match the reference exactly —
    # capture is observation, not perturbation.
    network, telemetry, injector = _build_traffic(
        seed, backend, _TRAFFIC_CYCLES, with_faults
    )
    split = _TRAFFIC_CYCLES // 2
    _run_spans(network, split)
    snap = _roundtrip(
        snapshot_network(
            network, extras={"telemetry": telemetry, "injector": injector}
        )
    )
    _run_spans(network, _TRAFFIC_CYCLES - split)
    original = _traffic_fingerprint(network, telemetry, injector)
    _compare((reference, original), mismatches, prefix="original:")

    # The restored copy finishes the run, possibly on the other backend.
    restored = restore_network(snap, backend=restore_backend)
    _run_spans(restored.network, _TRAFFIC_CYCLES - split)
    resumed = _traffic_fingerprint(
        restored.network,
        restored.extras["telemetry"],
        restored.extras["injector"],
    )
    _compare((reference, resumed), mismatches, prefix="resumed:")
    return mismatches


def _start_scenario(scenario, backend):
    from repro.endpoint.messages import Message
    from repro.verify.oracle import attach_oracle

    network = scenario.build(backend=backend, verify_stage_checksums=True)
    oracle = attach_oracle(network)
    sent = [
        network.send(
            m["src"], Message(dest=m["dest"], payload=list(m["payload"]))
        )
        for m in scenario.messages
    ]
    return network, oracle, sent


def _finish_scenario(network, oracle, sent, max_cycles=50000):
    quiet = network.run_until_quiet(max_cycles=max_cycles)
    if quiet:
        oracle.check_quiescent(network.engine.cycle)
    # No final-cycle field: an uninterrupted run stops at the first
    # quiet cycle, while a resume whose split lands after quiescence
    # legitimately ends later.  Everything below is settled by
    # quiescence and cycle-stamped at the event, so it still pins exact
    # trajectories.
    return {
        "quiet": quiet,
        "outcomes": [m.outcome for m in sent],
        "attempts": [m.attempts for m in sent],
        "start_cycles": [m.start_cycle for m in sent],
        "done_cycles": [m.done_cycle for m in sent],
        "arrivals": [entry[0] for entry in network.log.receiver_arrivals],
        "checksum_failures": network.log.receiver_checksum_failures,
        "violations": [
            (v.cycle, v.router, v.port, v.rule, v.detail)
            for v in oracle.violations
        ],
    }


def _resume_scenario(seed, backend, restore_backend):
    from repro.verify.scenario import random_scenario

    rng = random.Random(derive_seed(seed, "resume-diff", "scenario"))
    scenario = random_scenario(
        seed=rng.getrandbits(24), n_messages=rng.randrange(2, 5)
    )
    # A small random split lands mid-flight: words in channel pipelines,
    # circuits locked, retries pending.
    split = rng.randrange(3, 25)
    mismatches = []

    reference = _finish_scenario(*_start_scenario(scenario, backend))

    network, oracle, sent = _start_scenario(scenario, backend)
    network.run(split)
    snap = _roundtrip(
        snapshot_network(network, extras={"oracle": oracle, "sent": sent})
    )
    original = _finish_scenario(network, oracle, sent)
    _compare((reference, original), mismatches, prefix="original:")

    restored = restore_network(snap, backend=restore_backend)
    resumed = _finish_scenario(
        restored.network,
        restored.extras["oracle"],
        restored.extras["sent"],
    )
    _compare((reference, resumed), mismatches, prefix="resumed:")
    return mismatches


def _chaos_fingerprint(result):
    return {
        "windows": list(result.windows),
        "availability": result.availability,
        "undeliverable": result.undeliverable,
        "attempt_failures": dict(result.attempt_failures),
        "fault_events": list(result.fault_events),
        "mask_events": list(result.mask_events),
        "repairs": list(result.repairs),
        "evidence_count": result.evidence_count,
        "oracle_violations": result.oracle_violations,
    }


def _resume_chaos(seed, backend, restore_backend):
    from repro.harness.chaos import resume_chaos_point, run_chaos_point

    kwargs = dict(
        seed=derive_seed(seed, "resume-diff", "chaos"),
        n_windows=10,
        window_cycles=300,
        warmup_windows=3,
    )
    mismatches = []
    reference = _chaos_fingerprint(run_chaos_point(backend=backend, **kwargs))
    with tempfile.TemporaryDirectory() as ring:
        # The ring-writing soak must score identically to the plain one
        # (writing a checkpoint is observation, not perturbation) ...
        ringed = _chaos_fingerprint(
            run_chaos_point(
                backend=backend,
                snapshot_every=3,
                snapshot_dir=ring,
                **kwargs
            )
        )
        _compare((reference, ringed), mismatches, prefix="ringed:")
        # ... and resuming from its newest on-disk snapshot (a
        # simulated host restart) must land on the same verdicts.
        resumed = _chaos_fingerprint(
            resume_chaos_point(ring, backend=restore_backend)
        )
        _compare((reference, resumed), mismatches, prefix="resumed:")
    return mismatches


_KIND_RUNNERS = {
    "scenario": _resume_scenario,
    "traffic": lambda seed, b, rb: _resume_traffic(seed, b, rb, False),
    "faults": lambda seed, b, rb: _resume_traffic(seed, b, rb, True),
    "chaos": _resume_chaos,
}


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def resume_point(kind, seed, backend="reference", restore_backend=None):
    """Run one resume trial; returns a :class:`ResumeReport`.

    ``restore_backend`` None restores under the capture backend.
    """
    try:
        runner = _KIND_RUNNERS[kind]
    except KeyError:
        raise ValueError(
            "unknown resume kind {!r} (choices: {})".format(
                kind, ", ".join(sorted(_KIND_RUNNERS))
            )
        )
    if restore_backend is None:
        restore_backend = backend
    mismatches = runner(seed, backend, restore_backend)
    return ResumeReport(
        kind=kind,
        seed=seed,
        backend=backend,
        restore_backend=restore_backend,
        ok=not mismatches,
        mismatches=mismatches,
    )


def run_resume_trial(seed=0, kind="scenario", backend="reference", restore_backend=None):
    """:class:`TrialSpec` runner wrapper around :func:`resume_point`."""
    return resume_point(
        kind, seed, backend=backend, restore_backend=restore_backend
    )


def resume_diff_specs(
    n_trials=16, seed=0, kinds=DEFAULT_KINDS, pairs=DEFAULT_PAIRS
):
    """``n_trials`` resume trials crossing workload kinds with backend
    pairs.

    Kinds cycle with the trial index and pairs cycle once per full pass
    over the kinds, so 16 trials cover the full 4x4 (kind, capture
    backend, restore backend) matrix.  Each trial's seed derives from
    the root seed and its index, making the set a pure function of its
    arguments.
    """
    specs = []
    for index in range(n_trials):
        kind = kinds[index % len(kinds)]
        backend, restore_backend = pairs[(index // len(kinds)) % len(pairs)]
        trial_seed = derive_seed(seed, "resume-diff", index)
        specs.append(
            TrialSpec(
                runner="repro.verify.resume_diff:run_resume_trial",
                params=dict(
                    kind=kind,
                    backend=backend,
                    restore_backend=restore_backend,
                ),
                seed=trial_seed,
                label="{}[{}] {}->{}".format(
                    kind, index, backend, restore_backend
                ),
            )
        )
    return specs


def resume_sweep(
    n_trials=16,
    seed=0,
    kinds=DEFAULT_KINDS,
    pairs=DEFAULT_PAIRS,
    workers=1,
    cache_dir=None,
    progress=None,
    runner=None,
):
    """Run ``n_trials`` resume trials; returns the reports.

    Each trial is self-contained, so ``workers`` > 1 fans them out
    across a process pool without changing any report.
    """
    specs = resume_diff_specs(
        n_trials=n_trials, seed=seed, kinds=kinds, pairs=pairs
    )
    if runner is None:
        runner = TrialRunner(workers=workers, cache_dir=cache_dir, progress=progress)
    return runner.run(specs)


def resume_failures(reports):
    """The subset of reports where resume was not transparent."""
    return [report for report in reports if not report.ok]
