"""The online conformance oracle: protocol invariants, every cycle.

The oracle is a :class:`~repro.sim.component.Component` registered
*after* every router and endpoint, so its ``tick`` observes each
cycle's complete post-tick state: router FSMs and allocator bits have
already updated, and the words the routers staged onto their channels
this cycle are still visible (channels advance only after all
components tick).  From that vantage point it checks the invariants the
paper's reliability story rests on:

* **Locked circuits** — the allocator's IN-USE bits, the router's
  backward-owner table and each connection's claimed backward port
  form a consistent bijection, and no DATA word is ever staged onto a
  backward channel whose port is unowned (Section 4).
* **Stochastic routing stays in its dilation group** — an allocated
  backward port always belongs to the group of the requested logical
  direction (Section 4, self-routing).
* **Pipelined TURN reversal** — a pending reversal injects the
  router's STATUS word within the pipelined bound, and a reversal
  never silently skips its STATUS (Section 5.1).
* **Checksums match streamed payloads** — the oracle keeps its own
  shadow CRC over the DATA words each connection actually puts on the
  wire and compares it against the checksum the router reports in its
  STATUS word (Section 4).
* **BCB path reclamation frees what it traversed** — covered by the
  ownership bijection: a connection torn down by a backward-control
  bit that leaves its port claimed is flagged the same cycle.
* **Half-duplex discipline** — the channels' own monitors feed the
  oracle, so simultaneous bidirectional DATA is reported with a cycle.
* **Cascade IN-USE agreement** — :func:`attach_cascade_oracle` hooks
  the width-cascading consistency check so wired-AND disagreements
  between slices become oracle violations too (Section 5.1).
* **Masked ports carry no data** — once a port is disabled (a scan
  repair masking a faulty region), no DATA word may be staged onto it;
  only the scan subsystem's Off Port Drive test mode is exempt
  (Section 5.1, Scan Support).

Violations are collected (never raised mid-simulation) so a test can
run to quiescence and then report every offense at once with its
cycle, router and port; :meth:`Oracle.assert_clean` raises
:class:`OracleViolationError` with the full list.
"""

from repro.core import words as W
from repro.core.router import (
    FORWARD_STATE,
    IDLE_STATE,
    REVERSED_STATE,
)
from repro.endpoint.interface import _RX_IDLE
from repro.sim.component import Component

# Rule identifiers carried by Violation records.
RULE_OWNERSHIP = "ownership"
RULE_UNLOCKED_DATA = "data-on-unlocked-channel"
RULE_DIRECTION = "wrong-dilation-group"
RULE_STATUS_CHECKSUM = "status-checksum-mismatch"
RULE_MISSING_STATUS = "missing-status"
RULE_TURN_STALL = "turn-stall"
RULE_HALF_DUPLEX = "half-duplex"
RULE_CASCADE_INUSE = "cascade-inuse-mismatch"
RULE_LEAK = "quiescence-leak"
RULE_MASKED_PORT = "data-on-masked-port"
RULE_BCB_IGNORED = "bcb-ignored"


class Violation:
    """One protocol violation: where, when, which rule, and why."""

    __slots__ = ("cycle", "router", "port", "rule", "detail")

    def __init__(self, cycle, router, port, rule, detail):
        self.cycle = cycle
        self.router = router
        self.port = port
        self.rule = rule
        self.detail = detail

    def __repr__(self):
        return "<Violation @{} {} port={} {}: {}>".format(
            self.cycle, self.router, self.port, self.rule, self.detail
        )


class OracleViolationError(AssertionError):
    """Raised by :meth:`Oracle.assert_clean` when violations were seen."""

    def __init__(self, violations):
        self.violations = list(violations)
        lines = ["{} protocol violation(s):".format(len(self.violations))]
        lines.extend("  {!r}".format(v) for v in self.violations[:20])
        if len(self.violations) > 20:
            lines.append("  ... and {} more".format(len(self.violations) - 20))
        super().__init__("\n".join(lines))


class _ConnTrack:
    """Oracle-side shadow state for one router connection.

    Holds a strong reference to the connection object: while the entry
    lives, the object's id cannot be recycled, so identity-keyed
    lookups are unambiguous.
    """

    __slots__ = ("conn", "shadow", "count", "prev_pending", "stall")

    def __init__(self, conn):
        self.conn = conn
        self.shadow = W.Checksum()
        self.count = 0
        self.prev_pending = conn.status_pending
        self.stall = 0


class Oracle(Component):
    """Per-cycle conformance checker over a set of routers.

    :param routers: the routers to watch (usually every live router in
        a network; dead routers are skipped each cycle).
    :param channels: optional iterable of channels whose half-duplex
        monitors the oracle should watch.
    :param turn_stall_bound: consecutive post-tick cycles a reversal's
        STATUS injection may stay pending.  The implementation emits
        STATUS on the first service tick after a reversal, so the bound
        is 2 observed cycles; raise it only for experimental routers.
    :param max_violations: stop recording (not checking) beyond this
        many violations, keeping pathological runs bounded.
    """

    name = "oracle"

    def __init__(
        self,
        routers,
        channels=None,
        endpoints=None,
        turn_stall_bound=2,
        max_violations=1000,
    ):
        self.routers = list(routers)
        self.channels = list(channels) if channels is not None else []
        self.endpoints = list(endpoints) if endpoints is not None else []
        self.turn_stall_bound = turn_stall_bound
        self.max_violations = max_violations
        self.violations = []
        self.cycles_checked = 0
        self._tracks = {}  # (router_name, id(conn)) -> _ConnTrack
        self._half_duplex_seen = {id(ch): 0 for ch in self.channels}
        # (router_name, q) -> (owner, state, words_forwarded) at the
        # previous observed tick: the pre-tick ownership a BCB pulse at
        # a backward-channel head was addressed to (see _check_router).
        self._bcb_shadow = {}

    # ------------------------------------------------------------------
    # Pickling (snapshot support)
    # ------------------------------------------------------------------

    def __getstate__(self):
        # ``id()`` keys are process-local: carry the identity-keyed
        # maps positionally (half-duplex counts follow ``channels``
        # order; each track already holds its connection) and re-key
        # them against the restored objects, so an oracle riding an
        # engine snapshot keeps its mid-circuit shadow state instead of
        # silently resetting it.
        state = dict(self.__dict__)
        state["_half_duplex_seen"] = [
            self._half_duplex_seen.get(id(ch), 0) for ch in self.channels
        ]
        state["_tracks"] = [
            (key[0], track) for key, track in self._tracks.items()
        ]
        return state

    def __setstate__(self, state):
        half = state.pop("_half_duplex_seen")
        tracks = state.pop("_tracks")
        self.__dict__.update(state)
        self._half_duplex_seen = {
            id(ch): seen for ch, seen in zip(self.channels, half)
        }
        self._tracks = {
            (name, id(track.conn)): track for name, track in tracks
        }
        # Snapshots written before the BCB rule / endpoint quiescence
        # checks existed restore clean.
        self.__dict__.setdefault("_bcb_shadow", {})
        self.__dict__.setdefault("endpoints", [])

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    @property
    def ok(self):
        return not self.violations

    def violation_rules(self):
        """The distinct rule identifiers violated so far."""
        return sorted({v.rule for v in self.violations})

    def assert_clean(self):
        """Raise :class:`OracleViolationError` unless no violations."""
        if self.violations:
            raise OracleViolationError(self.violations)

    def _violate(self, cycle, router_name, port, rule, detail):
        if len(self.violations) < self.max_violations:
            self.violations.append(
                Violation(cycle, router_name, port, rule, detail)
            )

    # ------------------------------------------------------------------
    # Per-cycle checking
    # ------------------------------------------------------------------

    def tick(self, cycle):
        self.cycles_checked += 1
        for router in self.routers:
            if router.dead:
                continue
            self._check_router(router, cycle)
        for channel in self.channels:
            seen = self._half_duplex_seen[id(channel)]
            now = channel.half_duplex_violations
            if now > seen:
                self._violate(
                    cycle,
                    channel.name,
                    None,
                    RULE_HALF_DUPLEX,
                    "{} simultaneous bidirectional DATA cycle(s)".format(
                        now - seen
                    ),
                )
                self._half_duplex_seen[id(channel)] = now

    def _check_router(self, router, cycle):
        allocator = router.allocator
        config = router.config
        owners = router._bwd_owner
        live = {id(conn) for conn in router._conns}
        live.update(id(conn) for conn in router._draining)

        # --- backward side: allocator/owner agreement, locked channels
        shadow = self._bcb_shadow
        for q, owner in enumerate(owners):
            # Fast-reclamation conformance: the oracle observes the
            # post-tick, pre-advance state, so a BCB pulse still at the
            # head of a backward-control pipe was presented to this
            # router *this* cycle, and servicing it is unconditional at
            # tick top (Section 3.3): the addressed connection is torn
            # down and its port released before any port handling runs.
            # If the pre-tick owner (last tick's shadow) still owns the
            # port with its FSM and forward-count unchanged, the router
            # ignored the pulse.  A serviced-then-reallocated port does
            # not match: the reused connection restarts in a fresh
            # state with its word counter rewound.
            end = router.backward_ends[q]
            if end is not None and end.recv_bcb() is not None:
                prev = shadow.get((router.name, q))
                if prev is not None and prev[0] is not None:
                    prev_owner, prev_state, prev_words = prev
                    if (
                        owner is prev_owner
                        and owner.bwd_port == q
                        and owner.state == prev_state
                        and owner.words_forwarded >= prev_words
                    ):
                        self._violate(
                            cycle,
                            router.name,
                            q,
                            RULE_BCB_IGNORED,
                            "BCB reclamation pulse presented this cycle "
                            "but the owning connection (fwd port {}, "
                            "state {!r}) was not torn down".format(
                                owner.fwd_port, owner.state
                            ),
                        )
            shadow[(router.name, q)] = (
                owner,
                None if owner is None else owner.state,
                0 if owner is None else owner.words_forwarded,
            )
            if owner is not None and id(owner) not in live:
                self._violate(
                    cycle,
                    router.name,
                    q,
                    RULE_OWNERSHIP,
                    "port owned by a connection the router no longer "
                    "tracks (leaked by teardown)",
                )
            if allocator.in_use(q) != (owner is not None):
                self._violate(
                    cycle,
                    router.name,
                    q,
                    RULE_OWNERSHIP,
                    "allocator IN-USE={} but owner table says {}".format(
                        allocator.in_use(q),
                        "owned" if owner is not None else "free",
                    ),
                )
            if owner is not None and owner.bwd_port != q:
                self._violate(
                    cycle,
                    router.name,
                    q,
                    RULE_OWNERSHIP,
                    "owner (fwd port {}) no longer claims this port "
                    "(claims {})".format(owner.fwd_port, owner.bwd_port),
                )
            end = router.backward_ends[q]
            if end is not None:
                port_id = config.backward_port_id(q)
                staged = end._tx.staged
                if staged is not None and staged.kind == W.DATA:
                    if not config.port_enabled[port_id]:
                        # A masked port must carry no traffic; only the
                        # scan subsystem's Off Port Drive option (Table
                        # 2) may deliberately push test words out of it.
                        if not config.off_port_drive[port_id]:
                            self._violate(
                                cycle,
                                router.name,
                                q,
                                RULE_MASKED_PORT,
                                "DATA staged on masked (disabled) port: "
                                "{!r}".format(staged),
                            )
                    elif owner is None:
                        self._violate(
                            cycle,
                            router.name,
                            q,
                            RULE_UNLOCKED_DATA,
                            "DATA staged on unowned backward port: "
                            "{!r}".format(staged),
                        )

        # --- forward side: per-connection invariants and shadows
        for conn in router._conns:
            self._check_conn(router, conn, cycle, draining=False)
        for conn in router._draining:
            self._check_conn(router, conn, cycle, draining=True)
        name = router.name
        stale = [
            key
            for key in self._tracks
            if key[0] == name and key[1] not in live
        ]
        for key in stale:
            del self._tracks[key]

    def _track_for(self, router, conn):
        key = (router.name, id(conn))
        track = self._tracks.get(key)
        if track is None or track.conn is not conn:
            track = _ConnTrack(conn)
            self._tracks[key] = track
        return track

    def _check_conn(self, router, conn, cycle, draining):
        track = self._track_for(router, conn)
        state = conn.state

        # A connection's claimed port must be the one the router and
        # allocator think it owns, inside the right dilation group.
        if conn.bwd_port is not None:
            q = conn.bwd_port
            if router._bwd_owner[q] is not conn:
                self._violate(
                    cycle,
                    router.name,
                    q,
                    RULE_OWNERSHIP,
                    "connection (fwd port {}) claims a backward port "
                    "it does not own".format(conn.fwd_port),
                )
            if conn.direction is not None:
                group = router.config.backward_group(conn.direction)
                if q not in group:
                    self._violate(
                        cycle,
                        router.name,
                        q,
                        RULE_DIRECTION,
                        "port outside dilation group {} of requested "
                        "direction {}".format(group, conn.direction),
                    )

        # Outside the established states the router has reset (or never
        # started) its per-connection accumulators; mirror that, so a
        # reused connection object starts its next circuit with a fresh
        # shadow.  Draining connections keep flushing words that will
        # never be checksummed, so their shadow is simply dropped.
        if state not in (FORWARD_STATE, REVERSED_STATE) or draining:
            track.shadow.reset()
            track.count = 0
            track.stall = 0
            track.prev_pending = conn.status_pending
            return

        # Shadow-checksum the words this connection stages on the wire,
        # and verify the router's own STATUS word when it appears.
        out_end = None
        if state == FORWARD_STATE and conn.bwd_port is not None:
            out_end = router.backward_ends[conn.bwd_port]
        elif state == REVERSED_STATE:
            out_end = router.forward_ends[conn.fwd_port]
        saw_own_status = False
        if out_end is not None:
            staged = out_end._tx.staged
            if staged is not None:
                if staged.kind == W.DATA:
                    track.shadow.update(staged.value)
                    track.count += 1
                elif (
                    staged.kind == W.STATUS
                    and staged.value.router_name == router.name
                    and not staged.value.blocked
                ):
                    saw_own_status = True
                    status = staged.value
                    if (
                        status.checksum != track.shadow.value
                        or status.words_forwarded != track.count
                    ):
                        self._violate(
                            cycle,
                            router.name,
                            conn.fwd_port,
                            RULE_STATUS_CHECKSUM,
                            "STATUS reports cksum={:#04x} n={} but wire "
                            "carried cksum={:#04x} n={}".format(
                                status.checksum,
                                status.words_forwarded,
                                track.shadow.value,
                                track.count,
                            ),
                        )
                    track.shadow.reset()
                    track.count = 0

        # Pipelined TURN reversal: the STATUS either appears promptly
        # (stall bound) or, if pending quietly vanished while the
        # connection stayed established, was skipped outright.
        if (
            track.prev_pending
            and not conn.status_pending
            and state in (FORWARD_STATE, REVERSED_STATE)
            and not saw_own_status
        ):
            self._violate(
                cycle,
                router.name,
                conn.fwd_port,
                RULE_MISSING_STATUS,
                "reversal completed without injecting a STATUS word",
            )
        if conn.status_pending:
            track.stall += 1
            if track.stall == self.turn_stall_bound + 1:
                self._violate(
                    cycle,
                    router.name,
                    conn.fwd_port,
                    RULE_TURN_STALL,
                    "STATUS injection pending for more than {} "
                    "cycles after a reversal".format(self.turn_stall_bound),
                )
        else:
            track.stall = 0
        track.prev_pending = conn.status_pending

    # ------------------------------------------------------------------
    # End-of-run checks
    # ------------------------------------------------------------------

    def check_quiescent(self, cycle=None):
        """Record leaks on a network that should be fully drained.

        Call after traffic stops and the network reports quiet: any
        busy backward port or non-idle connection FSM on a live router
        is a resource leak, and so is an endpoint send or receive FSM
        still mid-protocol (METRO's statelessness claim, Section 2).
        Calling it on a network that *failed* to quiesce inventories
        what is stuck, for the same rule.  Returns the violations
        recorded by this check.
        """
        found = []
        for router in self.routers:
            if router.dead:
                continue
            for q in router.busy_backward_ports():
                found.append(
                    Violation(
                        cycle,
                        router.name,
                        q,
                        RULE_LEAK,
                        "backward port still claimed after drain",
                    )
                )
            for conn in router._conns:
                if conn.state != IDLE_STATE:
                    found.append(
                        Violation(
                            cycle,
                            router.name,
                            conn.fwd_port,
                            RULE_LEAK,
                            "connection FSM stuck in {!r}".format(conn.state),
                        )
                    )
        for endpoint in self.endpoints:
            if getattr(endpoint, "dead", False):
                continue
            for port, send in sorted(endpoint._sends.items()):
                found.append(
                    Violation(
                        cycle,
                        endpoint.name,
                        port,
                        RULE_LEAK,
                        "send FSM stuck in {!r}".format(send.phase),
                    )
                )
            if endpoint._queue:
                found.append(
                    Violation(
                        cycle,
                        endpoint.name,
                        None,
                        RULE_LEAK,
                        "{} message(s) still queued".format(
                            len(endpoint._queue)
                        ),
                    )
                )
            for port, state in enumerate(endpoint._recv_states):
                if state.phase != _RX_IDLE:
                    found.append(
                        Violation(
                            cycle,
                            endpoint.name,
                            port,
                            RULE_LEAK,
                            "receive FSM stuck in {!r}".format(state.phase),
                        )
                    )
        for violation in found:
            if len(self.violations) < self.max_violations:
                self.violations.append(violation)
        return found


def attach_oracle(network, **kwargs):
    """Attach a conformance oracle to a built network; returns it.

    The oracle is registered as an engine *observer*, so each of its
    ticks observes the post-tick state of every router plus the words
    staged this cycle — even by components (traffic sources, fault
    hooks) registered after the oracle was attached.
    """
    oracle = Oracle(
        list(network.all_routers()),
        channels=list(network.channels.values()),
        endpoints=list(network.endpoints),
        **kwargs
    )
    network.engine.add_observer(oracle)
    return oracle


class CascadeOracle:
    """Oracles over every slice of a cascaded network, plus the
    wired-AND IN-USE consistency check between them."""

    def __init__(self, cascaded, slice_oracles):
        self.cascaded = cascaded
        self.slice_oracles = slice_oracles
        self.cascade_violations = []
        cascaded.consistency_observer = self._on_mismatch

    def _on_mismatch(self, router_key, port, owners):
        self.cascade_violations.append(
            Violation(
                self.cascaded.slices[0].engine.cycle,
                "r{}.{}.{}".format(*router_key),
                port,
                RULE_CASCADE_INUSE,
                "slices disagree on IN-USE owner: {}".format(owners),
            )
        )

    @property
    def violations(self):
        merged = list(self.cascade_violations)
        for oracle in self.slice_oracles:
            merged.extend(oracle.violations)
        return merged

    @property
    def ok(self):
        return not self.violations

    def assert_clean(self):
        if self.violations:
            raise OracleViolationError(self.violations)


def attach_cascade_oracle(cascaded, **kwargs):
    """Attach per-slice oracles plus the cross-slice IN-USE check."""
    return CascadeOracle(
        cascaded, [attach_oracle(net, **kwargs) for net in cascaded.slices]
    )
