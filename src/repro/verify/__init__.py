"""Verification tooling: conformance oracle, differential tester, shrinker.

Three independent checks on the simulator's faithfulness to the METRO
protocol (paper, Sections 4-5):

* :mod:`repro.verify.oracle` — an online conformance checker attached
  to the simulation engine, validating protocol invariants on every
  clock cycle (locked circuits, pipelined TURN reversal, per-router
  STATUS checksums, BCB path reclamation, cascade IN-USE agreement).
* :mod:`repro.verify.differential` — randomized network configurations
  run through both the cycle-accurate simulator and the Table 4
  latency equations, asserting exact agreement.
* :mod:`repro.verify.shrink` — delta debugging for failing scenarios:
  reduces a failing configuration or message plan to a minimal
  reproduction worth committing to the test suite.

Two differential proof harnesses build on those checks:

* :mod:`repro.verify.backend_diff` — byte-identical equivalence
  between the dense reference engine and the event-driven backend.
* :mod:`repro.verify.resume_diff` — byte-identical transparency of
  engine snapshot/restore (:mod:`repro.sim.snapshot`), including
  cross-backend restores, over the same workload families.
"""

from repro.verify.oracle import (
    CascadeOracle,
    Oracle,
    OracleViolationError,
    Violation,
    attach_cascade_oracle,
    attach_oracle,
)
from repro.verify.resume_diff import (
    ResumeReport,
    resume_failures,
    resume_point,
    resume_sweep,
)

__all__ = [
    "CascadeOracle",
    "Oracle",
    "OracleViolationError",
    "ResumeReport",
    "Violation",
    "attach_cascade_oracle",
    "attach_oracle",
    "resume_failures",
    "resume_point",
    "resume_sweep",
]
