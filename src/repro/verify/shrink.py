"""Delta-debugging shrinker for failing verification scenarios.

A randomized scenario that fails — oracle violations, lost messages, a
differential mismatch — is rarely minimal: it carries more messages,
longer payloads and a bigger network than the bug needs.  This module
reduces it to a *minimal committed reproduction*:

1. **ddmin over the message plan** — the classic delta-debugging
   algorithm drops subsets of messages while the failure persists;
2. **payload shortening** — each surviving message's payload is cut
   (halving, then single words) and its values canonicalized to zero;
3. **dimension reduction** — greedy passes shrink the network itself
   (fewer stages, smaller radix, dilation 1, shallower pipelines,
   shorter links, simpler header mode) to a fixpoint.

Failure identity: each candidate must reproduce at least one of the
original failure's tags (oracle rule ids, undelivered outcomes,
non-quiescence), so shrinking cannot wander onto an unrelated bug.

Used programmatically by the tests and from the CLI as
``repro verify --shrink`` (which saves the reduced scenario as a JSON
artifact to re-run with ``repro verify --replay``).
"""

from repro.endpoint.messages import DELIVERED
from repro.verify.scenario import Scenario


def failure_signature(result):
    """The set of failure tags shown by a :class:`ScenarioResult`.

    Empty means the run was clean.  Tags are stable across runs of the
    same scenario (the simulator is deterministic), which is what makes
    them usable as a shrinking invariant.
    """
    tags = set()
    for rule in result.violation_rules():
        tags.add("rule:" + rule)
    for outcome in result.outcomes:
        if outcome != DELIVERED:
            tags.add("outcome:{}".format(outcome))
    if not result.quiet:
        tags.add("not-quiet")
    if result.checksum_failures:
        tags.add("rx-checksum")
    return frozenset(tags)


class ShrinkResult:
    """Outcome of one shrink: the minimal scenario and its pedigree."""

    __slots__ = ("original", "minimal", "signature", "tests_run")

    def __init__(self, original, minimal, signature, tests_run):
        self.original = original
        self.minimal = minimal
        self.signature = signature
        self.tests_run = tests_run

    def __repr__(self):
        return "<ShrinkResult {} -> {} msgs, {} tests, {}>".format(
            len(self.original.messages),
            len(self.minimal.messages),
            self.tests_run,
            sorted(self.signature),
        )


class Shrinker:
    """Reduces failing scenarios while preserving their failure.

    :param max_cycles: simulation budget per candidate run.
    :param run: optional override ``f(scenario) -> ScenarioResult``
        (the differential tester passes a runner that also checks the
        latency model, so model mismatches shrink too).
    """

    def __init__(self, max_cycles=50000, run=None):
        self.max_cycles = max_cycles
        self._run = run
        self.tests_run = 0

    def _result(self, scenario):
        self.tests_run += 1
        if self._run is not None:
            return self._run(scenario)
        return scenario.run(max_cycles=self.max_cycles)

    def signature(self, scenario):
        return failure_signature(self._result(scenario))

    def shrink(self, scenario):
        """Shrink ``scenario`` to a minimal failing reproduction.

        :raises ValueError: when the scenario does not fail at all
            (there is nothing to preserve).
        """
        original_signature = self.signature(scenario)
        if not original_signature:
            raise ValueError("scenario passes; nothing to shrink")

        def still_fails(candidate):
            # Reproducing any one of the original tags keeps the
            # reduction on the same bug.
            return bool(self.signature(candidate) & original_signature)

        current = scenario
        current = self._shrink_messages(current, still_fails)
        current = self._shrink_payloads(current, still_fails)
        current = self._shrink_dimensions(current, still_fails)
        # Smaller networks may enable further message/payload cuts.
        current = self._shrink_messages(current, still_fails)
        current = self._shrink_payloads(current, still_fails)
        return ShrinkResult(
            scenario, current, self.signature(current), self.tests_run
        )

    # ------------------------------------------------------------------
    # Phase 1: ddmin over the message list
    # ------------------------------------------------------------------

    def _shrink_messages(self, scenario, still_fails):
        messages = list(scenario.messages)
        if len(messages) < 2:
            return scenario

        def test(subset):
            return still_fails(self._with_messages(scenario, subset))

        minimal = _ddmin(messages, test)
        return self._with_messages(scenario, minimal)

    @staticmethod
    def _with_messages(scenario, messages):
        data = scenario.as_dict()
        data["messages"] = [dict(m) for m in messages]
        return Scenario.from_dict(data)

    # ------------------------------------------------------------------
    # Phase 2: shorter, canonical payloads
    # ------------------------------------------------------------------

    def _shrink_payloads(self, scenario, still_fails):
        current = scenario
        for index in range(len(current.messages)):
            payload = list(current.messages[index]["payload"])
            for length in _shrinking_lengths(len(payload)):
                candidate = self._with_payload(current, index, payload[:length])
                if still_fails(candidate):
                    current = candidate
                    payload = payload[:length]
            zeroed = self._with_payload(current, index, [0] * len(payload))
            if payload != [0] * len(payload) and still_fails(zeroed):
                current = zeroed
        return current

    @staticmethod
    def _with_payload(scenario, index, payload):
        data = scenario.as_dict()
        data["messages"][index]["payload"] = list(payload)
        return Scenario.from_dict(data)

    # ------------------------------------------------------------------
    # Phase 3: smaller network dimensions
    # ------------------------------------------------------------------

    def _shrink_dimensions(self, scenario, still_fails):
        current = scenario
        progress = True
        while progress:
            progress = False
            for candidate in self._dimension_candidates(current):
                if still_fails(candidate):
                    current = candidate
                    progress = True
                    break
        return current

    def _dimension_candidates(self, scenario):
        """Single-step reductions, most drastic first."""
        data = scenario.as_dict()

        def variant(**changes):
            updated = dict(data)
            updated.update(changes)
            # Scenario.__init__ deep-copies messages, so neither the
            # original nor the candidate aliases the other's plan.
            candidate = Scenario.from_dict(updated)
            # Keep addresses inside the (possibly smaller) network.
            limit = candidate.n_endpoints
            for message in candidate.messages:
                message["src"] %= limit
                message["dest"] %= limit
            return candidate

        if scenario.n_stages > 1:
            yield variant(n_stages=scenario.n_stages - 1)
        if scenario.radix > 2:
            yield variant(radix=scenario.radix // 2)
        if scenario.dilation > 1:
            yield variant(dilation=scenario.dilation // 2)
        if scenario.dp > 1:
            yield variant(dp=scenario.dp - 1)
        if scenario.link_delay > 1:
            yield variant(link_delay=scenario.link_delay - 1)
        if scenario.hw > 0:
            yield variant(hw=scenario.hw - 1)
        if scenario.fast_reclaim:
            yield variant(fast_reclaim=False)
        if scenario.seed != 0:
            yield variant(seed=0)
        for index, message in enumerate(scenario.messages):
            if message["src"] != 0 or message["dest"] != 0:
                canonical = [dict(m) for m in scenario.messages]
                canonical[index] = dict(message, src=0, dest=0)
                yield variant(messages=canonical)


def _shrinking_lengths(length):
    """Candidate shorter payload lengths, halving down to one word."""
    lengths = []
    current = length // 2
    while current >= 1:
        lengths.append(current)
        current //= 2
    return lengths


def _ddmin(items, test):
    """Zeller's ddmin: a minimal failing subset of ``items``.

    ``test(subset)`` returns True while the failure reproduces.  The
    input list is assumed to fail as a whole.
    """
    n = 2
    while len(items) >= 2:
        chunk = max(1, len(items) // n)
        reduced = False
        for start in range(0, len(items), chunk):
            complement = items[:start] + items[start + chunk :]
            if complement and test(complement):
                items = complement
                n = max(n - 1, 2)
                reduced = True
                break
        if not reduced:
            if n >= len(items):
                break
            n = min(len(items), n * 2)
    if len(items) == 1:
        return items
    return items


def shrink_scenario(scenario, max_cycles=50000, run=None):
    """Convenience wrapper: shrink and return the ShrinkResult."""
    return Shrinker(max_cycles=max_cycles, run=run).shrink(scenario)
