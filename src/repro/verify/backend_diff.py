"""Differential equivalence proof between engine backends.

The event-driven backend (:mod:`repro.sim.backends`) claims to be a
drop-in replacement for the reference engine: not statistically
similar — *byte-identical*.  This module is the proof harness.  Each
diff point runs the same seeded workload once per backend and compares
everything observable:

* the full message log, message by message — source, destination,
  payload words, queue/start/completion cycles, attempt counts,
  outcomes, per-attempt failure causes, blocked stages and reply
  payloads;
* receiver-side arrivals, delivery counts and checksum failures;
* aggregate attempt-failure tallies;
* telemetry metrics snapshots (where the workload binds a hub);
* applied-fault transition histories (where faults are injected);
* oracle violations and quiescence (scenario workloads);
* the final engine cycle.

Four workload families cover the backend's behaviour space:

``scenario``
    A :func:`~repro.verify.scenario.random_scenario` (random topology,
    radix, dilation, datapath, link delay and message set) run under
    the conformance oracle until quiescent.
``traffic``
    A Figure 1 network under seeded open-ended traffic (uniform,
    hotspot or permutation — chosen by the seed) with a metrics-only
    telemetry hub bound.
``faults``
    The traffic workload plus static dead links/routers, scheduled
    mid-run faults with reverts, and transient (duty-cycled) faults.
``chaos``
    A full :func:`~repro.harness.chaos.run_chaos_point` soak with
    self-healing enabled, compared window by window.

Every diff is a pure function of ``(kind, seed)``, so sweeps are
reproducible and can fan out across a
:class:`~repro.harness.parallel.TrialRunner` worker pool (the report
is picklable).
"""

import difflib
import pprint
import random
from collections import namedtuple

from repro.core.random_source import derive_seed
from repro.endpoint.traffic import (
    HotspotTraffic,
    PermutationTraffic,
    UniformRandomTraffic,
)
from repro.harness.parallel import TrialRunner, TrialSpec

#: Workload families diffed by default, in sweep order.
DEFAULT_KINDS = ("scenario", "traffic", "faults", "chaos")

#: Outcome of one differential run.  ``mismatches`` is a list of
#: human-readable field descriptions (empty when the backends agree).
DiffReport = namedtuple("DiffReport", ["kind", "seed", "ok", "mismatches"])


def message_fingerprint(log):
    """Every observable fact about a message log, as plain tuples."""
    return {
        "messages": [
            (
                m.source,
                m.dest,
                tuple(m.payload),
                m.queued_cycle,
                m.start_cycle,
                m.done_cycle,
                m.attempts,
                m.outcome,
                tuple(m.failure_causes),
                tuple(m.blocked_stages),
                None if m.reply_payload is None else tuple(m.reply_payload),
            )
            for m in log.messages
        ],
        "receiver_deliveries": log.receiver_deliveries,
        "receiver_checksum_failures": log.receiver_checksum_failures,
        "receiver_arrivals": [tuple(entry) for entry in log.receiver_arrivals],
        "attempt_failures": dict(log.attempt_failures),
    }


#: Positions of the simulation cycle and the component id inside the
#: known sequence-valued fingerprint records (see
#: :func:`message_fingerprint` and the per-family fingerprints below).
_RECORD_FIELDS = {
    "messages": {"cycle": 3, "component": 0},  # queued_cycle, source
    "receiver_arrivals": {"cycle": 0},
    "applied": {"cycle": 0},
}


def _unified_diff(ref_value, other_value):
    """A unified diff of the two records' pretty-printed forms."""
    diff = difflib.unified_diff(
        pprint.pformat(ref_value, width=68).splitlines(),
        pprint.pformat(other_value, width=68).splitlines(),
        fromfile="reference",
        tofile="candidate",
        lineterm="",
    )
    return "\n".join(diff)


def _describe_key_divergence(prefix, key, ref_value, other_value):
    """One actionable description of how a fingerprint key diverged.

    For sequence-valued keys the description pinpoints the *first*
    divergent record — its index, the simulation cycle and the
    component id where the record carries them — followed by a unified
    diff of just that record pair.  Scalar and mapping keys get the
    unified diff of their whole values.
    """
    if isinstance(ref_value, list) and isinstance(other_value, list):
        limit = min(len(ref_value), len(other_value))
        index = limit
        for i in range(limit):
            if ref_value[i] != other_value[i]:
                index = i
                break
        ref_rec = ref_value[index] if index < len(ref_value) else "<absent>"
        other_rec = (
            other_value[index] if index < len(other_value) else "<absent>"
        )
        header = "{}{}: first divergence at record {} of {}/{}".format(
            prefix, key, index, len(ref_value), len(other_value)
        )
        fields = _RECORD_FIELDS.get(key, {})
        probe = ref_rec if ref_rec != "<absent>" else other_rec
        if isinstance(probe, tuple):
            position = fields.get("cycle")
            if position is not None and position < len(probe):
                header += ", cycle {}".format(probe[position])
            position = fields.get("component")
            if position is not None and position < len(probe):
                header += ", component {}".format(probe[position])
        return header + "\n" + _unified_diff(ref_rec, other_rec)
    return "{}{}:\n{}".format(
        prefix, key, _unified_diff(ref_value, other_value)
    )


def _compare(fingerprints, mismatches, prefix=""):
    """Append a description per differing key of two fingerprint dicts.

    Each description localizes the first divergence (record index,
    cycle and component id where available) and shows a unified diff
    of the divergent records, so an equivalence failure is actionable
    without re-running the trial under a debugger.
    """
    ref, other = fingerprints
    for key in ref:
        if ref[key] != other[key]:
            mismatches.append(
                _describe_key_divergence(prefix, key, ref[key], other[key])
            )


# ---------------------------------------------------------------------------
# Workload families
# ---------------------------------------------------------------------------


def _diff_scenario(seed, backend):
    from repro.verify.scenario import random_scenario

    rng = random.Random(derive_seed(seed, "backend-diff", "scenario"))
    scenario = random_scenario(
        seed=rng.getrandbits(24), n_messages=rng.randrange(1, 5)
    )
    mismatches = []
    results = [scenario.run(backend=be) for be in ("reference", backend)]
    fingerprints = [
        {
            "quiet": r.quiet,
            "outcomes": list(r.outcomes),
            "attempts": list(r.attempts),
            "start_cycles": list(r.start_cycles),
            "arrivals": list(r.arrivals),
            "checksum_failures": r.checksum_failures,
            "violations": list(r.violations),
        }
        for r in results
    ]
    _compare(fingerprints, mismatches)
    return mismatches


def _traffic_for(rng, network, seed):
    """A seeded traffic source: uniform, hotspot or permutation."""
    n = network.plan.n_endpoints
    w = network.codec.w
    words = rng.choice((4, 12, 20))
    rate = rng.choice((0.01, 0.02, 0.05))
    kind = rng.randrange(3)
    if kind == 0:
        return UniformRandomTraffic(n, w, rate=rate, message_words=words, seed=seed)
    if kind == 1:
        return HotspotTraffic(
            n,
            w,
            rate=rate,
            hotspot=rng.randrange(n),
            fraction=rng.choice((0.1, 0.3)),
            message_words=words,
            seed=seed,
        )
    return PermutationTraffic(
        n,
        w,
        rate=rate,
        permutation=rng.choice(("bit-reverse", "shift")),
        message_words=words,
        seed=seed,
    )


def _build_traffic(seed, backend, cycles, with_faults):
    """Build the traffic-family workload: a figure-1 network with a
    metrics hub bound, seeded traffic attached, and (optionally) the
    full static/scheduled/reverted/transient fault mix installed.

    Returns ``(network, telemetry, injector)`` (injector None without
    faults).  Shared by the backend diff and the resume diff
    (:mod:`repro.verify.resume_diff`), which snapshots the same
    workload mid-run.
    """
    from repro.harness.load_sweep import figure1_network
    from repro.telemetry import TelemetryHub

    rng = random.Random(derive_seed(seed, "backend-diff", "traffic"))
    build_seed = rng.getrandbits(24)
    traffic_seed = rng.getrandbits(24)
    telemetry = TelemetryHub(spans=False)
    network = figure1_network(
        seed=build_seed, telemetry=telemetry, backend=backend
    )
    traffic = _traffic_for(rng, network, traffic_seed)
    applied = None
    if with_faults:
        from repro.faults.injector import (
            FaultInjector,
            random_fault_scenario,
            random_transient_scenario,
        )

        injector = FaultInjector(network)
        fault_seed = rng.getrandbits(24)
        static = random_fault_scenario(
            network,
            n_dead_links=rng.randrange(0, 3),
            n_dead_routers=rng.randrange(0, 2),
            seed=fault_seed,
            exclude_final_stage=True,
        )
        # A mix of immediate, scheduled and scheduled-then-reverted
        # faults exercises every injector entry point.
        for index, fault in enumerate(static):
            if index % 2 == 0:
                injector.now(fault)
            else:
                strike = rng.randrange(cycles // 4, cycles // 2)
                injector.at(strike, fault)
                if rng.random() < 0.5:
                    injector.revert_at(
                        strike + rng.randrange(50, cycles // 4), fault
                    )
        for fault in random_transient_scenario(
            network,
            n_flaky_links=rng.randrange(1, 3),
            mtbf=rng.choice((300, 600)),
            mttr=rng.choice((80, 150)),
            seed=fault_seed + 1,
            start=rng.randrange(0, cycles // 4),
        ):
            injector.transient(fault)
        applied = injector
    traffic.attach(network)
    return network, telemetry, applied


def _traffic_fingerprint(network, telemetry, injector):
    """Everything observable about a traffic-family run so far."""
    fingerprint = message_fingerprint(network.log)
    fingerprint["cycle"] = network.engine.cycle
    fingerprint["metrics"] = telemetry.snapshot().as_dict()
    if injector is not None:
        fingerprint["applied"] = [
            (entry.cycle, entry.fault.describe(), entry.scheduled, entry.action)
            for entry in injector.applied
        ]
    return fingerprint


def _run_traffic(seed, backend, cycles, with_faults):
    network, telemetry, injector = _build_traffic(
        seed, backend, cycles, with_faults
    )
    # Several run() calls rather than one: run boundaries are where an
    # event-driven backend re-prepares, so they must also be
    # transparent.
    remaining = cycles
    while remaining > 0:
        span = min(remaining, max(1, cycles // 3))
        network.run(span)
        remaining -= span
    return _traffic_fingerprint(network, telemetry, injector)


def _diff_traffic(seed, backend, with_faults=False):
    mismatches = []
    fingerprints = [
        _run_traffic(seed, be, cycles=2400, with_faults=with_faults)
        for be in ("reference", backend)
    ]
    _compare(fingerprints, mismatches)
    return mismatches


def _diff_chaos(seed, backend):
    from repro.harness.chaos import run_chaos_point

    mismatches = []
    results = [
        run_chaos_point(
            seed=derive_seed(seed, "backend-diff", "chaos"),
            n_windows=10,
            window_cycles=300,
            warmup_windows=3,
            backend=be,
        )
        for be in ("reference", backend)
    ]
    fingerprints = [
        {
            "windows": list(r.windows),
            "availability": r.availability,
            "undeliverable": r.undeliverable,
            "attempt_failures": dict(r.attempt_failures),
            "fault_events": list(r.fault_events),
            "mask_events": list(r.mask_events),
            "repairs": list(r.repairs),
            "evidence_count": r.evidence_count,
            "oracle_violations": r.oracle_violations,
        }
        for r in results
    ]
    _compare(fingerprints, mismatches)
    return mismatches


_KIND_RUNNERS = {
    "scenario": _diff_scenario,
    "traffic": lambda seed, backend: _diff_traffic(seed, backend, False),
    "faults": lambda seed, backend: _diff_traffic(seed, backend, True),
    "chaos": _diff_chaos,
}


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def diff_point(kind, seed, backend="events"):
    """Run one differential trial; returns a :class:`DiffReport`."""
    try:
        runner = _KIND_RUNNERS[kind]
    except KeyError:
        raise ValueError(
            "unknown diff kind {!r} (choices: {})".format(
                kind, ", ".join(sorted(_KIND_RUNNERS))
            )
        )
    mismatches = runner(seed, backend)
    return DiffReport(kind=kind, seed=seed, ok=not mismatches, mismatches=mismatches)


def run_diff_trial(seed=0, kind="scenario", backend="events"):
    """:class:`TrialSpec` runner wrapper around :func:`diff_point`."""
    return diff_point(kind, seed, backend=backend)


def backend_diff_specs(n_trials=50, seed=0, backend="events", kinds=DEFAULT_KINDS):
    """``n_trials`` diff trials cycling through the workload kinds.

    Each trial's seed derives from the root seed and its index, so the
    set is a pure function of its arguments (and each report is
    independently reproducible with ``diff_point``).
    """
    specs = []
    for index in range(n_trials):
        kind = kinds[index % len(kinds)]
        trial_seed = derive_seed(seed, "backend-diff", index)
        specs.append(
            TrialSpec(
                runner="repro.verify.backend_diff:run_diff_trial",
                params=dict(kind=kind, backend=backend),
                seed=trial_seed,
                label="{}[{}]".format(kind, index),
            )
        )
    return specs


def diff_sweep(
    n_trials=50,
    seed=0,
    backend="events",
    kinds=DEFAULT_KINDS,
    workers=1,
    cache_dir=None,
    progress=None,
    runner=None,
):
    """Run ``n_trials`` differential trials; returns the reports.

    With ``workers`` > 1 the trials fan out across a process pool —
    each trial is self-contained, so parallel order cannot change any
    report.
    """
    specs = backend_diff_specs(
        n_trials=n_trials, seed=seed, backend=backend, kinds=kinds
    )
    if runner is None:
        runner = TrialRunner(workers=workers, cache_dir=cache_dir, progress=progress)
    return runner.run(specs)


def diff_failures(reports):
    """The subset of reports where the backends disagreed."""
    return [report for report in reports if not report.ok]
