"""Per-router utilization sampling: where is the network busy?

Samples each router's backward-port occupancy on a fixed period and
aggregates per stage and per router — the data behind congestion
heatmaps.  Random output selection should keep utilization flat within
each dilation group and each stage; a hotspot workload shows up as a
sharp utilization spike on the routers serving the hot destination.
"""

from repro.sim.component import Component


class UtilizationProbe(Component):
    """A clocked sampler of router occupancy.

    Register it with the network's engine *after* building traffic;
    ``period`` controls sampling cost (1 = every cycle).
    """

    def __init__(self, network, period=4):
        self.name = "utilization-probe"
        self.network = network
        self.period = period
        self.samples = 0
        #: router key -> busy-port samples summed
        self.busy = {key: 0 for key in network.router_grid}
        self._ports = {
            key: router.params.o
            for key, router in network.router_grid.items()
        }

    def tick(self, cycle):
        if cycle % self.period:
            return
        self.samples += 1
        for key, router in self.network.router_grid.items():
            self.busy[key] += len(router.busy_backward_ports())

    # ------------------------------------------------------------------

    def router_utilization(self):
        """key -> mean fraction of backward ports busy."""
        if not self.samples:
            return {key: 0.0 for key in self.busy}
        return {
            key: self.busy[key] / (self.samples * self._ports[key])
            for key in self.busy
        }

    def stage_utilization(self):
        """stage -> mean utilization over that stage's routers."""
        per_router = self.router_utilization()
        stages = {}
        for (stage, _block, _index), value in per_router.items():
            stages.setdefault(stage, []).append(value)
        return {stage: sum(vals) / len(vals) for stage, vals in stages.items()}

    def hottest(self, count=5):
        """The ``count`` most-utilized routers, hottest first."""
        per_router = self.router_utilization()
        ranked = sorted(per_router.items(), key=lambda kv: -kv[1])
        return ranked[:count]

    def imbalance(self, stage):
        """max/mean utilization ratio within one stage (1.0 = flat)."""
        per_router = self.router_utilization()
        values = [
            value
            for (s, _b, _i), value in per_router.items()
            if s == stage
        ]
        mean = sum(values) / len(values)
        if mean == 0:
            return 1.0
        return max(values) / mean


def attach_probe(network, period=4):
    """Create and register a probe on ``network``; returns it."""
    probe = UtilizationProbe(network, period=period)
    network.engine.add_component(probe)
    return probe
