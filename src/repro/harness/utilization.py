"""Per-router utilization sampling: where is the network busy?

Samples each router's backward-port occupancy on a fixed period and
aggregates per stage and per router — the data behind congestion
heatmaps.  Random output selection should keep utilization flat within
each dilation group and each stage; a hotspot workload shows up as a
sharp utilization spike on the routers serving the hot destination.

The probe stores its samples in a
:class:`~repro.telemetry.metrics.MetricsRegistry` under the same
``router.util.*`` series the :class:`~repro.telemetry.TelemetryHub`
emits, so probe data renders with the same reporting helpers
(:func:`~repro.harness.reporting.format_stage_heatmap`) and merges
with sweep snapshots.
"""

from repro.sim.component import Component
from repro.telemetry.metrics import MetricsRegistry


class UtilizationProbe(Component):
    """A clocked sampler of router occupancy.

    Registered as an engine *observer* (see :func:`attach_probe`), so
    each sample sees fully-staged component state regardless of
    registration order; ``period`` controls sampling cost (1 = every
    cycle).

    :param registry: a shared :class:`MetricsRegistry` to record into;
        omitted, the probe owns a private one.
    """

    def __init__(self, network, period=4, registry=None):
        self.name = "utilization-probe"
        self.network = network
        self.period = period
        self.registry = registry if registry is not None else MetricsRegistry()
        self._samples = self.registry.counter("router.util.samples")
        #: router key -> (router, busy counter); ports are published as
        #: gauges so a snapshot is self-describing.
        self._counters = {}
        self._ports = {}
        for key, router in network.router_grid.items():
            stage = key[0]
            label = "{}.{}.{}".format(*key)
            self._counters[key] = (
                router,
                self.registry.counter(
                    "router.util.busy", router=label, stage=stage
                ),
            )
            self.registry.gauge(
                "router.util.ports", router=label, stage=stage
            ).set(router.params.o)
            self._ports[key] = router.params.o

    @property
    def samples(self):
        return self._samples.value

    def tick(self, cycle):
        if cycle % self.period:
            return
        self._samples.inc()
        for router, counter in self._counters.values():
            counter.inc(len(router.busy_backward_ports()))

    # ------------------------------------------------------------------

    def snapshot(self):
        """A picklable snapshot of the probe's ``router.util.*`` series."""
        return self.registry.snapshot()

    def router_utilization(self):
        """key -> mean fraction of backward ports busy."""
        samples = self._samples.value
        if not samples:
            return {key: 0.0 for key in self._counters}
        return {
            key: counter.value / (samples * self._ports[key])
            for key, (_router, counter) in self._counters.items()
        }

    def stage_utilization(self):
        """stage -> mean utilization over that stage's routers."""
        per_router = self.router_utilization()
        stages = {}
        for (stage, _block, _index), value in per_router.items():
            stages.setdefault(stage, []).append(value)
        return {stage: sum(vals) / len(vals) for stage, vals in stages.items()}

    def hottest(self, count=5):
        """The ``count`` most-utilized routers, hottest first."""
        per_router = self.router_utilization()
        ranked = sorted(per_router.items(), key=lambda kv: -kv[1])
        return ranked[:count]

    def imbalance(self, stage):
        """max/mean utilization ratio within one stage (1.0 = flat)."""
        per_router = self.router_utilization()
        values = [
            value
            for (s, _b, _i), value in per_router.items()
            if s == stage
        ]
        mean = sum(values) / len(values)
        if mean == 0:
            return 1.0
        return max(values) / mean


def attach_probe(network, period=4, registry=None):
    """Create and register a probe on ``network``; returns it.

    The probe is an engine observer, not a component: observers tick
    after every component has staged its cycle, so the sample is taken
    from a consistent network state however the engine was assembled.
    """
    probe = UtilizationProbe(network, period=period, registry=registry)
    network.engine.add_observer(probe)
    return probe
