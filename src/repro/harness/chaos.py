"""Chaos soak harness: long faulty runs with self-healing on or off.

The paper claims the architecture "operates with any set of faults
short of those which disconnect endpoints" (Section 1); the fault
sweep measures *static* fault levels, and this harness measures the
*dynamic* story: transient faults (flaky wires, dying routers) strike
mid-run while the online :class:`~repro.faults.manager.FaultManager`
detects, localizes and masks them.  A soak reports service-level
numbers — availability (fraction of windows meeting the delivered-rate
SLO), MTTR (how long degraded episodes last), undeliverable count —
and the natural experiment is the same seed with self-healing ON
versus OFF.

Soaks are deterministic: every random choice derives from the trial
seed, so a soak is a pure function of its parameters and serial ==
parallel execution byte-identically (the
:class:`~repro.harness.parallel.TrialRunner` contract).

Long soaks can checkpoint themselves: ``snapshot_every=K`` writes an
engine snapshot (:mod:`repro.sim.snapshot`) every ``K`` windows into a
small on-disk ring, and :func:`resume_chaos_point` (CLI: ``repro
chaos --resume``) picks up the newest intact checkpoint after a crash
or host restart and finishes the soak — producing the *same*
:class:`ChaosResult` an uninterrupted run would have, because the
result is a pure function of the final message log and fault
histories, all of which ride the snapshot.
"""

import logging
import os
import random

from repro.core.random_source import derive_seed
from repro.endpoint.traffic import UniformRandomTraffic
from repro.faults.injector import FaultInjector, random_transient_scenario
from repro.faults.manager import FaultManager
from repro.faults.model import DeadRouter
from repro.harness.load_sweep import figure1_network
from repro.harness.parallel import TrialRunner, TrialSpec

logger = logging.getLogger(__name__)


class ChaosResult:
    """Outcome of one chaos soak: windowed rates plus fault history.

    Carries only plain data (ints, strings, dicts of such), so results
    pickle byte-identically regardless of which process produced them.
    """

    #: MetricsSnapshot when the soak ran with telemetry, else None
    #: (class attribute so old pickles still answer ``.metrics``).
    metrics = None
    #: Stall diagnoses (plain dicts) when the soak ran with a
    #: watchdog, else empty (class attribute for old pickles).
    stalls = ()

    def __init__(
        self,
        label,
        seed,
        self_heal,
        window_cycles,
        warmup_windows,
        fault_start,
        slo_fraction,
        windows,
        undeliverable,
        attempt_failures,
        fault_events,
        mask_events,
        repairs,
        evidence_count,
        oracle_violations,
    ):
        self.label = label
        self.seed = seed
        self.self_heal = self_heal
        self.window_cycles = window_cycles
        self.warmup_windows = warmup_windows
        self.fault_start = fault_start
        self.slo_fraction = slo_fraction
        #: Delivered (acked) message count per completed window.
        self.windows = list(windows)
        self.undeliverable = undeliverable
        self.attempt_failures = dict(attempt_failures)
        #: ``(cycle, description, action)`` for every fault transition.
        self.fault_events = list(fault_events)
        #: Mask decisions the manager took (dicts; empty when off).
        self.mask_events = list(mask_events)
        self.repairs = list(repairs)
        self.evidence_count = evidence_count
        self.oracle_violations = oracle_violations

    # -- service-level numbers -------------------------------------------

    @property
    def baseline_rate(self):
        """Mean fault-free delivered rate (the warmup windows)."""
        head = self.windows[: self.warmup_windows]
        if not head:
            return 0.0
        return sum(head) / len(head)

    def _post_fault(self):
        return self.windows[self.fault_start // self.window_cycles:]

    def _slo_floor(self):
        return self.slo_fraction * self.baseline_rate

    @property
    def availability(self):
        """Fraction of post-fault windows meeting the delivered SLO."""
        post = self._post_fault()
        if not post:
            return 1.0
        floor = self._slo_floor()
        return sum(1 for count in post if count >= floor) / len(post)

    @property
    def degraded_windows(self):
        floor = self._slo_floor()
        return sum(1 for count in self._post_fault() if count < floor)

    @property
    def mttr_cycles(self):
        """Mean length of a degraded episode, in cycles.

        An episode is a maximal run of consecutive below-SLO windows;
        0.0 when the soak never went degraded.
        """
        floor = self._slo_floor()
        episodes = []
        run = 0
        for count in self._post_fault():
            if count < floor:
                run += 1
            elif run:
                episodes.append(run)
                run = 0
        if run:
            episodes.append(run)
        if not episodes:
            return 0.0
        return self.window_cycles * sum(episodes) / len(episodes)

    @property
    def recovered_rate(self):
        """Mean delivered rate over the soak's last three windows."""
        tail = self.windows[-3:]
        if not tail:
            return 0.0
        return sum(tail) / len(tail)

    def as_dict(self):
        return {
            "label": self.label,
            "seed": self.seed,
            "self_heal": self.self_heal,
            "windows": list(self.windows),
            "baseline_rate": self.baseline_rate,
            "recovered_rate": self.recovered_rate,
            "availability": self.availability,
            "degraded_windows": self.degraded_windows,
            "mttr_cycles": self.mttr_cycles,
            "undeliverable": self.undeliverable,
            "masked_wires": len(self.mask_events),
            "fault_events": [list(e) for e in self.fault_events],
            "oracle_violations": self.oracle_violations,
            "stalls": len(self.stalls),
        }

    def __repr__(self):
        return (
            "<ChaosResult {} heal={} avail={:.2f} mttr={:.0f} "
            "masked={}>".format(
                self.label,
                "on" if self.self_heal else "off",
                self.availability,
                self.mttr_cycles,
                len(self.mask_events),
            )
        )


def run_chaos_point(
    seed=0,
    self_heal=True,
    n_windows=30,
    window_cycles=400,
    warmup_windows=5,
    fault_start=None,
    n_flaky_links=1,
    n_flaky_routers=0,
    n_dead_routers=1,
    mtbf=1500,
    mttr=600,
    burst=1,
    rate=0.02,
    message_words=12,
    max_attempts=60,
    slo_fraction=0.75,
    network_factory=figure1_network,
    manager_kwargs=None,
    metrics=False,
    oracle=False,
    backend="reference",
    snapshot_every=None,
    snapshot_dir=None,
    snapshot_keep=3,
    stream_path=None,
    stall_cycles=None,
):
    """One chaos soak: seeded transient + hard faults, optional healing.

    The soak warms up fault-free for ``warmup_windows`` windows, then
    (at ``fault_start``, default the end of warmup) ``n_dead_routers``
    middle-stage routers die for good while ``n_flaky_links`` wires and
    ``n_flaky_routers`` routers begin transient duty cycles (seeded
    MTBF/MTTR).  With ``self_heal`` a
    :class:`~repro.faults.manager.FaultManager` watches the failure
    evidence and masks localized faults online; without it the
    endpoints' retry discipline is the only defence.  ``oracle=True``
    attaches the protocol conformance oracle for the whole soak
    (violations are counted on the result, not raised).

    Endpoints verify stage checksums (the manager's best evidence) and
    run a finite ``max_attempts`` so unreachable destinations surface
    as ``undeliverable`` instead of infinite retry.

    ``snapshot_every=K`` (with ``snapshot_dir``) checkpoints the live
    network every ``K`` completed windows into a ring of at most
    ``snapshot_keep`` files, so a crashed soak resumes from its newest
    intact checkpoint via :func:`resume_chaos_point`.  Checkpointing
    never changes the result: snapshot capture does not perturb the
    live graph, and run-boundary placement is proven transparent by
    :mod:`repro.verify.resume_diff`.

    ``stream_path`` attaches a
    :class:`~repro.telemetry.stream.TelemetryStream` writing the
    soak's live JSONL run log (metric deltas when ``metrics=True``,
    window stats, fault transitions, snapshot-ring writes, stall
    diagnoses) — see ``docs/observability.md``.  ``stall_cycles``
    attaches a :class:`~repro.telemetry.watchdog.RunWatchdog` (also
    attached implicitly when streaming, with a default window of five
    soak windows, or when the parallel runner requests heartbeats via
    ``REPRO_HEARTBEAT_FILE``).  Neither observer perturbs the
    simulation — a streamed soak's :class:`ChaosResult` scores
    byte-identically to an unstreamed one.
    """
    if fault_start is None:
        fault_start = warmup_windows * window_cycles
    endpoint_kwargs = {
        "verify_stage_checksums": True,
        "max_attempts": max_attempts,
    }
    factory_kwargs = {}
    if backend != "reference":
        # Forwarded only when overridden so custom factories without a
        # backend parameter keep working (and reference cache keys stay
        # stable).
        factory_kwargs["backend"] = backend
    telemetry = None
    if metrics:
        from repro.telemetry import TelemetryHub

        telemetry = TelemetryHub(spans=False)
        network = network_factory(
            seed=seed,
            telemetry=telemetry,
            endpoint_kwargs=endpoint_kwargs,
            **factory_kwargs
        )
    else:
        network = network_factory(
            seed=seed, endpoint_kwargs=endpoint_kwargs, **factory_kwargs
        )

    watcher = None
    if oracle:
        from repro.verify.oracle import attach_oracle

        watcher = attach_oracle(network)

    injector = FaultInjector(network)
    rng = random.Random(derive_seed(seed, "chaos-faults"))
    last = network.plan.n_stages - 1
    middle = [
        key for key in network.router_grid if 0 < key[0] < last
    ]
    rng.shuffle(middle)
    for stage, block, index in middle[:n_dead_routers]:
        injector.at(fault_start, DeadRouter(stage, block, index))
    for fault in random_transient_scenario(
        network,
        n_flaky_links=n_flaky_links,
        n_flaky_routers=n_flaky_routers,
        mtbf=mtbf,
        mttr=mttr,
        seed=derive_seed(seed, "chaos-transients"),
        burst=burst,
        start=fault_start,
    ):
        injector.transient(fault)

    manager = None
    if self_heal:
        kwargs = dict(rate_window=window_cycles)
        if manager_kwargs:
            kwargs.update(manager_kwargs)
        manager = FaultManager(network, **kwargs)

    UniformRandomTraffic(
        n_endpoints=network.plan.n_endpoints,
        w=network.codec.w,
        rate=rate,
        message_words=message_words,
        seed=seed + 1,
    ).attach(network)

    meta = {
        "seed": seed,
        "self_heal": self_heal,
        "n_windows": n_windows,
        "window_cycles": window_cycles,
        "warmup_windows": warmup_windows,
        "fault_start": fault_start,
        "slo_fraction": slo_fraction,
        "snapshot_every": snapshot_every,
        "snapshot_keep": snapshot_keep,
    }
    return _finish_soak(
        network,
        injector,
        manager,
        watcher,
        telemetry,
        meta,
        snapshot_dir=snapshot_dir,
        stream_path=stream_path,
        stall_cycles=stall_cycles,
    )


def _finish_soak(
    network,
    injector,
    manager,
    watcher,
    telemetry,
    meta,
    snapshot_dir=None,
    stream_path=None,
    stall_cycles=None,
):
    """Run a (possibly resumed) soak to completion and score it.

    The loop and scoring are shared between :func:`run_chaos_point`
    and :func:`resume_chaos_point`: scoring is a pure function of the
    final message log and fault histories, so a resumed soak produces
    exactly the uninterrupted soak's :class:`ChaosResult`.
    """
    window_cycles = meta["window_cycles"]
    snapshot_every = meta.get("snapshot_every")
    engine = network.engine
    target = meta["n_windows"] * window_cycles

    stream = None
    if stream_path is not None:
        from repro.telemetry.stream import TelemetryStream

        stream = TelemetryStream(
            stream_path,
            flush_every=window_cycles,
            window_cycles=window_cycles,
            meta=dict(meta),
        )
        stream.bind(network, injector=injector)
    from repro.telemetry.watchdog import RunWatchdog, heartbeat_path_from_env

    # A resumed soak restores its previous watchdog with the engine
    # observers; reuse it rather than stacking a second one.
    watchdog = next(
        (o for o in engine.observers if isinstance(o, RunWatchdog)), None
    )
    if watchdog is not None:
        if stream is not None:
            watchdog.sink = stream
    elif stall_cycles is not None or stream is not None or heartbeat_path_from_env():
        watchdog = RunWatchdog(
            stall_cycles=stall_cycles or 5 * window_cycles,
            heartbeat_every=window_cycles,
            sink=stream,
        )
        watchdog.bind(network)

    span = None
    next_snap = None
    if snapshot_every:
        if snapshot_dir is None:
            raise ValueError("snapshot_every requires snapshot_dir")
        span = snapshot_every * window_cycles
        next_snap = (engine.cycle // span + 1) * span
    while engine.cycle < target:
        stop = target if next_snap is None else min(target, next_snap)
        network.run(stop - engine.cycle)
        if manager is not None and manager.repairs_due():
            manager.service()
        if next_snap is not None and engine.cycle >= next_snap:
            if engine.cycle < target:
                path = _write_ring_snapshot(
                    network,
                    injector,
                    manager,
                    watcher,
                    telemetry,
                    meta,
                    snapshot_dir,
                )
                if stream is not None:
                    stream.notify_snapshot(path, cycle=engine.cycle)
            next_snap = (engine.cycle // span + 1) * span

    from repro.endpoint import messages as M

    counts = {}
    for message in network.log.messages:
        if message.outcome == M.DELIVERED:
            window = message.done_cycle // window_cycles
            counts[window] = counts.get(window, 0) + 1
    n_complete = engine.cycle // window_cycles
    windows = [counts.get(i, 0) for i in range(n_complete)]

    seed = meta["seed"]
    self_heal = meta["self_heal"]
    result = ChaosResult(
        label="seed={} heal={}".format(seed, "on" if self_heal else "off"),
        seed=seed,
        self_heal=self_heal,
        window_cycles=window_cycles,
        warmup_windows=meta["warmup_windows"],
        fault_start=meta["fault_start"],
        slo_fraction=meta["slo_fraction"],
        windows=windows,
        undeliverable=len(network.log.abandoned()),
        attempt_failures=network.log.attempt_failures,
        fault_events=[
            (entry.cycle, entry.fault.describe(), entry.action)
            for entry in injector.applied
        ],
        mask_events=manager.mask_events if manager is not None else [],
        repairs=(
            [dict(r) for r in manager.repairs] if manager is not None else []
        ),
        evidence_count=manager.evidence_count if manager is not None else 0,
        oracle_violations=(
            len(watcher.violations) if watcher is not None else 0
        ),
    )
    if telemetry is not None:
        registry = telemetry.registry
        registry.gauge("chaos.availability").set(result.availability)
        registry.gauge("chaos.mttr_cycles").set(result.mttr_cycles)
        registry.gauge("chaos.degraded_windows").set(result.degraded_windows)
        registry.gauge("chaos.masked_wires").set(len(result.mask_events))
        result.metrics = telemetry.snapshot()
    if watchdog is not None:
        result.stalls = [stall.as_dict() for stall in watchdog.stalls]
    if stream is not None:
        # Closed after the final gauges above, so the run log's merged
        # deltas reproduce ``result.metrics`` exactly.
        stream.close(
            summary={
                "label": result.label,
                "availability": result.availability,
                "mttr_cycles": result.mttr_cycles,
                "undeliverable": result.undeliverable,
                "masked_wires": len(result.mask_events),
                "windows": len(result.windows),
                "stalls": len(result.stalls),
            }
        )
    return result


# ---------------------------------------------------------------------------
# Crash-safe checkpointing (the snapshot ring)
# ---------------------------------------------------------------------------

_RING_PREFIX = "chaos-"
_RING_SUFFIX = ".snap"


def _ring_files(snapshot_dir):
    """Ring entries as ``(cycle, path)``, oldest first."""
    entries = []
    try:
        names = os.listdir(snapshot_dir)
    except OSError:
        return entries
    for name in names:
        if not (name.startswith(_RING_PREFIX) and name.endswith(_RING_SUFFIX)):
            continue
        stem = name[len(_RING_PREFIX):-len(_RING_SUFFIX)]
        try:
            cycle = int(stem)
        except ValueError:
            continue
        entries.append((cycle, os.path.join(snapshot_dir, name)))
    entries.sort()
    return entries


def _write_ring_snapshot(
    network, injector, manager, watcher, telemetry, meta, snapshot_dir
):
    """Checkpoint the live soak; prune the ring to ``snapshot_keep``."""
    from repro.sim.snapshot import snapshot_network

    os.makedirs(snapshot_dir, exist_ok=True)
    snap = snapshot_network(
        network,
        extras={
            "injector": injector,
            "manager": manager,
            "watcher": watcher,
            "telemetry": telemetry,
        },
        meta=dict(meta),
    )
    path = os.path.join(
        snapshot_dir,
        "{}{:012d}{}".format(_RING_PREFIX, network.engine.cycle, _RING_SUFFIX),
    )
    # Write-then-rename so a crash mid-write never corrupts the newest
    # ring entry a resume would pick.
    tmp = path + ".tmp"
    snap.save(tmp)
    os.replace(tmp, path)
    keep = meta.get("snapshot_keep") or 1
    entries = _ring_files(snapshot_dir)
    for _cycle, old in entries[:-keep]:
        try:
            os.remove(old)
        except OSError:
            pass
    return path


def resume_chaos_point(
    snapshot_dir, backend=None, stream_path=None, stall_cycles=None
):
    """Finish a soak from its newest intact ring checkpoint.

    Walks the ring newest-first, skipping entries that are corrupt or
    from an incompatible snapshot format (:class:`~repro.sim.snapshot
    .SnapshotFormatError` — a *loud* failure when no entry is usable).
    The returned :class:`ChaosResult` is byte-identical to what the
    uninterrupted soak would have produced.

    :param backend: engine backend to resume under; None keeps the
        backend the soak was checkpointed under (snapshots are
        backend-portable, so switching is allowed).
    :param stream_path: run-log path for the resumed leg.  A stream
        restored with the checkpoint is inert (its file handle does
        not survive pickling), so a resumed soak streams only when
        given a fresh path — appended, never truncated, so the two
        legs form one log.
    """
    from repro.sim.snapshot import Snapshot, SnapshotFormatError, restore_network

    entries = _ring_files(snapshot_dir)
    if not entries:
        raise FileNotFoundError(
            "no chaos snapshots found in {!r}".format(snapshot_dir)
        )
    errors = []
    for cycle, path in reversed(entries):
        try:
            snap = Snapshot.load(path)
            restored = restore_network(snap, backend=backend)
        except SnapshotFormatError as error:
            errors.append(str(error))
            continue
        except Exception as error:  # corrupt tail entry: fall back
            errors.append("{}: {}".format(path, error))
            continue
        extras = restored.extras
        return _finish_soak(
            restored.network,
            extras["injector"],
            extras["manager"],
            extras["watcher"],
            extras["telemetry"],
            snap.meta,
            snapshot_dir=snapshot_dir,
            stream_path=stream_path,
            stall_cycles=stall_cycles,
        )
    raise SnapshotFormatError(
        "no usable chaos snapshot in {!r}:\n  {}".format(
            snapshot_dir, "\n  ".join(errors)
        )
    )


def chaos_journal_partial(backend=None, stall_cycles=None):
    """``partial`` hook finishing mid-flight soaks from their snapshot rings.

    Journal-based resume (``repro chaos --resume <journal>``) serves
    *finished* trials from the content-hash cache; a soak the journal
    shows mid-flight has no cached result, but — when checkpointing
    was on — it does have a per-soak snapshot ring.  The returned
    callable plugs into :func:`repro.harness.journal.resume_sweep`
    (or ``TrialRunner(resume_partial=...)``) and finishes such a soak
    via :func:`resume_chaos_point`, falling back to a full re-run (by
    returning None) whenever the ring is missing, unusable, or the
    recovered result's seed does not match the spec — recovery must
    never substitute the wrong soak.
    """

    def partial(index, spec, state):
        ring_dir = spec.params.get("snapshot_dir")
        if not ring_dir or not os.path.isdir(ring_dir):
            return None
        try:
            result = resume_chaos_point(
                ring_dir,
                backend=backend,
                stream_path=spec.params.get("stream_path"),
                stall_cycles=stall_cycles,
            )
        except Exception as error:
            logger.warning(
                "resume: could not finish mid-flight soak %r from its "
                "snapshot ring (%s); re-executing", spec.label, error,
            )
            return None
        if result.seed != spec.seed:
            logger.warning(
                "resume: snapshot ring %r holds seed %r, spec %r wants "
                "seed %r; re-executing", ring_dir, result.seed,
                spec.label, spec.seed,
            )
            return None
        logger.info(
            "resume: finished mid-flight soak %r from its snapshot ring",
            spec.label,
        )
        return result

    return partial


def chaos_trial_specs(
    seeds=4,
    seed=0,
    self_heal=(True,),
    **kwargs
):
    """One :class:`TrialSpec` per (soak index, healing mode).

    The seed path is ``("chaos", index, heal)`` so a soak's randomness
    is unchanged when more soaks or the other healing mode are added.
    ``self_heal=(True, False)`` produces the paired ON/OFF experiment.

    When checkpointing (``snapshot_dir`` in ``kwargs``), each soak
    gets its own ring subdirectory (``soak<i>-heal<on|off>/``) so
    concurrent soaks never clobber each other's checkpoints; resume a
    specific soak by pointing :func:`resume_chaos_point` at its
    subdirectory.  Likewise ``stream_dir`` gives each soak its own
    run log (``soak<i>-heal<on|off>.jsonl``).  Note that run logs and
    checkpoints are side effects outside the trial-cache key's view of
    a result: a cache-hit trial returns its cached
    :class:`ChaosResult` without re-writing them.
    """
    snapshot_dir = kwargs.pop("snapshot_dir", None)
    stream_dir = kwargs.pop("stream_dir", None)
    if stream_dir is not None:
        os.makedirs(stream_dir, exist_ok=True)
    specs = []
    for index in range(seeds):
        for heal in self_heal:
            params = dict(self_heal=heal, **kwargs)
            if snapshot_dir is not None:
                params["snapshot_dir"] = os.path.join(
                    snapshot_dir,
                    "soak{}-heal{}".format(index, "on" if heal else "off"),
                )
            if stream_dir is not None:
                params["stream_path"] = os.path.join(
                    stream_dir,
                    "soak{}-heal{}.jsonl".format(
                        index, "on" if heal else "off"
                    ),
                )
            specs.append(
                TrialSpec(
                    runner="repro.harness.chaos:run_chaos_point",
                    params=params,
                    seed=derive_seed(seed, "chaos", index, heal),
                    label="chaos[{}] heal={}".format(
                        index, "on" if heal else "off"
                    ),
                )
            )
    return specs


def chaos_sweep(
    seeds=4,
    seed=0,
    self_heal=(True,),
    workers=1,
    cache_dir=None,
    progress=None,
    runner=None,
    **kwargs
):
    """Run a batch of chaos soaks (parallelizable, cacheable)."""
    specs = chaos_trial_specs(
        seeds=seeds, seed=seed, self_heal=self_heal, **kwargs
    )
    if runner is None:
        runner = TrialRunner(workers=workers, cache_dir=cache_dir, progress=progress)
    return runner.run(specs)


def chaos_slo_failures(
    results,
    min_availability=None,
    max_undeliverable=None,
    max_mttr_cycles=None,
):
    """Soaks violating the service-level bounds.

    Returns ``(result, reason)`` pairs; empty when every soak is
    within bounds.  The CLI turns a non-empty return into a nonzero
    exit status (the chaos-smoke CI gate).
    """
    failures = []
    for result in results:
        if (
            min_availability is not None
            and result.availability < min_availability
        ):
            failures.append(
                (
                    result,
                    "availability {:.3f} < {:.3f}".format(
                        result.availability, min_availability
                    ),
                )
            )
        if (
            max_undeliverable is not None
            and result.undeliverable > max_undeliverable
        ):
            failures.append(
                (
                    result,
                    "undeliverable {} > {}".format(
                        result.undeliverable, max_undeliverable
                    ),
                )
            )
        if (
            max_mttr_cycles is not None
            and result.mttr_cycles > max_mttr_cycles
        ):
            failures.append(
                (
                    result,
                    "MTTR {:.0f} cycles > {:.0f}".format(
                        result.mttr_cycles, max_mttr_cycles
                    ),
                )
            )
    return failures
