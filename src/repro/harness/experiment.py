"""Generic measured-window experiment runner.

Every simulation-backed figure in the paper reduces to: build a
network, attach a workload, warm it up, measure a window, and report
latency/throughput statistics over the messages that completed inside
the window.  :func:`run_experiment` is that loop;
:class:`ExperimentResult` carries the statistics.
"""

import numpy as np


class ExperimentResult:
    """Statistics over one measured window."""

    #: A :class:`~repro.telemetry.metrics.MetricsSnapshot` when the
    #: experiment ran with a telemetry hub bound, else None.  Class
    #: attribute, so results pickled before this field existed (old
    #: cache entries) still answer ``result.metrics``.
    metrics = None

    #: Real results are never quarantine reports; the counterpart
    #: (:class:`~repro.harness.parallel.QuarantinedTrial`) carries
    #: True, so sweep consumers can branch on ``result.quarantined``
    #: uniformly.  Class attribute for the same old-pickle reason as
    #: ``metrics``.
    quarantined = False

    def __init__(
        self,
        label,
        delivered,
        abandoned,
        warmup_cycles,
        measure_cycles,
        n_endpoints,
        message_words,
        attempt_failures,
    ):
        self.label = label
        self.delivered_count = len(delivered)
        self.abandoned_count = abandoned
        self.warmup_cycles = warmup_cycles
        self.measure_cycles = measure_cycles
        self.n_endpoints = n_endpoints
        self.message_words = message_words
        self.attempt_failures = dict(attempt_failures)
        self._latencies = np.array(
            [m.total_latency for m in delivered], dtype=float
        )
        self._attempts = np.array([m.attempts for m in delivered], dtype=float)
        self._sources = [m.source for m in delivered]
        self._queueing = np.array(
            [m.start_cycle - m.queued_cycle for m in delivered], dtype=float
        )

    # -- latency ---------------------------------------------------------

    @property
    def mean_latency(self):
        return float(self._latencies.mean()) if self.delivered_count else float("nan")

    @property
    def median_latency(self):
        return float(np.median(self._latencies)) if self.delivered_count else float("nan")

    def latency_percentile(self, q):
        return float(np.percentile(self._latencies, q)) if self.delivered_count else float("nan")

    @property
    def mean_attempts(self):
        return float(self._attempts.mean()) if self.delivered_count else float("nan")

    @property
    def mean_queueing(self):
        """Cycles spent waiting at the source before first transmission.

        Separates endpoint-side head-of-line waiting from network
        latency; under the Figure 3 single-outstanding model this is
        usually zero (closed-loop sources only generate when idle), and
        it grows when callers submit bursts.
        """
        return float(self._queueing.mean()) if self.delivered_count else float("nan")

    # -- throughput / load -----------------------------------------------

    @property
    def delivered_load(self):
        """Delivered words per endpoint-cycle: the Figure 3 load axis.

        Each endpoint can inject at most one word per cycle, so 1.0 is
        the (unreachable) aggregate injection capacity.
        """
        total_words = self.delivered_count * self.message_words
        return total_words / (self.measure_cycles * self.n_endpoints)

    @property
    def messages_per_kilocycle(self):
        return 1000.0 * self.delivered_count / self.measure_cycles

    def per_source_counts(self):
        """Delivered-message count per source endpoint."""
        counts = {e: 0 for e in range(self.n_endpoints)}
        for source in self._sources:
            counts[source] = counts.get(source, 0) + 1
        return counts

    def jain_fairness(self):
        """Jain's fairness index over per-source throughput.

        1.0 = perfectly fair; 1/n = one endpoint hogs everything.
        Stochastic selection should keep loaded networks near 1.
        """
        counts = list(self.per_source_counts().values())
        total = sum(counts)
        if total == 0:
            return float("nan")
        squares = sum(c * c for c in counts)
        return (total * total) / (len(counts) * squares)

    def blocked_fraction(self):
        """Failed attempts (any cause) per delivered message."""
        failures = sum(self.attempt_failures.values())
        if not self.delivered_count:
            return float("nan")
        return failures / self.delivered_count

    @property
    def undeliverable(self):
        """Messages whose retry budget ran out inside the window.

        These are *structural* losses (the source gave up), distinct
        from the latency inflation retries normally absorb — a fault
        sweep bounding degradation should bound these too rather than
        letting abandoned messages quietly vanish from the delivered
        tally.
        """
        return self.abandoned_count

    def content_hash(self):
        """The identity a run journal records for this result.

        Delegates to
        :func:`~repro.harness.parallel.result_content_hash` (sha256
        over the canonical pickle), so a cached result can be checked
        against its ``trial.done`` journal record without re-deriving
        the hashing convention.
        """
        from repro.harness.parallel import result_content_hash

        return result_content_hash(self)

    def as_dict(self):
        return {
            "label": self.label,
            "delivered": self.delivered_count,
            "abandoned": self.abandoned_count,
            "undeliverable": self.undeliverable,
            "mean_latency": self.mean_latency,
            "median_latency": self.median_latency,
            "p95_latency": self.latency_percentile(95),
            "mean_attempts": self.mean_attempts,
            "delivered_load": self.delivered_load,
            "failures_per_message": self.blocked_fraction(),
        }

    def __repr__(self):
        return "<ExperimentResult {}: n={} mean={:.1f}>".format(
            self.label, self.delivered_count, self.mean_latency
        )


def run_experiment(
    network,
    traffic,
    warmup_cycles=2000,
    measure_cycles=10000,
    drain=True,
    label="",
    message_words=None,
    deadline_cycles=None,
    telemetry=None,
):
    """Warm up, measure, and summarize one workload on one network.

    Messages are attributed to the measured window by *submission*
    time; statistics cover those submitted inside the window that
    eventually completed (``drain`` lets stragglers finish so the tail
    isn't censored).

    ``deadline_cycles`` installs a hard engine deadline (relative to
    the current cycle) covering the whole experiment including drain:
    a trial that somehow exceeds it raises
    :class:`~repro.sim.engine.EngineDeadlineError` instead of spinning
    — the guard worker pools rely on to never hang on a runaway trial.

    ``telemetry`` is the :class:`~repro.telemetry.TelemetryHub` already
    bound to ``network`` (if any): its picklable metrics snapshot is
    attached to the result as ``result.metrics``, which is how sweep
    trials ship metrics back across process boundaries.
    """
    if deadline_cycles is not None:
        network.engine.set_deadline(network.engine.cycle + deadline_cycles)
    traffic.attach(network)
    network.run(warmup_cycles)
    return measure_experiment(
        network,
        traffic,
        measure_cycles,
        drain=drain,
        label=label,
        message_words=message_words,
        telemetry=telemetry,
        warmup_cycles=warmup_cycles,
    )


def measure_experiment(
    network,
    traffic,
    measure_cycles,
    drain=True,
    label="",
    message_words=None,
    telemetry=None,
    warmup_cycles=0,
):
    """Measure one window on an already-warm network.

    The back half of :func:`run_experiment`: the network is taken as it
    stands — traffic attached, warmup (if any) already run — so a
    warm-started trial can restore a post-warmup engine snapshot
    (:mod:`repro.sim.snapshot`) and jump straight to the measured
    window.  ``warmup_cycles`` is bookkeeping only (carried into the
    result); no warmup is run here.
    """
    start = network.engine.cycle
    network.run(measure_cycles)
    end = network.engine.cycle

    if drain:
        # Stop generating, let in-flight messages finish.
        for endpoint in network.endpoints:
            endpoint.traffic_source = None
        network.run_until_quiet(max_cycles=measure_cycles * 4)

    window = [
        m
        for m in network.log.delivered()
        if m.queued_cycle is not None and start <= m.queued_cycle < end
    ]
    abandoned = sum(
        1
        for m in network.log.abandoned()
        if m.queued_cycle is not None and start <= m.queued_cycle < end
    )
    result = ExperimentResult(
        label=label,
        delivered=window,
        abandoned=abandoned,
        warmup_cycles=warmup_cycles,
        measure_cycles=measure_cycles,
        n_endpoints=network.plan.n_endpoints,
        message_words=(
            message_words if message_words is not None else traffic.message_words
        ),
        attempt_failures=network.log.attempt_failures,
    )
    if telemetry is not None:
        result.metrics = telemetry.snapshot()
    return result
