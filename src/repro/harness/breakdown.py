"""Latency decomposition: where do the cycles of a delivery go?

For an unloaded message the timeline is unambiguous:

* **serialization** — one cycle per stream word (header + payload +
  checksum + TURN) leaving the source;
* **transit** — the pipeline flight of the stream head through routers
  and wires;
* **reply** — reversal, statuses, acknowledgment, and the hand-back.

:func:`measure_breakdown` measures all three from a live simulation
using the receiver-arrival log, so the short-haul premise ("injection
time dominates transit", Section 2) can be checked quantitatively for
any network and message size.
"""

import random

from repro.endpoint.messages import Message


class LatencyBreakdown:
    """Mean cycles per phase over the sampled messages."""

    def __init__(self, serialization, transit, reply, total):
        self.serialization = serialization
        self.transit = transit
        self.reply = reply
        self.total = total

    @property
    def injection_dominates(self):
        """Section 2's short-haul condition: injection >= transit."""
        return self.serialization >= self.transit

    def as_dict(self):
        return {
            "serialization_cycles": self.serialization,
            "transit_cycles": self.transit,
            "reply_cycles": self.reply,
            "total_cycles": self.total,
        }

    def __repr__(self):
        return (
            "<LatencyBreakdown serialization={:.1f} transit={:.1f} "
            "reply={:.1f} total={:.1f}>".format(
                self.serialization, self.transit, self.reply, self.total
            )
        )


def measure_breakdown(network_factory, message_words=20, samples=10, seed=0):
    """Decompose unloaded delivery latency on a fresh network.

    One message at a time: the arrival log entry therefore belongs to
    the in-flight message, and

    * serialization = words in the stream (header + payload + checksum
      + TURN), known exactly from the codec;
    * transit = arrival_cycle - start_cycle - serialization;
    * reply = done_cycle - arrival_cycle.
    """
    network = network_factory(seed)
    rng = random.Random(seed ^ 0x1234)
    n = network.plan.n_endpoints
    header_words = network.codec.header_length()
    serialization = header_words + message_words + 2  # + checksum + TURN

    transits, replies, totals = [], [], []
    for _ in range(samples):
        src, dest = rng.randrange(n), rng.randrange(n)
        if src == dest:
            dest = (dest + 1) % n
        payload = [rng.getrandbits(8) & ((1 << network.codec.w) - 1)
                   for _ in range(message_words)]
        mark = len(network.log.receiver_arrivals)
        message = network.send(src, Message(dest=dest, payload=payload))
        if not network.run_until_quiet(max_cycles=30000):
            raise RuntimeError("network failed to drain")
        if message.outcome != "delivered":
            continue
        arrival_cycle = network.log.receiver_arrivals[mark][0]
        transits.append(arrival_cycle - message.start_cycle - serialization)
        replies.append(message.done_cycle - arrival_cycle)
        totals.append(message.latency)
    if not totals:
        raise RuntimeError("no messages delivered")
    return LatencyBreakdown(
        serialization=float(serialization),
        transit=sum(transits) / len(transits),
        reply=sum(replies) / len(replies),
        total=sum(totals) / len(totals),
    )
