"""Sweeps over application workloads (collectives and services).

Two axes the tentpole figures need:

* **collective step time vs fault level** — how much does a degraded
  multibutterfly stretch a ring all-reduce's critical path? — and
* **service tail latency vs offered load** — where does the
  request/response p99/p999 knee sit?

Every point is an independent :class:`~repro.harness.parallel.TrialSpec`
(seeded via :func:`~repro.core.random_source.derive_seed`) executed by
a shared :class:`~repro.harness.parallel.TrialRunner`, so workload
sweeps inherit the whole resilience stack — process pools, on-disk
cache, crash journal, retries, quarantine — and stay byte-identical
serial vs parallel.  The CLI front end is ``repro workloads`` (see
``docs/workloads.md``).
"""

from repro.core.random_source import derive_seed
from repro.harness.fault_sweep import _apply_fault_level
from repro.harness.load_sweep import figure1_network, figure3_network
from repro.harness.parallel import TrialRunner, TrialSpec
from repro.workloads.collective import (
    CollectiveSchedule,
    CollectiveWorkload,
    ModelShape,
    run_collective,
)
from repro.workloads.service import (
    RequestResponseWorkload,
    run_service,
    service_slo_failures,
)

#: Fault levels (dead links, dead routers) swept by default.
DEFAULT_FAULT_LEVELS = ((0, 0), (4, 0), (8, 0), (4, 2))

#: Per-client arrival rates swept by default.
DEFAULT_SERVICE_RATES = (0.0005, 0.001, 0.002, 0.004)

_NETWORKS = {
    "figure1": figure1_network,
    "figure3": figure3_network,
}

_ALGORITHMS = (
    "ring",
    "recursive-doubling",
    "all-to-all",
    "pipeline",
)


def build_schedule(algorithm, n_endpoints, words=20, layers=None,
                   microbatches=4):
    """One collective schedule by name.

    ``layers`` (a list of per-layer gradient sizes in words) switches
    the ring/recursive-doubling algorithms into model-shaped mode: one
    serialized all-reduce per layer, message sizes from the layer
    sizes (:class:`~repro.workloads.collective.ModelShape`).
    """
    if layers:
        if algorithm not in ("ring", "recursive-doubling"):
            raise ValueError(
                "model-shaped schedules support ring/recursive-doubling only"
            )
        return ModelShape(layers, algorithm=algorithm).schedule(n_endpoints)
    if algorithm == "ring":
        return CollectiveSchedule.ring_all_reduce(
            n_endpoints, words_per_rank=words
        )
    if algorithm == "recursive-doubling":
        return CollectiveSchedule.recursive_doubling_all_reduce(
            n_endpoints, words_per_rank=words
        )
    if algorithm == "all-to-all":
        return CollectiveSchedule.all_to_all(n_endpoints, words_per_pair=words)
    if algorithm == "pipeline":
        return CollectiveSchedule.pipeline_parallel(
            n_endpoints, n_microbatches=microbatches, activation_words=words
        )
    raise ValueError(
        "unknown algorithm {!r} (expected one of {})".format(
            algorithm, ", ".join(_ALGORITHMS)
        )
    )


def run_collective_point(
    seed=0,
    algorithm="ring",
    words=20,
    layers=None,
    microbatches=4,
    network="figure1",
    n_dead_links=0,
    n_dead_routers=0,
    backend="reference",
    metrics=False,
    max_cycles=400000,
):
    """One collective execution, optionally on a degraded network.

    Faults are injected *before* the workload starts (static
    degradation, the Figure-6 discipline): the collective then runs on
    whatever paths survive, and the per-step report shows where the
    critical path stretched.  Importable by name
    (``repro.harness.workload_sweep:run_collective_point``) so trial
    specs stay picklable.
    """
    network_factory = _NETWORKS[network] if isinstance(network, str) else network
    factory_kwargs = {}
    if backend != "reference":
        factory_kwargs["backend"] = backend
    telemetry = None
    if metrics:
        from repro.telemetry import TelemetryHub

        telemetry = TelemetryHub(spans=False)
        factory_kwargs["telemetry"] = telemetry
    net = network_factory(seed=seed, **factory_kwargs)
    if n_dead_links or n_dead_routers:
        _apply_fault_level(net, n_dead_links, n_dead_routers, seed)
    schedule = build_schedule(
        algorithm,
        net.plan.n_endpoints,
        words=words,
        layers=layers,
        microbatches=microbatches,
    )
    workload = CollectiveWorkload(schedule, w=net.codec.w, seed=seed + 1)
    label = "{} faults={}+{}".format(algorithm, n_dead_links, n_dead_routers)
    result = run_collective(net, workload, max_cycles=max_cycles, label=label)
    if telemetry is not None:
        result.metrics = telemetry.snapshot()
    return result


def run_service_point(
    rate,
    seed=0,
    network="figure1",
    servers=(0,),
    clients=4,
    burst_prob=0.0,
    burst_size=1,
    request_words=8,
    reply_words=4,
    service_time=(0, 16),
    warmup_cycles=1000,
    measure_cycles=6000,
    max_outstanding=2,
    backend="reference",
    metrics=False,
):
    """One request/response soak at one offered load."""
    network_factory = _NETWORKS[network] if isinstance(network, str) else network
    factory_kwargs = {
        "endpoint_kwargs": {"max_outstanding": max_outstanding},
    }
    if backend != "reference":
        factory_kwargs["backend"] = backend
    telemetry = None
    if metrics:
        from repro.telemetry import TelemetryHub

        telemetry = TelemetryHub(spans=False)
        factory_kwargs["telemetry"] = telemetry
    net = network_factory(seed=seed, **factory_kwargs)
    workload = RequestResponseWorkload(
        n_endpoints=net.plan.n_endpoints,
        w=net.codec.w,
        servers=servers,
        clients=clients,
        rate=rate,
        burst_prob=burst_prob,
        burst_size=burst_size,
        request_words=request_words,
        reply_words=reply_words,
        service_time=service_time,
        seed=seed + 1,
    )
    result = run_service(
        net,
        workload,
        warmup_cycles=warmup_cycles,
        measure_cycles=measure_cycles,
        label="rate={}".format(rate),
    )
    if telemetry is not None:
        result.metrics = telemetry.snapshot()
    return result


def collective_trial_specs(fault_levels=DEFAULT_FAULT_LEVELS, seed=0,
                           algorithm="ring", **kwargs):
    """One spec per fault level; seed path ``("wl-coll", algo, l, r)``."""
    return [
        TrialSpec(
            runner="repro.harness.workload_sweep:run_collective_point",
            params=dict(
                algorithm=algorithm,
                n_dead_links=links,
                n_dead_routers=routers,
                **kwargs
            ),
            seed=derive_seed(seed, "wl-coll", algorithm, links, routers),
            label="{} faults={}+{}".format(algorithm, links, routers),
        )
        for links, routers in fault_levels
    ]


def service_trial_specs(rates=DEFAULT_SERVICE_RATES, seed=0, **kwargs):
    """One spec per offered load; seed path ``("wl-svc", rate)``."""
    return [
        TrialSpec(
            runner="repro.harness.workload_sweep:run_service_point",
            params=dict(rate=rate, **kwargs),
            seed=derive_seed(seed, "wl-svc", rate),
            label="rate={}".format(rate),
        )
        for rate in rates
    ]


def collective_fault_sweep(fault_levels=DEFAULT_FAULT_LEVELS, seed=0,
                           workers=1, cache_dir=None, progress=None,
                           runner=None, **kwargs):
    """Collective completion time vs fault level, one result per level."""
    specs = collective_trial_specs(fault_levels=fault_levels, seed=seed, **kwargs)
    if runner is None:
        runner = TrialRunner(workers=workers, cache_dir=cache_dir,
                             progress=progress)
    return runner.run(specs)


def service_sweep(rates=DEFAULT_SERVICE_RATES, seed=0, workers=1,
                  cache_dir=None, progress=None, runner=None, **kwargs):
    """Service tail latency vs offered load, one result per rate."""
    specs = service_trial_specs(rates=rates, seed=seed, **kwargs)
    if runner is None:
        runner = TrialRunner(workers=workers, cache_dir=cache_dir,
                             progress=progress)
    return runner.run(specs)


def workload_slo_failures(results, slo):
    """Every SLO violation across a service sweep's results.

    Collective results gate too: an ``incomplete`` collective (a
    deadlocked DAG or exhausted cycle budget) always fails, and
    ``slo["collective_cycles"]`` bounds total completion time.
    """
    failures = []
    for result in results:
        if hasattr(result, "latency_percentile"):
            failures.extend(service_slo_failures(result, slo))
        else:
            if result.incomplete:
                failures.append(
                    "{}: collective incomplete ({}/{} ops)".format(
                        result.label, result.completed_ops, result.n_ops
                    )
                )
            bound = slo.get("collective_cycles")
            if (
                bound is not None
                and result.total_cycles is not None
                and result.total_cycles > bound
            ):
                failures.append(
                    "{}: collective took {} cycles, bound {}".format(
                        result.label, result.total_cycles, bound
                    )
                )
    return failures
