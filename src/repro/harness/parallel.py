"""Parallel trial execution: worker pools, seed streams, result cache.

Every sweep in :mod:`repro.harness` is a set of *independent* trials —
one network, one workload, one measured window — whose results are
aggregated afterwards.  That structure is embarrassingly parallel, and
this module is the shared execution layer that exploits it:

* :class:`TrialSpec` — a picklable description of one trial: a runner
  function (named by ``"module:function"`` so worker processes import
  it fresh), its parameters, and the trial's derived seed.
* :class:`TrialCache` — an on-disk result store keyed by a content
  hash of (runner, parameters, seed, code version), so re-running a
  sweep skips every point that has already been computed.
* :class:`TrialRunner` — executes a list of specs, serially
  (``workers=1``) or on a ``multiprocessing`` pool, consulting the
  cache first and reporting per-trial progress/timing events.

Determinism: each trial receives its own seed derived from the sweep's
root seed via :func:`repro.core.random_source.derive_seed`, and every
trial builds its network/workload from that seed alone.  No state is
shared between trials, so a pool of workers and a serial loop produce
bit-identical results — the serial-vs-parallel equivalence test in
``tests/harness/test_parallel.py`` pins this.

Cache invalidation: the cache key includes a fingerprint of the
installed ``repro`` source tree, so any code change invalidates every
cached trial.  ``REPRO_CODE_VERSION`` overrides the fingerprint (for
benchmarking cache behaviour itself).  See ``docs/parallel.md``.
"""

import hashlib
import importlib
import json
import logging
import multiprocessing
import os
import pickle
import tempfile
import time

from repro.telemetry.watchdog import HEARTBEAT_ENV, read_heartbeat

logger = logging.getLogger(__name__)

#: Sentinel for a cache lookup that found nothing.
CACHE_MISS = object()


class TrialTimeoutError(RuntimeError):
    """A worker trial exceeded the runner's wall-clock timeout.

    The pool is terminated before this is raised, so a stuck trial
    never leaves orphaned workers behind.  When the runner was given a
    ``heartbeat_dir``, :attr:`heartbeat` carries the hung trial's last
    liveness heartbeat (cycle, delivered count, stall flag) so the
    failure names where the run got to instead of timing out silently.
    """

    def __init__(self, message, heartbeat=None):
        super().__init__(message)
        self.heartbeat = heartbeat


# ---------------------------------------------------------------------------
# Canonicalization (hashing parameters that may include callables)
# ---------------------------------------------------------------------------


def _canonicalize(value, opaque):
    """A JSON-able canonical form of ``value`` for content hashing.

    Callables and classes are named by ``module:qualname``; an object
    exposing a ``cache_token()`` method (e.g. a
    :class:`~repro.sim.snapshot.Snapshot`, whose token is its content
    hash) is keyed by that token; anything else without a stable
    importable identity (lambdas, closures, instances of arbitrary
    classes) is rendered opaquely and flips ``opaque[0]`` so the spec
    is marked uncacheable rather than cached under an ambiguous key.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, (list, tuple)):
        return [_canonicalize(v, opaque) for v in value]
    if isinstance(value, dict):
        return [
            [_canonicalize(k, opaque), _canonicalize(v, opaque)]
            for k, v in sorted(value.items(), key=lambda kv: repr(kv[0]))
        ]
    if not isinstance(value, type):
        token = getattr(value, "cache_token", None)
        if callable(token):
            return "token:{}".format(token())
    if callable(value):
        module = getattr(value, "__module__", None)
        qualname = getattr(value, "__qualname__", None)
        if module and qualname and "<" not in qualname:
            return "callable:{}:{}".format(module, qualname)
        opaque[0] = True
        return "opaque-callable:{}".format(qualname or repr(value))
    opaque[0] = True
    return "opaque:{}".format(repr(value))


class TrialSpec:
    """One independent trial, ready to run anywhere.

    :param runner: the trial function — either a ``"module:function"``
        string (preferred: always picklable, cache keys are stable) or
        a module-level callable.  It is invoked as
        ``runner(seed=seed, **params)`` and must return a picklable
        result.
    :param params: keyword arguments for the runner.  Values may
        include module-level callables (network factories, traffic
        classes); lambdas work in serial runs but make the spec
        uncacheable and unpicklable.
    :param seed: this trial's seed — derive it from the sweep's root
        seed with :func:`repro.core.random_source.derive_seed`.
    :param label: display name for progress output.
    """

    def __init__(self, runner, params=None, seed=0, label=None):
        self.runner = runner
        self.params = dict(params or {})
        self.seed = seed
        self.label = label if label is not None else self._default_label()

    def _default_label(self):
        name = self.runner if isinstance(self.runner, str) else getattr(
            self.runner, "__name__", repr(self.runner)
        )
        return "{}(seed={})".format(name.rsplit(":", 1)[-1], self.seed)

    def resolve_runner(self):
        """The runner callable (importing it if named by string)."""
        if isinstance(self.runner, str):
            module_name, _, attr = self.runner.partition(":")
            if not attr:
                raise ValueError(
                    "runner string must be 'module:function', got {!r}".format(
                        self.runner
                    )
                )
            return getattr(importlib.import_module(module_name), attr)
        return self.runner

    def canonical(self):
        """(canonical structure, cacheable flag) for this spec."""
        opaque = [False]
        structure = {
            "runner": _canonicalize(
                self.runner if isinstance(self.runner, str)
                else self.resolve_runner(),
                opaque,
            ),
            "params": _canonicalize(self.params, opaque),
            "seed": self.seed,
        }
        return structure, not opaque[0]

    def cacheable(self):
        """True when every parameter has a stable hashable identity."""
        return self.canonical()[1]

    def fingerprint(self, code_version=None):
        """Cache key: sha256 over (code version, runner, params, seed)."""
        structure, _cacheable = self.canonical()
        structure["code"] = (
            code_version if code_version is not None else repro_code_version()
        )
        blob = json.dumps(structure, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def __repr__(self):
        return "<TrialSpec {} seed={}>".format(self.label, self.seed)


def execute_trial(spec, heartbeat_path=None):
    """Run one spec; returns ``(result, elapsed_seconds)``.

    Module-level so worker processes can unpickle references to it.
    ``heartbeat_path`` exports :data:`~repro.telemetry.watchdog
    .HEARTBEAT_ENV` for the duration of the trial, so any harness that
    attaches a :class:`~repro.telemetry.watchdog.RunWatchdog` writes
    liveness heartbeats there (restored afterwards — worker processes
    run many trials back to back).
    """
    start = time.perf_counter()
    runner = spec.resolve_runner()
    if heartbeat_path is None:
        result = runner(seed=spec.seed, **spec.params)
    else:
        previous = os.environ.get(HEARTBEAT_ENV)
        os.environ[HEARTBEAT_ENV] = heartbeat_path
        try:
            result = runner(seed=spec.seed, **spec.params)
        finally:
            if previous is None:
                os.environ.pop(HEARTBEAT_ENV, None)
            else:
                os.environ[HEARTBEAT_ENV] = previous
    return result, time.perf_counter() - start


# ---------------------------------------------------------------------------
# Code-version fingerprint (cache invalidation on source change)
# ---------------------------------------------------------------------------

_CODE_VERSION = None


def repro_code_version():
    """A fingerprint of the installed ``repro`` source tree.

    sha256 over every ``.py`` file's path and contents (plus the
    package version), computed once per process.  Any source edit
    therefore invalidates the whole trial cache — stale results can
    never masquerade as current ones.  Set ``REPRO_CODE_VERSION`` to
    pin the fingerprint explicitly.
    """
    global _CODE_VERSION
    override = os.environ.get("REPRO_CODE_VERSION")
    if override:
        return override
    if _CODE_VERSION is None:
        import repro

        digest = hashlib.sha256()
        digest.update(getattr(repro, "__version__", "?").encode())
        root = os.path.dirname(os.path.abspath(repro.__file__))
        for dirpath, dirnames, filenames in sorted(os.walk(root)):
            dirnames.sort()
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                digest.update(os.path.relpath(path, root).encode())
                with open(path, "rb") as handle:
                    digest.update(handle.read())
        _CODE_VERSION = digest.hexdigest()
    return _CODE_VERSION


# ---------------------------------------------------------------------------
# On-disk trial cache
# ---------------------------------------------------------------------------


class TrialCache:
    """Pickled trial results under ``root/<key[:2]>/<key>.pkl``.

    Keys are :meth:`TrialSpec.fingerprint` hex digests.  Writes are
    atomic (temp file + rename) so concurrent sweeps sharing a cache
    directory never read torn files; unreadable entries are treated as
    misses and recomputed.
    """

    def __init__(self, root):
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, key):
        return os.path.join(self.root, key[:2], key + ".pkl")

    def get(self, key):
        """The cached result for ``key``, or :data:`CACHE_MISS`."""
        try:
            with open(self._path(key), "rb") as handle:
                result = pickle.load(handle)
        except Exception:
            # Any unreadable entry — truncated write, foreign pickle,
            # renamed class — is simply a miss; the trial recomputes.
            self.misses += 1
            return CACHE_MISS
        self.hits += 1
        return result

    def put(self, key, result):
        """Store ``result`` under ``key`` (atomically)."""
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self):
        count = 0
        for _dirpath, _dirnames, filenames in os.walk(self.root):
            count += sum(1 for f in filenames if f.endswith(".pkl"))
        return count


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------


class TrialEvent:
    """One progress report: trial ``index`` of ``total`` finished.

    ``source`` is ``"executed"``, ``"cache"``, or ``"timeout"`` (the
    trial was killed at the runner's wall-clock limit).  ``seconds``
    is the trial's own compute time (0.0 for cache hits);
    ``duration`` is wall-clock from submission to completion as the
    runner saw it, including pool queueing — on a saturated pool
    ``duration >> seconds`` means the trial *waited*, not that it was
    slow.  ``heartbeat`` is the hung trial's last liveness heartbeat
    dict on timeout events, else None.
    """

    __slots__ = ("index", "total", "label", "seconds", "source", "duration", "heartbeat")

    def __init__(
        self, index, total, label, seconds, source,
        duration=None, heartbeat=None,
    ):
        self.index = index
        self.total = total
        self.label = label
        self.seconds = seconds
        self.source = source
        self.duration = seconds if duration is None else duration
        self.heartbeat = heartbeat

    @property
    def cached(self):
        return self.source == "cache"

    @property
    def timed_out(self):
        return self.source == "timeout"

    def __repr__(self):
        return "<TrialEvent {}/{} {} {}>".format(
            self.index + 1, self.total, self.label, self.source
        )


class TrialStats:
    """Counters for one :meth:`TrialRunner.run` batch (cumulative)."""

    def __init__(self):
        self.executed = 0
        self.cached = 0
        self.seconds = 0.0

    def __repr__(self):
        return "<TrialStats executed={} cached={} {:.2f}s>".format(
            self.executed, self.cached, self.seconds
        )


def _preferred_start_method():
    # fork is markedly cheaper and inherits sys.path (so specs built
    # from test-local factories resolve); fall back to spawn where fork
    # does not exist (Windows) — specs must then be import-resolvable.
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


class TrialRunner:
    """Execute :class:`TrialSpec` lists with caching and parallelism.

    :param workers: 1 = run in-process (no pool, no pickling
        requirements); N>1 = fan out across a worker pool.
    :param cache_dir: directory for a :class:`TrialCache`; None
        disables caching.
    :param progress: optional callback receiving a :class:`TrialEvent`
        as each trial completes (in submission order).
    :param trial_timeout: wall-clock seconds allowed per parallel
        trial; exceeding it terminates the pool and raises
        :class:`TrialTimeoutError`.  (Serial trials are bounded by the
        engine's own deadline guard instead.)
    :param start_method: multiprocessing start method override.
    :param heartbeat_dir: directory for per-trial liveness heartbeats
        (``trial-<index>.json``); each trial runs with
        :data:`~repro.telemetry.watchdog.HEARTBEAT_ENV` pointing at
        its own file, and a timed-out trial's last heartbeat is
        surfaced on the warning event and the raised
        :class:`TrialTimeoutError` instead of being lost with the
        killed worker.
    """

    def __init__(
        self,
        workers=1,
        cache_dir=None,
        progress=None,
        trial_timeout=None,
        start_method=None,
        heartbeat_dir=None,
    ):
        self.workers = max(1, int(workers))
        self.cache = TrialCache(cache_dir) if cache_dir else None
        self.progress = progress
        self.trial_timeout = trial_timeout
        self.start_method = start_method
        self.heartbeat_dir = heartbeat_dir
        self.stats = TrialStats()

    # -- public API ------------------------------------------------------

    def run(self, specs):
        """Run every spec; returns results in spec order.

        Cached trials are served without execution; the remainder run
        serially or on the pool.  Results are identical either way
        because each trial is a pure function of its spec.
        """
        specs = list(specs)
        total = len(specs)
        results = [None] * total
        pending = []
        keys = {}
        for index, spec in enumerate(specs):
            if self.cache is not None and spec.cacheable():
                key = spec.fingerprint()
                keys[index] = key
                hit = self.cache.get(key)
                if hit is not CACHE_MISS:
                    results[index] = hit
                    self.stats.cached += 1
                    self._emit(TrialEvent(index, total, spec.label, 0.0, "cache"))
                    continue
            pending.append(index)

        if pending:
            if self.workers == 1:
                self._run_serial(specs, pending, results, keys, total)
            else:
                self._run_pool(specs, pending, results, keys, total)
        return results

    def run_one(self, spec):
        """Run a single spec (cache-aware); returns its result."""
        return self.run([spec])[0]

    # -- internals -------------------------------------------------------

    def _emit(self, event):
        if self.progress is not None:
            self.progress(event)

    def _finish(self, index, total, spec, result, elapsed, keys, duration=None):
        self.stats.executed += 1
        self.stats.seconds += elapsed
        if self.cache is not None and index in keys:
            self.cache.put(keys[index], result)
        self._emit(
            TrialEvent(
                index, total, spec.label, elapsed, "executed",
                duration=duration,
            )
        )

    def _heartbeat_path(self, index):
        if self.heartbeat_dir is None:
            return None
        os.makedirs(self.heartbeat_dir, exist_ok=True)
        return os.path.join(self.heartbeat_dir, "trial-{}.json".format(index))

    def _run_serial(self, specs, pending, results, keys, total):
        for index in pending:
            started = time.perf_counter()
            result, elapsed = execute_trial(
                specs[index], heartbeat_path=self._heartbeat_path(index)
            )
            results[index] = result
            self._finish(
                index, total, specs[index], result, elapsed, keys,
                duration=time.perf_counter() - started,
            )

    def _run_pool(self, specs, pending, results, keys, total):
        for index in pending:
            try:
                pickle.dumps(specs[index])
            except Exception as error:
                raise ValueError(
                    "trial {!r} is not picklable and cannot run on a "
                    "worker pool (use module-level factories, or "
                    "workers=1): {}".format(specs[index].label, error)
                )
        context = multiprocessing.get_context(
            self.start_method or _preferred_start_method()
        )
        pool = context.Pool(processes=min(self.workers, len(pending)))
        try:
            submitted = time.perf_counter()
            handles = [
                (
                    index,
                    pool.apply_async(
                        execute_trial,
                        (specs[index],),
                        {"heartbeat_path": self._heartbeat_path(index)},
                    ),
                )
                for index in pending
            ]
            for index, handle in handles:
                try:
                    result, elapsed = handle.get(timeout=self.trial_timeout)
                except multiprocessing.TimeoutError:
                    pool.terminate()
                    self._timeout(index, total, specs[index], submitted)
                results[index] = result
                self._finish(
                    index, total, specs[index], result, elapsed, keys,
                    duration=time.perf_counter() - submitted,
                )
        finally:
            pool.terminate()
            pool.join()

    def _timeout(self, index, total, spec, submitted):
        """Report a hung trial loudly, then raise.

        The killed worker cannot tell us anything, but its last
        liveness heartbeat (if the trial ran with one) names the cycle
        the run got to — the difference between "the soak wedged at
        cycle 8400 with 3 sends pending" and a silent timeout.
        """
        heartbeat = None
        path = self._heartbeat_path(index)
        if path is not None:
            heartbeat = read_heartbeat(path)
        detail = (
            "last heartbeat at cycle {} ({} finished{})".format(
                heartbeat.get("cycle"),
                heartbeat.get("delivered"),
                ", stalled" if heartbeat.get("stalled") else "",
            )
            if heartbeat
            else "no heartbeat recorded"
        )
        message = "trial {!r} exceeded the {}s wall-clock timeout ({})".format(
            spec.label, self.trial_timeout, detail
        )
        logger.warning(message)
        self._emit(
            TrialEvent(
                index,
                total,
                spec.label,
                self.trial_timeout,
                "timeout",
                duration=time.perf_counter() - submitted,
                heartbeat=heartbeat,
            )
        )
        raise TrialTimeoutError(message, heartbeat=heartbeat)


def run_trials(
    specs,
    workers=1,
    cache_dir=None,
    progress=None,
    trial_timeout=None,
    heartbeat_dir=None,
):
    """One-shot convenience: build a :class:`TrialRunner` and run."""
    runner = TrialRunner(
        workers=workers,
        cache_dir=cache_dir,
        progress=progress,
        trial_timeout=trial_timeout,
        heartbeat_dir=heartbeat_dir,
    )
    return runner.run(specs)
