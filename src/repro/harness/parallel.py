"""Parallel trial execution: worker pools, seed streams, result cache.

Every sweep in :mod:`repro.harness` is a set of *independent* trials —
one network, one workload, one measured window — whose results are
aggregated afterwards.  That structure is embarrassingly parallel, and
this module is the shared execution layer that exploits it:

* :class:`TrialSpec` — a picklable description of one trial: a runner
  function (named by ``"module:function"`` so worker processes import
  it fresh), its parameters, and the trial's derived seed.
* :class:`TrialCache` — an on-disk result store keyed by a content
  hash of (runner, parameters, seed, code version), so re-running a
  sweep skips every point that has already been computed.
* :class:`TrialRunner` — executes a list of specs, serially
  (``workers=1``) or on a *supervised* worker pool, consulting the
  cache first and reporting per-trial progress/timing events.

The pool is supervised rather than a bare ``multiprocessing.Pool``:
the parent dispatches one trial at a time to each worker process and
watches the workers themselves, so a worker that *dies* mid-trial
(SIGKILL, OOM-kill, a segfaulting extension — failures an exception
handler never sees) is detected, reaped and replaced, and its trial is
retried under a :class:`TrialBackoff` policy (exponential backoff with
jitter and a per-trial attempt budget, mirroring
:mod:`repro.endpoint.retry`).  A trial that keeps killing its workers
is eventually *quarantined*: the sweep completes and the poison trial
surfaces as a structured :class:`QuarantinedTrial` report in the
results instead of hanging or crashing the whole sweep.  When a dead
worker cannot be respawned the pool shrinks and carries on with the
workers it has.  See ``docs/resilience.md``.

Durability: pass ``journal=`` (a :class:`~repro.harness.journal
.RunJournal` or a path) and every trial's state transitions
(queued → running → done/failed/quarantined) are appended to a
crash-safe JSONL journal as they happen; SIGTERM/SIGINT mid-sweep
flushes the journal and shuts the pool down cleanly instead of tearing
the run.  :func:`repro.harness.journal.resume_sweep` replays such a
journal against the trial cache so an interrupted sweep finishes from
where it died.

Determinism: each trial receives its own seed derived from the sweep's
root seed via :func:`repro.core.random_source.derive_seed`, and every
trial builds its network/workload from that seed alone.  No state is
shared between trials, so a pool of workers and a serial loop produce
bit-identical results — the serial-vs-parallel equivalence test in
``tests/harness/test_parallel.py`` pins this.

Cache invalidation: the cache key includes a fingerprint of the
installed ``repro`` source tree, so any code change invalidates every
cached trial.  ``REPRO_CODE_VERSION`` overrides the fingerprint (for
benchmarking cache behaviour itself).  See ``docs/parallel.md``.
"""

import collections
import hashlib
import heapq
import importlib
import json
import logging
import multiprocessing
import os
import pickle
import queue as queue_module
import random
import signal
import tempfile
import threading
import time
import traceback

from repro.telemetry.watchdog import HEARTBEAT_ENV, read_heartbeat

logger = logging.getLogger(__name__)

#: Sentinel for a cache lookup that found nothing.
CACHE_MISS = object()


class TrialTimeoutError(RuntimeError):
    """A worker trial exceeded the runner's wall-clock timeout.

    The hung worker is killed and the pool shut down before this is
    raised, so a stuck trial never leaves orphaned workers behind.
    When the runner was given a ``heartbeat_dir``, :attr:`heartbeat`
    carries the hung trial's last liveness heartbeat (cycle, delivered
    count, stall flag) so the failure names where the run got to
    instead of timing out silently.  Raised only when the trial's
    attempt budget is exhausted and the runner is not quarantining
    (see :class:`TrialRunner`).
    """

    def __init__(self, message, heartbeat=None):
        super().__init__(message)
        self.heartbeat = heartbeat


class WorkerCrashError(RuntimeError):
    """A pool worker died (SIGKILL/OOM/segfault) while running a trial.

    Raised only when the trial's attempt budget is exhausted and the
    runner is not quarantining; with ``on_exhausted="quarantine"`` the
    sweep completes and the trial surfaces as a
    :class:`QuarantinedTrial` instead.
    """


class SweepInterrupted(RuntimeError):
    """SIGTERM/SIGINT arrived mid-sweep (journaled runs only).

    The runner flushes a ``sweep.interrupted`` journal record and
    shuts the pool down cleanly before raising, so the journal +
    trial cache describe exactly what finished —
    :func:`repro.harness.journal.resume_sweep` picks up from there.
    """

    def __init__(self, message, signum=None):
        super().__init__(message)
        self.signum = signum


# ---------------------------------------------------------------------------
# Canonicalization (hashing parameters that may include callables)
# ---------------------------------------------------------------------------


def _canonicalize(value, opaque):
    """A JSON-able canonical form of ``value`` for content hashing.

    Callables and classes are named by ``module:qualname``; an object
    exposing a ``cache_token()`` method (e.g. a
    :class:`~repro.sim.snapshot.Snapshot`, whose token is its content
    hash) is keyed by that token; anything else without a stable
    importable identity (lambdas, closures, instances of arbitrary
    classes) is rendered opaquely and flips ``opaque[0]`` so the spec
    is marked uncacheable rather than cached under an ambiguous key.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, (list, tuple)):
        return [_canonicalize(v, opaque) for v in value]
    if isinstance(value, dict):
        return [
            [_canonicalize(k, opaque), _canonicalize(v, opaque)]
            for k, v in sorted(value.items(), key=lambda kv: repr(kv[0]))
        ]
    if not isinstance(value, type):
        token = getattr(value, "cache_token", None)
        if callable(token):
            return "token:{}".format(token())
    if callable(value):
        module = getattr(value, "__module__", None)
        qualname = getattr(value, "__qualname__", None)
        if module and qualname and "<" not in qualname:
            return "callable:{}:{}".format(module, qualname)
        opaque[0] = True
        return "opaque-callable:{}".format(qualname or repr(value))
    opaque[0] = True
    return "opaque:{}".format(repr(value))


class TrialSpec:
    """One independent trial, ready to run anywhere.

    :param runner: the trial function — either a ``"module:function"``
        string (preferred: always picklable, cache keys are stable) or
        a module-level callable.  It is invoked as
        ``runner(seed=seed, **params)`` and must return a picklable
        result.
    :param params: keyword arguments for the runner.  Values may
        include module-level callables (network factories, traffic
        classes); lambdas work in serial runs but make the spec
        uncacheable and unpicklable.
    :param seed: this trial's seed — derive it from the sweep's root
        seed with :func:`repro.core.random_source.derive_seed`.
    :param label: display name for progress output.
    """

    def __init__(self, runner, params=None, seed=0, label=None):
        self.runner = runner
        self.params = dict(params or {})
        self.seed = seed
        self.label = label if label is not None else self._default_label()

    def _default_label(self):
        name = self.runner if isinstance(self.runner, str) else getattr(
            self.runner, "__name__", repr(self.runner)
        )
        return "{}(seed={})".format(name.rsplit(":", 1)[-1], self.seed)

    def resolve_runner(self):
        """The runner callable (importing it if named by string)."""
        if isinstance(self.runner, str):
            module_name, _, attr = self.runner.partition(":")
            if not attr:
                raise ValueError(
                    "runner string must be 'module:function', got {!r}".format(
                        self.runner
                    )
                )
            return getattr(importlib.import_module(module_name), attr)
        return self.runner

    def canonical(self):
        """(canonical structure, cacheable flag) for this spec."""
        opaque = [False]
        structure = {
            "runner": _canonicalize(
                self.runner if isinstance(self.runner, str)
                else self.resolve_runner(),
                opaque,
            ),
            "params": _canonicalize(self.params, opaque),
            "seed": self.seed,
        }
        return structure, not opaque[0]

    def cacheable(self):
        """True when every parameter has a stable hashable identity."""
        return self.canonical()[1]

    def fingerprint(self, code_version=None):
        """Cache key: sha256 over (code version, runner, params, seed)."""
        structure, _cacheable = self.canonical()
        structure["code"] = (
            code_version if code_version is not None else repro_code_version()
        )
        blob = json.dumps(structure, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def __repr__(self):
        return "<TrialSpec {} seed={}>".format(self.label, self.seed)


def execute_trial(spec, heartbeat_path=None):
    """Run one spec; returns ``(result, elapsed_seconds)``.

    Module-level so worker processes can unpickle references to it.
    ``heartbeat_path`` exports :data:`~repro.telemetry.watchdog
    .HEARTBEAT_ENV` for the duration of the trial, so any harness that
    attaches a :class:`~repro.telemetry.watchdog.RunWatchdog` writes
    liveness heartbeats there (restored afterwards — worker processes
    run many trials back to back).
    """
    if os.environ.get("REPRO_CHAOSMONKEY"):
        # Test/CI-only fault injector; the env lookup is the only cost
        # in production runs.  See repro.harness.chaosmonkey.
        from repro.harness import chaosmonkey

        chaosmonkey.maybe_strike(spec)
    start = time.perf_counter()
    runner = spec.resolve_runner()
    if heartbeat_path is None:
        result = runner(seed=spec.seed, **spec.params)
    else:
        previous = os.environ.get(HEARTBEAT_ENV)
        os.environ[HEARTBEAT_ENV] = heartbeat_path
        try:
            result = runner(seed=spec.seed, **spec.params)
        finally:
            if previous is None:
                os.environ.pop(HEARTBEAT_ENV, None)
            else:
                os.environ[HEARTBEAT_ENV] = previous
    return result, time.perf_counter() - start


# ---------------------------------------------------------------------------
# Retry policy + quarantine report (worker supervision)
# ---------------------------------------------------------------------------


class TrialBackoff:
    """Backoff policy for re-dispatching failed trial attempts.

    The harness-scale mirror of
    :class:`repro.endpoint.retry.ExponentialBackoff`: the wait ceiling
    grows by ``factor`` with each failed attempt up to ``max_delay``
    seconds, and with ``jitter`` the actual wait is drawn uniformly
    from ``[0, ceiling]`` (decorrelates retries when several workers
    died together, e.g. an OOM sweep).  ``max_attempts`` is the
    per-trial attempt budget — the harness analogue of
    :class:`repro.endpoint.retry.BudgetedRetries` — after which the
    trial is quarantined or the failure raised (the runner's
    ``on_exhausted`` knob).
    """

    def __init__(
        self, max_attempts=3, base=0.25, factor=2.0, max_delay=30.0,
        jitter=True, seed=0,
    ):
        if max_attempts < 1:
            raise ValueError(
                "max_attempts must be >= 1, got {}".format(max_attempts)
            )
        if base < 0 or factor < 1.0 or max_delay < base:
            raise ValueError(
                "need base >= 0, factor >= 1, max_delay >= base; got "
                "({}, {}, {})".format(base, factor, max_delay)
            )
        self.max_attempts = int(max_attempts)
        self.base = base
        self.factor = factor
        self.max_delay = max_delay
        self.jitter = jitter
        self._rng = random.Random(seed)

    def delay(self, attempt):
        """Seconds to wait before re-dispatching after failed ``attempt``."""
        ceiling = min(
            self.max_delay, self.base * self.factor ** max(0, attempt - 1)
        )
        if self.jitter:
            return self._rng.uniform(0.0, ceiling)
        return ceiling

    def describe(self):
        return "backoff(attempts={}, base={}s, factor={}{})".format(
            self.max_attempts, self.base, self.factor,
            ", jitter" if self.jitter else "",
        )


def _normalize_retries(retries):
    """``retries`` knob -> a :class:`TrialBackoff` (int = attempt budget)."""
    if retries is None:
        return TrialBackoff(max_attempts=1, base=0.0)
    if isinstance(retries, int):
        return TrialBackoff(max_attempts=retries)
    return retries


class QuarantinedTrial:
    """Structured report for a poison trial the sweep gave up on.

    Takes the trial's slot in the results list when a
    :class:`TrialRunner` running with ``on_exhausted="quarantine"``
    exhausts the attempt budget, so the sweep *completes* and the
    failure is inspectable data — label, per-attempt failure records
    (kind, detail, worker exit code) — instead of a dead sweep.  Plain
    data only, so quarantine reports pickle and journal like results.
    """

    quarantined = True

    def __init__(self, label, key, seed, attempts, failures):
        self.label = label
        self.key = key
        self.seed = seed
        self.attempts = attempts
        #: One dict per failed attempt: ``attempt``, ``kind``
        #: ("crash" | "timeout" | "error"), ``detail``, ``exitcode``.
        self.failures = [dict(f) for f in failures]

    def as_dict(self):
        return {
            "label": self.label,
            "key": self.key,
            "seed": self.seed,
            "attempts": self.attempts,
            "failures": [dict(f) for f in self.failures],
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            data.get("label"),
            data.get("key"),
            data.get("seed"),
            data.get("attempts"),
            data.get("failures", ()),
        )

    def __repr__(self):
        kinds = collections.Counter(f.get("kind") for f in self.failures)
        return "<QuarantinedTrial {} after {} attempt(s): {}>".format(
            self.label,
            self.attempts,
            ", ".join("{} x{}".format(k, n) for k, n in sorted(kinds.items()))
            or "no failures recorded",
        )


def is_quarantined(result):
    """True when a sweep result slot holds a quarantine report."""
    return isinstance(result, QuarantinedTrial)


def partition_quarantined(results):
    """Split sweep results into ``(ok_results, quarantined_reports)``."""
    ok, quarantined = [], []
    for result in results:
        (quarantined if is_quarantined(result) else ok).append(result)
    return ok, quarantined


def journal_trial_key(spec):
    """The stable identity a journal records for ``spec``.

    Cacheable specs use their content fingerprint (so the journal and
    the trial cache agree on identity); uncacheable ones fall back to
    ``"label:<label>"`` — resumable only if labels are unique and
    stable across runs.
    """
    if spec.cacheable():
        return spec.fingerprint()
    return "label:" + str(spec.label)


def result_content_hash(result):
    """sha256 hex digest of the pickled result.

    The journal records this for every finished trial, so a resumed
    sweep can *prove* the cache entry it is about to serve is the very
    bytes the original run produced (same protocol as
    :meth:`TrialCache.put` writes).
    """
    blob = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
    return hashlib.sha256(blob).hexdigest()


# ---------------------------------------------------------------------------
# Code-version fingerprint (cache invalidation on source change)
# ---------------------------------------------------------------------------

_CODE_VERSION = None


def repro_code_version():
    """A fingerprint of the installed ``repro`` source tree.

    sha256 over every ``.py`` file's path and contents (plus the
    package version), computed once per process.  Any source edit
    therefore invalidates the whole trial cache — stale results can
    never masquerade as current ones.  Set ``REPRO_CODE_VERSION`` to
    pin the fingerprint explicitly.
    """
    global _CODE_VERSION
    override = os.environ.get("REPRO_CODE_VERSION")
    if override:
        return override
    if _CODE_VERSION is None:
        import repro

        digest = hashlib.sha256()
        digest.update(getattr(repro, "__version__", "?").encode())
        root = os.path.dirname(os.path.abspath(repro.__file__))
        for dirpath, dirnames, filenames in sorted(os.walk(root)):
            dirnames.sort()
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                digest.update(os.path.relpath(path, root).encode())
                with open(path, "rb") as handle:
                    digest.update(handle.read())
        _CODE_VERSION = digest.hexdigest()
    return _CODE_VERSION


# ---------------------------------------------------------------------------
# On-disk trial cache
# ---------------------------------------------------------------------------


class TrialCache:
    """Pickled trial results under ``root/<key[:2]>/<key>.pkl``.

    Keys are :meth:`TrialSpec.fingerprint` hex digests.  Writes are
    atomic (temp file + rename) so concurrent sweeps sharing a cache
    directory never read torn files; unreadable entries are treated as
    misses and recomputed.
    """

    def __init__(self, root):
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, key):
        return os.path.join(self.root, key[:2], key + ".pkl")

    def get(self, key):
        """The cached result for ``key``, or :data:`CACHE_MISS`.

        An *absent* entry is a silent miss.  A *present but
        unreadable* entry — truncated write, flipped bytes, foreign
        pickle, renamed class — is also a miss (the trial recomputes
        and overwrites it), but logged as a warning: corruption should
        never crash a sweep, and should never pass silently either.
        """
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                result = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return CACHE_MISS
        except Exception as error:
            logger.warning(
                "corrupt trial-cache entry %s (%s: %s); treating as a "
                "miss and recomputing", path, type(error).__name__, error,
            )
            self.misses += 1
            return CACHE_MISS
        self.hits += 1
        return result

    def put(self, key, result):
        """Store ``result`` under ``key`` (atomically)."""
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self):
        count = 0
        for _dirpath, _dirnames, filenames in os.walk(self.root):
            count += sum(1 for f in filenames if f.endswith(".pkl"))
        return count


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------


class TrialEvent:
    """One progress report: trial ``index`` of ``total`` finished.

    ``source`` is ``"executed"``, ``"cache"``, ``"resumed"`` (served
    from the cache via a journal replay —
    :func:`repro.harness.journal.resume_sweep`), ``"timeout"`` (the
    trial was killed at the runner's wall-clock limit), or
    ``"quarantined"`` (the trial exhausted its attempt budget and the
    sweep carried on without it).  On a parallel pool, events fire in
    *completion* order, which can differ from submission order.
    ``seconds``
    is the trial's own compute time (0.0 for cache hits);
    ``duration`` is wall-clock from submission to completion as the
    runner saw it, including pool queueing — on a saturated pool
    ``duration >> seconds`` means the trial *waited*, not that it was
    slow.  ``heartbeat`` is the hung trial's last liveness heartbeat
    dict on timeout events, else None.
    """

    __slots__ = ("index", "total", "label", "seconds", "source", "duration", "heartbeat")

    def __init__(
        self, index, total, label, seconds, source,
        duration=None, heartbeat=None,
    ):
        self.index = index
        self.total = total
        self.label = label
        self.seconds = seconds
        self.source = source
        self.duration = seconds if duration is None else duration
        self.heartbeat = heartbeat

    @property
    def cached(self):
        return self.source in ("cache", "resumed")

    @property
    def timed_out(self):
        return self.source == "timeout"

    @property
    def quarantined(self):
        return self.source == "quarantined"

    def __repr__(self):
        return "<TrialEvent {}/{} {} {}>".format(
            self.index + 1, self.total, self.label, self.source
        )


class TrialStats:
    """Counters for one :meth:`TrialRunner.run` batch (cumulative)."""

    def __init__(self):
        self.executed = 0
        self.cached = 0
        self.seconds = 0.0

    def __repr__(self):
        return "<TrialStats executed={} cached={} {:.2f}s>".format(
            self.executed, self.cached, self.seconds
        )


def _preferred_start_method():
    # fork is markedly cheaper and inherits sys.path (so specs built
    # from test-local factories resolve); fall back to spawn where fork
    # does not exist (Windows) — specs must then be import-resolvable.
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def _supervised_worker(conn, result_queue):
    """Worker-process main loop: recv a task, run it, report back.

    Tasks arrive as ``(index, attempt, spec, heartbeat_path)`` on the
    worker's private pipe; ``None`` (or a closed pipe) shuts the
    worker down.  Results go back on the shared queue as plain
    picklable tuples — the result/exception is pre-pickled *here*, in
    the worker, so a value that fails to pickle becomes a reported
    error instead of wedging the queue's feeder thread.
    """
    # The supervisor owns interrupt handling; a terminal SIGINT goes to
    # the whole process group and must not race workers into dying
    # before the parent journals the shutdown.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # non-main thread / exotic platform
        pass
    pid = os.getpid()
    ppid = os.getppid()
    while True:
        try:
            # Poll rather than block: if the supervisor is SIGKILLed,
            # sibling workers (forked later) still hold the parent end
            # of this pipe, so EOF never arrives.  Orphaning — getppid
            # no longer the supervisor — is the reliable death signal;
            # without this check killed sweeps leak idle workers that
            # block on the pipe forever.
            while not conn.poll(1.0):
                if os.getppid() != ppid:
                    return
            task = conn.recv()
        except (EOFError, OSError):
            return
        if task is None:
            return
        index, attempt, spec, heartbeat_path = task
        try:
            result, elapsed = execute_trial(spec, heartbeat_path=heartbeat_path)
            payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
            message = (pid, index, attempt, "ok", payload, elapsed, None)
        except BaseException as error:
            detail = "{}: {}\n{}".format(
                type(error).__name__, error, traceback.format_exc()
            )
            try:
                payload = pickle.dumps(error, protocol=pickle.HIGHEST_PROTOCOL)
            except Exception:
                payload = None
            message = (pid, index, attempt, "error", payload, None, detail)
        result_queue.put(message)


class _PoolWorker:
    """Supervisor-side handle on one worker process."""

    __slots__ = ("process", "conn", "busy", "deadline")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        self.busy = None  # (index, attempt) while a task is dispatched
        self.deadline = None

    @property
    def dead(self):
        return self.process.exitcode is not None

    def kill(self):
        try:
            self.process.kill()
        except Exception:
            pass

    def reap(self, timeout=5.0):
        self.process.join(timeout)
        if self.process.is_alive():
            self.kill()
            self.process.join(1.0)
        try:
            self.conn.close()
        except Exception:
            pass


class TrialRunner:
    """Execute :class:`TrialSpec` lists with caching and parallelism.

    :param workers: 1 = run in-process (no pool, no pickling
        requirements); N>1 = fan out across a supervised worker pool.
    :param cache_dir: directory for a :class:`TrialCache`; None
        disables caching.
    :param progress: optional callback receiving a :class:`TrialEvent`
        as each trial completes (in completion order on a pool).
    :param trial_timeout: wall-clock seconds allowed per parallel
        trial; exceeding it kills and recycles the hung worker, then
        retries/quarantines/raises per the retry policy.  (Serial
        trials are bounded by the engine's own deadline guard
        instead.)
    :param start_method: multiprocessing start method override.
    :param heartbeat_dir: directory for per-trial liveness heartbeats
        (``trial-<index>.json``); each trial runs with
        :data:`~repro.telemetry.watchdog.HEARTBEAT_ENV` pointing at
        its own file, and a timed-out trial's last heartbeat is
        surfaced on the warning event and the raised
        :class:`TrialTimeoutError` instead of being lost with the
        killed worker.
    :param journal: a :class:`repro.harness.journal.RunJournal` (or a
        path to create one at) that receives every trial state
        transition as a durable JSONL record; also arms SIGTERM/SIGINT
        handling so an interrupted sweep journals its shutdown and
        stops cleanly (:class:`SweepInterrupted`) instead of tearing.
    :param retries: per-trial attempt budget — a :class:`TrialBackoff`,
        an int (= ``max_attempts`` with default backoff), or None
        (single attempt, the historical behaviour).
    :param on_exhausted: what to do when a trial's attempt budget runs
        out: ``"raise"`` (default — surface the last failure as
        :class:`TrialTimeoutError` / :class:`WorkerCrashError` / the
        trial's own exception) or ``"quarantine"`` (the sweep
        completes; the trial's result slot holds a
        :class:`QuarantinedTrial` report).
    :param resume_from: path to an existing run journal to resume
        from: every :meth:`run` batch first serves trials the journal
        shows finished (content-hash-verified against the trial
        cache, source ``"resumed"``) and re-executes only the rest.
        Works across multiple batches on one runner (lazy sweeps).
    :param resume_partial: optional ``(index, spec, state) -> result
        or None`` hook for trials the journal shows *mid-flight* —
        how the chaos harness finishes a half-done soak from its
        snapshot ring (:func:`repro.harness.chaos
        .chaos_journal_partial`) instead of restarting it.
    """

    def __init__(
        self,
        workers=1,
        cache_dir=None,
        progress=None,
        trial_timeout=None,
        start_method=None,
        heartbeat_dir=None,
        journal=None,
        retries=None,
        on_exhausted=None,
        resume_from=None,
        resume_partial=None,
    ):
        self.workers = max(1, int(workers))
        self.cache = TrialCache(cache_dir) if cache_dir else None
        self.progress = progress
        self.trial_timeout = trial_timeout
        self.start_method = start_method
        self.heartbeat_dir = heartbeat_dir
        # Resume state is replayed before the journal handle opens so
        # a missing/empty resume file fails loudly instead of being
        # created empty by the append-mode open below.
        self.resume_state = None
        self.resume_partial = resume_partial
        if resume_from:
            from repro.harness.journal import load_journal_state

            self.resume_state = load_journal_state(resume_from)
        if isinstance(journal, (str, os.PathLike)):
            from repro.harness.journal import RunJournal

            journal = RunJournal(journal)
        self.journal = journal
        self.retries = _normalize_retries(retries)
        if on_exhausted is None:
            on_exhausted = "raise"
        if on_exhausted not in ("raise", "quarantine"):
            raise ValueError(
                "on_exhausted must be 'raise' or 'quarantine', got "
                "{!r}".format(on_exhausted)
            )
        self.on_exhausted = on_exhausted
        self.stats = TrialStats()
        self._interrupt = None
        self._journal_keys = {}

    # -- public API ------------------------------------------------------

    def run(self, specs, precomputed=None):
        """Run every spec; returns results in spec order.

        Cached trials are served without execution; the remainder run
        serially or on the pool.  Results are identical either way
        because each trial is a pure function of its spec.
        ``precomputed`` maps spec indices to already-known results
        (how :func:`repro.harness.journal.resume_sweep` feeds finished
        trials back in); those are served with source ``"resumed"``.
        """
        specs = list(specs)
        total = len(specs)
        results = [None] * total
        pending = []
        keys = {}
        precomputed = dict(precomputed or {})
        self._journal_keys = {}
        if self.resume_state is not None:
            from repro.harness.journal import precomputed_from_state

            for index, result in precomputed_from_state(
                self.resume_state, specs, self.cache,
                partial=self.resume_partial,
            ).items():
                precomputed.setdefault(index, result)
        if self.journal is not None:
            self.journal.record(
                "sweep.start",
                total=total,
                workers=self.workers,
                retries=self.retries.describe(),
                on_exhausted=self.on_exhausted,
                trials=[
                    {
                        "index": i,
                        "key": self._journal_key(specs[i]),
                        "label": specs[i].label,
                        "seed": specs[i].seed,
                    }
                    for i in range(total)
                ],
            )
        for index, spec in enumerate(specs):
            if index in precomputed:
                result = precomputed[index]
                results[index] = result
                self.stats.cached += 1
                if self.journal is not None:
                    self._journal_trial(
                        "trial.done", index, spec, source="resumed",
                        elapsed=0.0, result_hash=result_content_hash(result),
                    )
                self._emit(TrialEvent(index, total, spec.label, 0.0, "resumed"))
                continue
            if self.cache is not None and spec.cacheable():
                key = spec.fingerprint()
                keys[index] = key
                hit = self.cache.get(key)
                if hit is not CACHE_MISS:
                    results[index] = hit
                    self.stats.cached += 1
                    if self.journal is not None:
                        self._journal_trial(
                            "trial.done", index, spec, source="cache",
                            elapsed=0.0, result_hash=result_content_hash(hit),
                        )
                    self._emit(TrialEvent(index, total, spec.label, 0.0, "cache"))
                    continue
            pending.append(index)
            self._journal_trial("trial.queued", index, spec, seed=spec.seed)

        if pending:
            restore = self._install_signal_handlers()
            try:
                if self.workers == 1:
                    self._run_serial(specs, pending, results, keys, total)
                else:
                    self._run_pool(specs, pending, results, keys, total)
            finally:
                restore()
        if self.journal is not None:
            _ok, quarantined = partition_quarantined(results)
            self.journal.record(
                "sweep.end",
                total=total,
                executed=self.stats.executed,
                cached=self.stats.cached,
                quarantined=len(quarantined),
            )
        return results

    def run_one(self, spec):
        """Run a single spec (cache-aware); returns its result."""
        return self.run([spec])[0]

    # -- internals -------------------------------------------------------

    def _emit(self, event):
        if self.progress is not None:
            self.progress(event)

    def _journal_key(self, spec):
        key = self._journal_keys.get(id(spec))
        if key is None:
            key = journal_trial_key(spec)
            self._journal_keys[id(spec)] = key
        return key

    def _journal_trial(self, event_kind, index, spec, **fields):
        if self.journal is None:
            return
        self.journal.record(
            event_kind, index=index, key=self._journal_key(spec),
            label=spec.label, **fields,
        )

    def _install_signal_handlers(self):
        """Arm SIGTERM/SIGINT → clean journaled shutdown (journaled runs).

        Returns a restore callable for the ``finally`` block.  No-op
        without a journal (the historical KeyboardInterrupt behaviour
        stands) or off the main thread (the signal module refuses).
        """
        if self.journal is None:
            return lambda: None
        if threading.current_thread() is not threading.main_thread():
            return lambda: None
        self._interrupt = None

        def handler(signum, _frame):
            self._interrupt = signum

        previous = {}
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                previous[signum] = signal.signal(signum, handler)
            except (ValueError, OSError):
                pass

        def restore():
            for signum, prev in previous.items():
                try:
                    signal.signal(signum, prev)
                except (ValueError, OSError):
                    pass

        return restore

    def _check_interrupt(self):
        signum = self._interrupt
        if signum is None:
            return
        self._interrupt = None
        try:
            name = signal.Signals(signum).name
        except ValueError:
            name = str(signum)
        logger.warning("sweep interrupted by %s; flushing journal", name)
        if self.journal is not None:
            self.journal.record("sweep.interrupted", signum=int(signum), signal=name)
            self.journal.close()
        raise SweepInterrupted(
            "sweep interrupted by {}".format(name), signum=signum
        )

    def _finish(self, index, total, spec, result, elapsed, keys, duration=None):
        self.stats.executed += 1
        self.stats.seconds += elapsed
        if self.cache is not None and index in keys:
            self.cache.put(keys[index], result)
        self._journal_trial(
            "trial.done", index, spec, source="executed", elapsed=elapsed,
            result_hash=(
                result_content_hash(result)
                if self.journal is not None else None
            ),
        )
        self._emit(
            TrialEvent(
                index, total, spec.label, elapsed, "executed",
                duration=duration,
            )
        )

    def _heartbeat_path(self, index):
        if self.heartbeat_dir is None:
            return None
        os.makedirs(self.heartbeat_dir, exist_ok=True)
        return os.path.join(self.heartbeat_dir, "trial-{}.json".format(index))

    def _quarantine(self, index, total, spec, attempts, failures, started,
                    results, heartbeat=None):
        report = QuarantinedTrial(
            spec.label, self._journal_key(spec), spec.seed, attempts, failures,
        )
        results[index] = report
        logger.warning(
            "trial %r quarantined after %d failed attempt(s); sweep continues",
            spec.label, attempts,
        )
        self._journal_trial(
            "trial.quarantined", index, spec, report=report.as_dict(),
        )
        self._emit(
            TrialEvent(
                index, total, spec.label, 0.0, "quarantined",
                duration=time.perf_counter() - started,
                heartbeat=heartbeat,
            )
        )

    def _run_serial(self, specs, pending, results, keys, total):
        for index in pending:
            self._check_interrupt()
            spec = specs[index]
            started = time.perf_counter()
            attempt = 0
            failures = []
            while True:
                attempt += 1
                self._journal_trial(
                    "trial.start", index, spec, attempt=attempt,
                    worker=os.getpid(),
                )
                try:
                    result, elapsed = execute_trial(
                        spec, heartbeat_path=self._heartbeat_path(index)
                    )
                except Exception as error:
                    detail = "{}: {}".format(type(error).__name__, error)
                    failures.append({
                        "attempt": attempt, "kind": "error",
                        "detail": detail, "exitcode": None,
                    })
                    self._journal_trial(
                        "trial.failed", index, spec, attempt=attempt,
                        kind="error", detail=detail, exitcode=None,
                    )
                    if attempt < self.retries.max_attempts:
                        delay = self.retries.delay(attempt)
                        logger.warning(
                            "trial %r attempt %d/%d failed (%s); retrying "
                            "in %.2fs", spec.label, attempt,
                            self.retries.max_attempts, detail, delay,
                        )
                        if delay > 0:
                            time.sleep(delay)
                        continue
                    if self.on_exhausted == "quarantine":
                        self._quarantine(
                            index, total, spec, attempt, failures,
                            started, results,
                        )
                        break
                    raise
                results[index] = result
                self._finish(
                    index, total, spec, result, elapsed, keys,
                    duration=time.perf_counter() - started,
                )
                break

    # -- supervised pool -------------------------------------------------

    def _spawn_worker(self, context, result_queue):
        parent_conn, child_conn = context.Pipe()
        process = context.Process(
            target=_supervised_worker,
            args=(child_conn, result_queue),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _PoolWorker(process, parent_conn)

    def _shutdown_pool(self, workers, result_queue):
        for worker in workers:
            try:
                worker.conn.send(None)
            except Exception:
                pass
        for worker in workers:
            worker.reap(timeout=2.0)
        try:
            result_queue.close()
            result_queue.cancel_join_thread()
        except Exception:
            pass

    def _run_pool(self, specs, pending, results, keys, total):
        for index in pending:
            try:
                pickle.dumps(specs[index])
            except Exception as error:
                raise ValueError(
                    "trial {!r} is not picklable and cannot run on a "
                    "worker pool (use module-level factories, or "
                    "workers=1): {}".format(specs[index].label, error)
                )
        context = multiprocessing.get_context(
            self.start_method or _preferred_start_method()
        )
        result_queue = context.Queue()
        workers = [
            self._spawn_worker(context, result_queue)
            for _ in range(min(self.workers, len(pending)))
        ]
        submitted = time.perf_counter()
        ready = collections.deque(pending)
        delayed = []  # heap of (monotonic ready-time, tiebreak, index)
        tiebreak = 0
        attempts = {index: 0 for index in pending}
        failures = {index: [] for index in pending}
        inflight = {}  # index -> attempt currently dispatched
        done = set()

        def resolve_failure(index, kind, detail, exitcode=None, error=None,
                            heartbeat=None):
            # One failed attempt, whatever the mechanism (crash, hang,
            # exception): journal it, then retry / quarantine / raise
            # per the attempt budget.
            nonlocal tiebreak
            inflight.pop(index, None)
            attempt = attempts[index]
            spec = specs[index]
            failures[index].append({
                "attempt": attempt, "kind": kind,
                "detail": detail, "exitcode": exitcode,
            })
            self._journal_trial(
                "trial.failed", index, spec, attempt=attempt, kind=kind,
                detail=detail, exitcode=exitcode,
            )
            if attempt < self.retries.max_attempts:
                delay = self.retries.delay(attempt)
                logger.warning(
                    "trial %r attempt %d/%d failed (%s); retrying in %.2fs",
                    spec.label, attempt, self.retries.max_attempts, kind,
                    delay,
                )
                tiebreak += 1
                heapq.heappush(
                    delayed, (time.monotonic() + delay, tiebreak, index)
                )
                return
            if self.on_exhausted == "quarantine":
                self._quarantine(
                    index, total, spec, attempt, failures[index],
                    submitted, results, heartbeat=heartbeat,
                )
                done.add(index)
                return
            if kind == "timeout":
                self._timeout(index, total, spec, submitted, heartbeat=heartbeat)
            if kind == "crash":
                raise WorkerCrashError(
                    "worker running trial {!r} died with exit code {} "
                    "(attempt {}/{})".format(
                        spec.label, exitcode, attempt,
                        self.retries.max_attempts,
                    )
                )
            if error is not None:
                raise error
            raise RuntimeError(
                "trial {!r} failed and its exception could not be "
                "pickled back: {}".format(spec.label, detail)
            )

        def recycle(worker, reason):
            # Kill/reap a dead-or-hung worker and try to replace it;
            # the pool shrinks (loudly) when respawning fails.
            worker.kill()
            worker.reap()
            workers.remove(worker)
            try:
                workers.append(self._spawn_worker(context, result_queue))
            except Exception as spawn_error:
                logger.warning(
                    "could not respawn worker after %s (%s: %s); pool "
                    "shrinks to %d worker(s)", reason,
                    type(spawn_error).__name__, spawn_error, len(workers),
                )

        try:
            while len(done) < len(pending):
                self._check_interrupt()
                now = time.monotonic()
                while delayed and delayed[0][0] <= now:
                    _, _, index = heapq.heappop(delayed)
                    ready.append(index)

                # Dispatch to idle workers.
                for worker in workers:
                    if not ready:
                        break
                    if worker.busy is not None or worker.dead:
                        continue
                    index = ready.popleft()
                    attempts[index] += 1
                    attempt = attempts[index]
                    task = (
                        index, attempt, specs[index],
                        self._heartbeat_path(index),
                    )
                    try:
                        worker.conn.send(task)
                    except Exception:
                        # Dead pipe — undo and let the liveness scan
                        # reap the corpse next iteration.
                        attempts[index] -= 1
                        ready.appendleft(index)
                        continue
                    worker.busy = (index, attempt)
                    worker.deadline = (
                        time.monotonic() + self.trial_timeout
                        if self.trial_timeout is not None else None
                    )
                    inflight[index] = attempt
                    self._journal_trial(
                        "trial.start", index, specs[index], attempt=attempt,
                        worker=worker.process.pid,
                    )

                # Drain one result (50ms tick doubles as the
                # supervision cadence).
                try:
                    message = result_queue.get(timeout=0.05)
                except (queue_module.Empty, EOFError, OSError):
                    message = None
                if message is not None:
                    pid, index, attempt, status, payload, elapsed, detail = (
                        message
                    )
                    for worker in workers:
                        if worker.busy == (index, attempt):
                            worker.busy = None
                            worker.deadline = None
                            break
                    # Late replies from killed/superseded attempts are
                    # dropped; the supervisor already resolved them.
                    if index not in done and inflight.get(index) == attempt:
                        if status == "ok":
                            inflight.pop(index, None)
                            result = pickle.loads(payload)
                            results[index] = result
                            done.add(index)
                            self._finish(
                                index, total, specs[index], result, elapsed,
                                keys, duration=time.perf_counter() - submitted,
                            )
                        else:
                            error = None
                            if payload is not None:
                                try:
                                    error = pickle.loads(payload)
                                except Exception:
                                    error = None
                            resolve_failure(
                                index, "error", detail, error=error,
                            )

                # Liveness + deadline scan.
                now = time.monotonic()
                for worker in list(workers):
                    if worker.dead:
                        busy = worker.busy
                        exitcode = worker.process.exitcode
                        worker.busy = None
                        recycle(
                            worker,
                            "worker death (exit code {})".format(exitcode),
                        )
                        if busy is not None:
                            index, attempt = busy
                            if (index not in done
                                    and inflight.get(index) == attempt):
                                logger.warning(
                                    "worker running trial %r died with "
                                    "exit code %s; recycling worker",
                                    specs[index].label, exitcode,
                                )
                                resolve_failure(
                                    index, "crash",
                                    "worker died with exit code {}".format(
                                        exitcode
                                    ),
                                    exitcode=exitcode,
                                )
                    elif (worker.busy is not None
                            and worker.deadline is not None
                            and now >= worker.deadline):
                        index, attempt = worker.busy
                        worker.busy = None
                        heartbeat = None
                        path = self._heartbeat_path(index)
                        if path is not None:
                            heartbeat = read_heartbeat(path)
                        recycle(worker, "trial timeout")
                        if (index not in done
                                and inflight.get(index) == attempt):
                            resolve_failure(
                                index, "timeout",
                                "exceeded {}s wall-clock timeout".format(
                                    self.trial_timeout
                                ),
                                heartbeat=heartbeat,
                            )

                if not workers and len(done) < len(pending):
                    raise WorkerCrashError(
                        "worker pool exhausted: every worker died and none "
                        "could be respawned; {} trial(s) unfinished".format(
                            len(pending) - len(done)
                        )
                    )
        finally:
            self._shutdown_pool(workers, result_queue)

    def _timeout(self, index, total, spec, submitted, heartbeat=None):
        """Report a hung trial loudly, then raise.

        The killed worker cannot tell us anything, but its last
        liveness heartbeat (if the trial ran with one) names the cycle
        the run got to — the difference between "the soak wedged at
        cycle 8400 with 3 sends pending" and a silent timeout.
        """
        if heartbeat is None:
            path = self._heartbeat_path(index)
            if path is not None:
                heartbeat = read_heartbeat(path)
        detail = (
            "last heartbeat at cycle {} ({} finished{})".format(
                heartbeat.get("cycle"),
                heartbeat.get("delivered"),
                ", stalled" if heartbeat.get("stalled") else "",
            )
            if heartbeat
            else "no heartbeat recorded"
        )
        message = "trial {!r} exceeded the {}s wall-clock timeout ({})".format(
            spec.label, self.trial_timeout, detail
        )
        logger.warning(message)
        self._emit(
            TrialEvent(
                index,
                total,
                spec.label,
                self.trial_timeout,
                "timeout",
                duration=time.perf_counter() - submitted,
                heartbeat=heartbeat,
            )
        )
        raise TrialTimeoutError(message, heartbeat=heartbeat)


def run_trials(
    specs,
    workers=1,
    cache_dir=None,
    progress=None,
    trial_timeout=None,
    heartbeat_dir=None,
    journal=None,
    retries=None,
    on_exhausted=None,
):
    """One-shot convenience: build a :class:`TrialRunner` and run."""
    runner = TrialRunner(
        workers=workers,
        cache_dir=cache_dir,
        progress=progress,
        trial_timeout=trial_timeout,
        heartbeat_dir=heartbeat_dir,
        journal=journal,
        retries=retries,
        on_exhausted=on_exhausted,
    )
    return runner.run(specs)
