"""Saturation search: where does the network stop giving more?

Figure 3's load axis ends where the latency curve turns vertical.
:func:`find_saturation` locates that point automatically: it sweeps
the injection rate geometrically until delivered throughput stops
improving, then reports the saturation throughput and the rate at
which it was reached — useful for comparing network variants (size,
dilation, reclamation mode) by a single number.
"""

from repro.endpoint.traffic import UniformRandomTraffic
from repro.harness.experiment import run_experiment
from repro.harness.load_sweep import figure3_network


def find_saturation(
    network_factory=figure3_network,
    start_rate=0.01,
    growth=2.0,
    tolerance=0.05,
    max_steps=8,
    seed=0,
    message_words=20,
    warmup_cycles=800,
    measure_cycles=3000,
):
    """Grow the injection rate until throughput gains fall below
    ``tolerance``; returns ``(saturation_result, all_results)``.

    The saturation result is the first point whose delivered load is
    within ``tolerance`` of its successor's (the curve has flattened).
    """
    results = []
    rate = start_rate
    for _step in range(max_steps):
        network = network_factory(seed=seed)
        traffic = UniformRandomTraffic(
            n_endpoints=network.plan.n_endpoints,
            w=network.codec.w,
            rate=rate,
            message_words=message_words,
            seed=seed + 1,
        )
        result = run_experiment(
            network,
            traffic,
            warmup_cycles=warmup_cycles,
            measure_cycles=measure_cycles,
            label="rate={:.4g}".format(rate),
        )
        results.append(result)
        if len(results) >= 2:
            previous, current = results[-2], results[-1]
            if previous.delivered_load <= 0:
                rate *= growth
                continue
            gain = (
                current.delivered_load - previous.delivered_load
            ) / previous.delivered_load
            if gain < tolerance:
                return previous, results
        rate *= growth
    return results[-1], results
