"""Saturation search: where does the network stop giving more?

Figure 3's load axis ends where the latency curve turns vertical.
:func:`find_saturation` locates that point automatically: it sweeps
the injection rate geometrically until delivered throughput stops
improving, then reports the saturation throughput and the rate at
which it was reached — useful for comparing network variants (size,
dilation, reclamation mode) by a single number.

The candidate rates are known up front (``start_rate`` growing by
``growth`` for ``max_steps``), so each is an independent
:class:`~repro.harness.parallel.TrialSpec`.  A serial runner evaluates
them lazily with early stopping; a parallel runner measures all
candidates concurrently and then applies the *same* stopping rule to
the full series, so both modes return identical results (the parallel
mode merely spends extra work past the knee in exchange for latency).
"""

from repro.core.random_source import derive_seed
from repro.harness.load_sweep import figure3_network, run_load_point
from repro.harness.parallel import TrialRunner, TrialSpec


def run_saturation_point(rate, seed=0, **kwargs):
    """One saturation-search measurement (a relabeled load point)."""
    result = run_load_point(rate, seed=seed, **kwargs)
    result.label = "rate={:.4g}".format(rate)
    return result


def saturation_trial_specs(
    start_rate=0.01,
    growth=2.0,
    max_steps=8,
    seed=0,
    network_factory=figure3_network,
    message_words=20,
    warmup_cycles=800,
    measure_cycles=3000,
    metrics=False,
    backend="reference",
):
    """The geometric rate ladder as :class:`TrialSpec` objects."""
    specs = []
    rate = start_rate
    # metrics/backend only enter the params (and hence the trial cache
    # key) when requested, so default sweeps keep their cache entries.
    extra = {"metrics": True} if metrics else {}
    if backend != "reference":
        extra["backend"] = backend
    for _step in range(max_steps):
        specs.append(
            TrialSpec(
                runner="repro.harness.saturation:run_saturation_point",
                params=dict(
                    rate=rate,
                    network_factory=network_factory,
                    message_words=message_words,
                    warmup_cycles=warmup_cycles,
                    measure_cycles=measure_cycles,
                    **extra
                ),
                seed=derive_seed(seed, "saturation", rate),
                label="rate={:.4g}".format(rate),
            )
        )
        rate *= growth
    return specs


def _saturation_index(results, tolerance):
    """Index of the first flattening point, or None if still growing.

    The rule the serial loop has always used: the curve is saturated at
    point ``k`` when point ``k+1`` improves delivered load by less than
    ``tolerance`` (points with zero delivered load never saturate —
    the network hasn't started carrying traffic yet).
    """
    for k in range(1, len(results)):
        previous, current = results[k - 1], results[k]
        if previous.delivered_load <= 0:
            continue
        gain = (
            current.delivered_load - previous.delivered_load
        ) / previous.delivered_load
        if gain < tolerance:
            return k - 1
    return None


def find_saturation(
    network_factory=figure3_network,
    start_rate=0.01,
    growth=2.0,
    tolerance=0.05,
    max_steps=8,
    seed=0,
    message_words=20,
    warmup_cycles=800,
    measure_cycles=3000,
    metrics=False,
    backend="reference",
    workers=1,
    cache_dir=None,
    progress=None,
    runner=None,
):
    """Grow the injection rate until throughput gains fall below
    ``tolerance``; returns ``(saturation_result, all_results)``.

    The saturation result is the first point whose delivered load is
    within ``tolerance`` of its successor's (the curve has flattened).
    With ``workers`` > 1 all candidate rates are measured concurrently
    and the result series is truncated at the same stopping point the
    serial search would have reached, so the two modes agree exactly.
    """
    specs = saturation_trial_specs(
        start_rate=start_rate,
        growth=growth,
        max_steps=max_steps,
        seed=seed,
        network_factory=network_factory,
        message_words=message_words,
        warmup_cycles=warmup_cycles,
        measure_cycles=measure_cycles,
        metrics=metrics,
        backend=backend,
    )
    if runner is None:
        runner = TrialRunner(workers=workers, cache_dir=cache_dir, progress=progress)

    if runner.workers > 1:
        all_results = runner.run(specs)
        index = _saturation_index(all_results, tolerance)
        if index is None:
            return all_results[-1], all_results
        return all_results[index], all_results[: index + 2]

    results = []
    for spec in specs:
        results.append(runner.run_one(spec))
        index = _saturation_index(results, tolerance)
        if index is not None:
            return results[index], results
    return results[-1], results
