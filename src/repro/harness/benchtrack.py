"""Cross-run benchmark history: append-only records and regression checks.

Every ``benchmarks/bench_*.py`` script measures something (cycles per
second, backend speedup, telemetry overhead) and, until now, threw the
number away — ``benchmarks/results/`` was rewritten per run, so a perf
regression in the event or vector backend would land silently.  This
module is the tracking layer:

* :func:`make_record` / :func:`append_record` — one JSON object per
  benchmark run (git SHA, UTC timestamp, parameters, raw rows, named
  summary metrics), appended to
  ``benchmarks/results/history/<bench>.jsonl``.  Append-only means the
  trajectory across commits is the artifact.
* :func:`load_history` / :func:`compare_latest` — the newest record
  diffed against the trailing median of its predecessors, per metric;
  past-threshold moves in the *bad* direction become
  :class:`Regression` findings.  ``metro-repro bench-check`` turns
  those into a nonzero exit for CI.

Metric conventions: each metric carries ``higher_is_better`` (a
cycles/second drop is a regression; an overhead-percent drop is an
improvement) and ``portable`` — whether the value is comparable across
machines.  Speedup *ratios* and deterministic simulation outputs are
portable; absolute wall-clock rates are not, so CI compares with
``portable_only=True`` against committed history while a developer
box can check its own full history locally.  Records also carry their
``quick`` flag (``REPRO_BENCH_QUICK`` runs measure far less), and
comparisons never mix quick and full records.
"""

import json
import os
import subprocess
import time

#: Record schema version.
RECORD_FORMAT = 1


def git_sha(cwd=None):
    """The current git commit (short), or None outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.decode("ascii", "replace").strip() or None


def metric(value, higher_is_better=True, portable=False):
    """One summary metric for :func:`make_record`."""
    return {
        "value": float(value),
        "higher_is_better": bool(higher_is_better),
        "portable": bool(portable),
    }


def make_record(bench, metrics, params=None, rows=None, quick=False, cwd=None):
    """A history record: provenance + parameters + measurements.

    :param bench: benchmark name (history file stem).
    :param metrics: ``{name: metric(...)}`` summary measurements —
        what :func:`compare_latest` tracks across runs.
    :param params: benchmark configuration (JSON-able).
    :param rows: raw per-point measurements (JSON-able), kept for
        archaeology; comparisons only read ``metrics``.
    """
    return {
        "format": RECORD_FORMAT,
        "bench": bench,
        "git": git_sha(cwd=cwd),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "quick": bool(quick),
        "params": params or {},
        "rows": rows or [],
        "metrics": dict(metrics),
    }


def history_path(history_dir, bench):
    return os.path.join(history_dir, "{}.jsonl".format(bench))


def append_record(history_dir, record):
    """Append ``record`` to its bench's history file; returns the path."""
    os.makedirs(history_dir, exist_ok=True)
    path = history_path(history_dir, record["bench"])
    with open(path, "a") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return path


def load_history(path):
    """Parse one history file into a list of records (oldest first).

    Tolerates a torn final line (an interrupted append); any other
    malformed line raises.
    """
    records = []
    with open(path) as handle:
        lines = handle.readlines()
    for number, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except ValueError:
            if number == len(lines):
                break
            raise ValueError(
                "malformed history record on line {} of {}".format(
                    number, path
                )
            )
    return records


class Regression(object):
    """One metric that moved past threshold in the bad direction."""

    __slots__ = ("bench", "metric", "latest", "baseline", "change", "record")

    def __init__(self, bench, metric, latest, baseline, change, record):
        self.bench = bench
        self.metric = metric
        self.latest = latest
        self.baseline = baseline
        #: Fractional move in the bad direction (0.5 = 50% worse).
        self.change = change
        self.record = record

    def describe(self):
        return (
            "{}/{}: {:.4g} vs baseline {:.4g} ({:+.1f}% worse)".format(
                self.bench,
                self.metric,
                self.latest,
                self.baseline,
                100.0 * self.change,
            )
        )

    def __repr__(self):
        return "<Regression {}>".format(self.describe())


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def compare_latest(
    records,
    threshold=0.3,
    window=5,
    min_history=2,
    portable_only=False,
):
    """Regressions in the newest record vs its trailing-median baseline.

    The newest record's metrics are compared against the median of up
    to ``window`` immediately-preceding records with the same
    ``quick`` flag (medians shrug off one noisy or broken historical
    run).  A metric regresses when it is worse than baseline by more
    than ``threshold`` (fractional: lower-is-better metrics compare
    ``latest/baseline - 1``, higher-is-better ``baseline/latest - 1``).

    Returns ``(regressions, compared)`` — ``compared`` counts metrics
    actually baselined; 0 means not enough history yet (fewer than
    ``min_history`` prior records), which is never a failure.
    """
    if not records:
        return [], 0
    latest = records[-1]
    prior = [
        r for r in records[:-1]
        if bool(r.get("quick")) == bool(latest.get("quick"))
    ]
    if len(prior) < min_history:
        return [], 0
    prior = prior[-window:]
    regressions = []
    compared = 0
    for name, info in sorted(latest.get("metrics", {}).items()):
        if portable_only and not info.get("portable"):
            continue
        baseline_values = [
            r["metrics"][name]["value"]
            for r in prior
            if name in r.get("metrics", {})
        ]
        if len(baseline_values) < min_history:
            continue
        baseline = _median(baseline_values)
        value = info["value"]
        compared += 1
        if info.get("higher_is_better", True):
            if value <= 0 or baseline <= 0:
                continue
            change = baseline / value - 1.0
        else:
            if baseline <= 0:
                continue
            change = value / baseline - 1.0
        if change > threshold:
            regressions.append(
                Regression(
                    latest.get("bench", "?"),
                    name,
                    value,
                    baseline,
                    change,
                    latest,
                )
            )
    return regressions, compared


def check_history_dir(
    history_dir,
    benches=None,
    threshold=0.3,
    window=5,
    min_history=2,
    portable_only=False,
):
    """Run :func:`compare_latest` over every history file.

    Returns ``(regressions, report_lines)``; ``benches`` restricts to
    the named benchmarks (error if one has no history file).
    """
    try:
        names = sorted(
            name[:-6]
            for name in os.listdir(history_dir)
            if name.endswith(".jsonl")
        )
    except OSError:
        raise FileNotFoundError(
            "no benchmark history directory at {!r}".format(history_dir)
        )
    if benches:
        missing = sorted(set(benches) - set(names))
        if missing:
            raise FileNotFoundError(
                "no history for benchmark(s): {}".format(", ".join(missing))
            )
        names = [name for name in names if name in benches]
    all_regressions = []
    lines = []
    for name in names:
        records = load_history(history_path(history_dir, name))
        regressions, compared = compare_latest(
            records,
            threshold=threshold,
            window=window,
            min_history=min_history,
            portable_only=portable_only,
        )
        if compared == 0:
            lines.append(
                "{}: insufficient history ({} record(s))".format(
                    name, len(records)
                )
            )
            continue
        if regressions:
            for regression in regressions:
                lines.append("REGRESSION {}".format(regression.describe()))
        else:
            lines.append(
                "{}: ok ({} metric(s) within {:.0f}%)".format(
                    name, compared, 100.0 * threshold
                )
            )
        all_regressions.extend(regressions)
    return all_regressions, lines
