"""Plain-text table/series formatting for benchmark output.

Benchmarks print the same rows/series the paper reports; these helpers
keep that output consistent and readable in a terminal.  They also
render the parallel runner's progress events
(:func:`format_trial_event` / :func:`progress_printer`) so sweeps can
narrate per-trial completion and cache hits, and the telemetry
subsystem's aggregates (:func:`format_histogram`,
:func:`format_percentiles`, :func:`format_stage_heatmap`) so
metrics-enabled sweeps print distributions, not just means.
"""

import collections
import sys

from repro.telemetry.metrics import bucket_bounds


def format_trial_event(event):
    """One progress line for a :class:`~repro.harness.parallel.TrialEvent`.

    ``[ 3/8] rate=0.01                 2.13s`` (``cached`` for a trial
    served from the result cache, ``resumed`` for one replayed from a
    run journal).  When pool queueing made the trial wait well past
    its own compute time, the wall-clock duration is appended; a
    timed-out trial shows ``TIMEOUT`` plus its last liveness
    heartbeat, if the worker wrote one; a quarantined trial shows
    ``QUARANTINED`` (see :func:`format_quarantine_report` for the
    post-sweep summary).
    """
    width = len(str(event.total))
    if event.cached:
        timing = "resumed" if event.source == "resumed" else "cached"
    elif event.quarantined:
        timing = "QUARANTINED after {:.0f}s".format(event.duration)
    elif event.timed_out:
        timing = "TIMEOUT after {:.0f}s".format(event.duration)
        if event.heartbeat:
            timing += " (last heartbeat @cycle {})".format(
                event.heartbeat.get("cycle")
            )
    else:
        timing = "{:.2f}s".format(event.seconds)
        if event.duration > event.seconds * 1.5 + 0.1:
            timing += " ({:.2f}s wall)".format(event.duration)
    return "[{:>{w}}/{}] {:<28} {}".format(
        event.index + 1, event.total, event.label, timing, w=width
    )


def progress_printer(stream=None):
    """A :class:`TrialRunner` progress callback that prints each event.

    Defaults to stderr so progress chatter never corrupts the result
    tables/CSV a sweep writes to stdout.
    """

    def _print(event):
        out = stream if stream is not None else sys.stderr
        out.write(format_trial_event(event) + "\n")
        out.flush()

    return _print


def format_quarantine_report(reports, title="Quarantined trials"):
    """Summary table for :class:`~repro.harness.parallel.QuarantinedTrial` reports.

    One row per poisoned trial: its label, seed, attempt count, a
    compressed failure-kind tally (``crash x3``), and the last
    failure's detail.  The CLI prints this (and exits nonzero) when a
    sweep completes with quarantined trials.
    """
    rows = []
    for report in reports:
        kinds = collections.Counter(
            failure.get("kind", "?") for failure in report.failures
        )
        tally = ", ".join(
            "{} x{}".format(kind, count) for kind, count in sorted(kinds.items())
        )
        detail = report.failures[-1].get("detail", "") if report.failures else ""
        if len(detail) > 48:
            detail = detail[:45] + "..."
        rows.append(
            {
                "trial": report.label,
                "seed": report.seed,
                "attempts": report.attempts,
                "failures": tally or "(none recorded)",
                "last failure": detail,
            }
        )
    return format_table(rows, title=title)


def format_table(rows, columns=None, title=None, floatfmt="{:.1f}"):
    """Render dict rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = []
    for row in rows:
        rendered.append(
            [_cell(row.get(column), floatfmt) for column in columns]
        )
    widths = [
        max(len(str(column)), max(len(line[index]) for line in rendered))
        for index, column in enumerate(columns)
    ]
    out = []
    if title:
        out.append(title)
    header = "  ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    out.append(header)
    out.append("  ".join("-" * w for w in widths))
    for line in rendered:
        out.append("  ".join(cell.ljust(w) for cell, w in zip(line, widths)))
    return "\n".join(out)


def _cell(value, floatfmt):
    if value is None:
        return "-"
    if isinstance(value, float):
        return floatfmt.format(value)
    if isinstance(value, tuple):
        return "-".join(_cell(v, floatfmt) for v in value)
    return str(value)


def format_series(points, x_label, y_labels, title=None):
    """Render (x, {y_label: value}) pairs as an aligned series table."""
    rows = []
    for x, values in points:
        row = {x_label: x}
        row.update(values)
        rows.append(row)
    return format_table(rows, columns=[x_label] + list(y_labels), title=title)


def ascii_chart(points, width=50, height=12, title=None, x_label="x", y_label="y"):
    """A quick terminal scatter/line chart for (x, y) numeric pairs.

    Good enough to see the Figure 3 knee in benchmark output without
    leaving the terminal; not a plotting library.
    """
    pairs = [(float(x), float(y)) for x, y in points if y == y]  # drop NaN
    if not pairs:
        return "(no data)"
    xs = [p[0] for p in pairs]
    ys = [p[1] for p in pairs]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in pairs:
        column = int((x - x_lo) / x_span * (width - 1))
        row = int((y - y_lo) / y_span * (height - 1))
        grid[height - 1 - row][column] = "*"
    lines = []
    if title:
        lines.append(title)
    lines.append("{:>10.3g} |{}".format(y_hi, "".join(grid[0])))
    for row in grid[1:-1]:
        lines.append("{:>10} |{}".format("", "".join(row)))
    lines.append("{:>10.3g} |{}".format(y_lo, "".join(grid[-1])))
    lines.append("{:>10} +{}".format("", "-" * width))
    lines.append(
        "{:>10}  {:<{pad}}{:>{pad2}}".format(
            "", "{:.3g}".format(x_lo), "{:.3g}".format(x_hi),
            pad=width // 2, pad2=width - width // 2,
        )
    )
    lines.append("{:>10}  ({} vs {})".format("", y_label, x_label))
    return "\n".join(lines)


def sparkline(values, lo=None, hi=None):
    """A one-line block-character chart of a numeric series.

    Ideal for chaos-soak windows: ``▇▇▇▂▁▂▃▅▇▇`` shows the fault dip
    and the recovery rebound in a single table cell.  ``lo``/``hi``
    pin the scale (e.g. 0..baseline) so several soaks compare
    directly; they default to the series' own extremes.
    """
    ramp = "▁▂▃▄▅▆▇█"
    series = [float(v) for v in values]
    if not series:
        return ""
    low = min(series) if lo is None else float(lo)
    high = max(series) if hi is None else float(hi)
    span = (high - low) or 1.0
    chars = []
    for value in series:
        index = int((value - low) / span * (len(ramp) - 1))
        chars.append(ramp[max(0, min(index, len(ramp) - 1))])
    return "".join(chars)


def format_histogram(histogram, title=None, width=40):
    """ASCII bar chart of one log2-bucketed telemetry histogram.

    ``histogram`` is a :class:`~repro.telemetry.metrics.Histogram`
    (typically rebuilt from a snapshot via
    ``snapshot.histogram(name)``).  One row per occupied bucket:
    half-open value range, count, and a bar scaled to the modal bucket.
    """
    if not histogram.count:
        return "(empty histogram)"
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "count={} mean={:.1f} min={:g} max={:g}".format(
            histogram.count, histogram.mean, histogram.low, histogram.high
        )
    )
    peak = max(histogram.buckets.values())
    for index in sorted(histogram.buckets):
        low, high = bucket_bounds(index)
        count = histogram.buckets[index]
        bar = "#" * max(1, int(round(width * count / peak)))
        lines.append(
            "[{:>8g}, {:>8g})  {:>8}  {}".format(low, high, count, bar)
        )
    return "\n".join(lines)


def format_percentiles(
    snapshot, names, qs=(50, 90, 99, 99.9), title=None, floatfmt="{:.1f}"
):
    """A count/mean/percentile table over histogram series.

    ``names`` selects unlabeled histogram series from a
    :class:`~repro.telemetry.metrics.MetricsSnapshot`; names absent
    from the snapshot are skipped, so one call covers hubs configured
    with different instrument sets.  The default quantiles run out to
    p99.9 — SLO-grade tails (``docs/workloads.md``); non-integral
    quantiles render as ``p99.9``-style columns.
    """
    rows = []
    for name in names:
        try:
            histogram = snapshot.histogram(name)
        except (KeyError, ValueError):
            continue
        row = {
            "metric": name,
            "count": histogram.count,
            "mean": histogram.mean,
            "min": float(histogram.low) if histogram.count else None,
        }
        for q in qs:
            row["p{:g}".format(q)] = histogram.percentile(q)
        row["max"] = float(histogram.high) if histogram.count else None
        rows.append(row)
    if not rows:
        return "(no histogram series)"
    return format_table(rows, title=title, floatfmt=floatfmt)


def format_stage_heatmap(snapshot, title=None, width=30):
    """Per-stage router-utilization bars from ``router.util.*`` series.

    Consumes the series the :class:`~repro.telemetry.TelemetryHub` and
    :class:`~repro.harness.utilization.UtilizationProbe` both emit:
    ``router.util.samples`` (counter), ``router.util.busy`` and
    ``router.util.ports`` (labeled by router and stage).  Utilization
    is busy-port samples over total port-samples; each stage shows its
    mean as a bar plus the stage's hottest router.  Correct on merged
    sweep snapshots too — busy and samples both sum across trials.
    """
    samples = snapshot.get("router.util.samples", 0)
    if not samples:
        return "(no utilization samples)"
    ports = {}
    for labels, _kind, data in snapshot.labeled("router.util.ports"):
        ports[labels.get("router")] = data[0]
    stages = {}
    for labels, _kind, busy in snapshot.labeled("router.util.busy"):
        router = labels.get("router")
        n_ports = ports.get(router)
        if not n_ports:
            continue
        utilization = busy / (samples * n_ports)
        stages.setdefault(labels.get("stage"), []).append(
            (utilization, router)
        )
    if not stages:
        return "(no utilization samples)"
    lines = []
    if title:
        lines.append(title)
    for stage in sorted(stages, key=str):
        values = stages[stage]
        mean = sum(u for u, _r in values) / len(values)
        hot_util, hot_router = max(values)
        bar = "#" * int(round(width * min(mean, 1.0)))
        lines.append(
            "stage {:<3} {:<{w}} {:5.1%}  (max {:.1%} @ r{})".format(
                stage, bar or ".", mean, hot_util, hot_router, w=width
            )
        )
    return "\n".join(lines)


def results_to_series(results, x_from="label"):
    """ExperimentResults -> (x, metrics) pairs for format_series."""
    points = []
    for result in results:
        data = result.as_dict()
        x = data.pop(x_from)
        points.append((x, data))
    return points
