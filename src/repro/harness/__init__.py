"""Experiment harness: runners and reporting for every paper figure."""

from repro.harness.batch import ExperimentGrid
from repro.harness.breakdown import LatencyBreakdown, measure_breakdown
from repro.harness.experiment import ExperimentResult, run_experiment
from repro.harness.fault_sweep import fault_degradation_sweep, run_fault_point
from repro.harness.utilization import UtilizationProbe, attach_probe
from repro.harness.load_sweep import (
    DEFAULT_RATES,
    figure3_network,
    figure3_sweep,
    run_load_point,
    unloaded_latency,
)
from repro.harness.reporting import (
    ascii_chart,
    format_series,
    format_table,
    results_to_series,
)
from repro.harness.saturation import find_saturation

__all__ = [
    "DEFAULT_RATES",
    "ExperimentGrid",
    "ExperimentResult",
    "LatencyBreakdown",
    "UtilizationProbe",
    "ascii_chart",
    "attach_probe",
    "measure_breakdown",
    "fault_degradation_sweep",
    "find_saturation",
    "figure3_network",
    "figure3_sweep",
    "format_series",
    "format_table",
    "results_to_series",
    "run_experiment",
    "run_fault_point",
    "run_load_point",
    "unloaded_latency",
]
