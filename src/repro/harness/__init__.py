"""Experiment harness: runners and reporting for every paper figure."""

from repro.harness.batch import ExperimentGrid, run_grid_trial
from repro.harness.breakdown import LatencyBreakdown, measure_breakdown
from repro.harness.experiment import ExperimentResult, run_experiment
from repro.harness.fault_sweep import (
    fault_degradation_sweep,
    fault_trial_specs,
    run_fault_point,
)
from repro.harness.parallel import (
    TrialCache,
    TrialRunner,
    TrialSpec,
    TrialTimeoutError,
    run_trials,
)
from repro.harness.utilization import UtilizationProbe, attach_probe
from repro.harness.load_sweep import (
    DEFAULT_RATES,
    figure1_network,
    figure3_network,
    figure3_sweep,
    load_trial_specs,
    run_load_point,
    unloaded_latency,
)
from repro.harness.reporting import (
    ascii_chart,
    format_histogram,
    format_percentiles,
    format_series,
    format_stage_heatmap,
    format_table,
    format_trial_event,
    progress_printer,
    results_to_series,
)
from repro.harness.saturation import (
    find_saturation,
    run_saturation_point,
    saturation_trial_specs,
)

__all__ = [
    "DEFAULT_RATES",
    "ExperimentGrid",
    "ExperimentResult",
    "LatencyBreakdown",
    "TrialCache",
    "TrialRunner",
    "TrialSpec",
    "TrialTimeoutError",
    "UtilizationProbe",
    "ascii_chart",
    "attach_probe",
    "measure_breakdown",
    "fault_degradation_sweep",
    "fault_trial_specs",
    "find_saturation",
    "figure1_network",
    "figure3_network",
    "figure3_sweep",
    "format_histogram",
    "format_percentiles",
    "format_series",
    "format_stage_heatmap",
    "format_table",
    "format_trial_event",
    "load_trial_specs",
    "progress_printer",
    "results_to_series",
    "run_experiment",
    "run_fault_point",
    "run_grid_trial",
    "run_load_point",
    "run_saturation_point",
    "run_trials",
    "saturation_trial_specs",
    "unloaded_latency",
]
