"""Batch experiment grids with CSV output.

Research use of this library means running grids: (network variant x
load x seed) and aggregating.  :class:`ExperimentGrid` runs the cross
product, keeps every :class:`~repro.harness.experiment.ExperimentResult`,
aggregates across seeds, and writes plain CSV (no pandas dependency —
the files load anywhere).

Every (variant, rate, seed) cell run is an independent
:class:`~repro.harness.parallel.TrialSpec`, so grids parallelize and
cache like the other sweeps.  Parallel/cached execution needs the
network factories to be module-level callables (lambdas still work for
serial, uncached runs).
"""

import csv
import io
import itertools

from repro.endpoint.traffic import UniformRandomTraffic
from repro.harness.experiment import run_experiment
from repro.harness.parallel import TrialRunner, TrialSpec


def run_grid_trial(
    factory,
    rate,
    seed=0,
    message_words=20,
    warmup_cycles=800,
    measure_cycles=3000,
    traffic_class=UniformRandomTraffic,
    label="",
):
    """One grid cell run: module-level so worker pools can import it."""
    network = factory(seed)
    traffic = traffic_class(
        n_endpoints=network.plan.n_endpoints,
        w=network.codec.w,
        rate=rate,
        message_words=message_words,
        seed=seed + 1,
    )
    return run_experiment(
        network,
        traffic,
        warmup_cycles=warmup_cycles,
        measure_cycles=measure_cycles,
        label=label,
    )


class GridCell:
    """All seeds' results for one parameter combination."""

    def __init__(self, params, results):
        self.params = dict(params)
        self.results = list(results)

    def mean(self, metric):
        values = [getattr(r, metric) for r in self.results]
        values = [v for v in values if v == v]  # drop NaN
        return sum(values) / len(values) if values else float("nan")

    def spread(self, metric):
        values = [getattr(r, metric) for r in self.results if getattr(r, metric) == getattr(r, metric)]
        if len(values) < 2:
            return 0.0
        mean = sum(values) / len(values)
        return (sum((v - mean) ** 2 for v in values) / (len(values) - 1)) ** 0.5


class ExperimentGrid:
    """Run a (factory x rate x seed) grid of load experiments.

    :param factories: mapping variant-name -> network factory
        ``f(seed) -> MetroNetwork``.
    :param rates: injection rates to sweep.
    :param seeds: seeds to replicate over (aggregated per cell).  The
        grid honors these seeds verbatim — replicate seeds are an
        explicit experimental axis here, unlike the sweep modules'
        derived per-trial seed streams — so paired-seed comparisons
        across variants keep working.
    """

    def __init__(
        self,
        factories,
        rates,
        seeds=(0,),
        message_words=20,
        warmup_cycles=800,
        measure_cycles=3000,
        traffic_class=UniformRandomTraffic,
    ):
        self.factories = dict(factories)
        self.rates = tuple(rates)
        self.seeds = tuple(seeds)
        self.message_words = message_words
        self.warmup_cycles = warmup_cycles
        self.measure_cycles = measure_cycles
        self.traffic_class = traffic_class
        self.cells = []

    def trial_specs(self):
        """Every (variant, rate, seed) run as a :class:`TrialSpec`."""
        specs = []
        for name, rate in itertools.product(self.factories, self.rates):
            for seed in self.seeds:
                specs.append(
                    TrialSpec(
                        runner="repro.harness.batch:run_grid_trial",
                        params=dict(
                            factory=self.factories[name],
                            rate=rate,
                            message_words=self.message_words,
                            warmup_cycles=self.warmup_cycles,
                            measure_cycles=self.measure_cycles,
                            traffic_class=self.traffic_class,
                            label="{}@{}".format(name, rate),
                        ),
                        seed=seed,
                        label="{}@{} seed={}".format(name, rate, seed),
                    )
                )
        return specs

    def run(self, progress=None, workers=1, cache_dir=None, runner=None):
        """Execute the grid; returns the list of :class:`GridCell`.

        ``progress`` keeps its original signature
        ``f(name, rate, seed, result)``; with a worker pool it fires as
        ordered results are collected rather than at completion time.
        """
        self.cells = []
        specs = self.trial_specs()
        if runner is None:
            runner = TrialRunner(workers=workers, cache_dir=cache_dir)
        flat = runner.run(specs)

        per_seed = len(self.seeds)
        for combo_index, (name, rate) in enumerate(
            itertools.product(self.factories, self.rates)
        ):
            results = flat[combo_index * per_seed : (combo_index + 1) * per_seed]
            if progress is not None:
                for seed, result in zip(self.seeds, results):
                    progress(name, rate, seed, result)
            self.cells.append(
                GridCell({"variant": name, "rate": rate}, results)
            )
        return self.cells

    METRICS = ("delivered_load", "mean_latency", "mean_attempts")

    def to_csv(self, path=None):
        """Aggregated CSV (one row per cell); returns the CSV text."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        header = ["variant", "rate", "seeds"]
        for metric in self.METRICS:
            header.extend([metric + "_mean", metric + "_std"])
        writer.writerow(header)
        for cell in self.cells:
            row = [cell.params["variant"], cell.params["rate"], len(cell.results)]
            for metric in self.METRICS:
                row.append("{:.6g}".format(cell.mean(metric)))
                row.append("{:.6g}".format(cell.spread(metric)))
            writer.writerow(row)
        text = buffer.getvalue()
        if path is not None:
            with open(path, "w", newline="") as handle:
                handle.write(text)
        return text

    def raw_csv(self, path=None):
        """Per-run CSV (one row per seed per cell)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(
            ["variant", "rate", "seed_index", "delivered", "delivered_load",
             "mean_latency", "p95_latency", "mean_attempts"]
        )
        for cell in self.cells:
            for index, result in enumerate(cell.results):
                writer.writerow(
                    [
                        cell.params["variant"],
                        cell.params["rate"],
                        index,
                        result.delivered_count,
                        "{:.6g}".format(result.delivered_load),
                        "{:.6g}".format(result.mean_latency),
                        "{:.6g}".format(result.latency_percentile(95)),
                        "{:.6g}".format(result.mean_attempts),
                    ]
                )
        text = buffer.getvalue()
        if path is not None:
            with open(path, "w", newline="") as handle:
                handle.write(text)
        return text
