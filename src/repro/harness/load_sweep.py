"""The Figure 3 experiment: latency versus network loading.

The paper's Figure 3 plots effective message latency against network
load for a 3-stage, 64-endpoint, radix-4 multibutterfly (dilation
2/2/1, 8-bit datapaths) carrying randomly-addressed 20-byte messages,
with processors stalling until each message completes and each
endpoint using one network input at a time.  The unloaded latency is
28 clock cycles from injection to acknowledgment receipt.

:func:`figure3_sweep` regenerates the curve: one
:func:`~repro.harness.experiment.run_experiment` per injection rate.
Each rate is an independent :class:`~repro.harness.parallel.TrialSpec`
(seeded from the root seed via
:func:`~repro.core.random_source.derive_seed`) executed by a shared
:class:`~repro.harness.parallel.TrialRunner`, so the sweep can fan out
across worker processes and reuse cached points while remaining
bit-identical to a serial run.
"""

from repro.core.random_source import derive_seed
from repro.endpoint.traffic import UniformRandomTraffic
from repro.harness.experiment import run_experiment
from repro.harness.parallel import TrialRunner, TrialSpec
from repro.network.builder import build_network
from repro.network.topology import figure1_plan, figure3_plan

#: Injection probabilities swept by default: idle-endpoint start
#: probability per cycle, from nearly unloaded to saturation.
DEFAULT_RATES = (0.002, 0.005, 0.01, 0.02, 0.04, 0.08, 0.16, 0.32)


def figure3_network(seed=0, fast_reclaim=True, **overrides):
    """The Figure 3 network, ready for traffic.

    Fast path reclamation is on by default: Figure 3's loaded points
    depend on blocked connections being reclaimed quickly (Section
    5.1 pairs "fast block recovery" with "fast stochastic path
    search").
    """
    return build_network(
        figure3_plan(), seed=seed, fast_reclaim=fast_reclaim, **overrides
    )


def figure1_network(seed=0, fast_reclaim=True, **overrides):
    """The small Figure 1 network (16 endpoints): quick sweeps/tests.

    Module-level (rather than a lambda in each caller) so trial specs
    that reference it stay picklable and cacheable.
    """
    return build_network(
        figure1_plan(), seed=seed, fast_reclaim=fast_reclaim, **overrides
    )


def run_load_point(
    rate,
    seed=0,
    message_words=20,
    warmup_cycles=1500,
    measure_cycles=6000,
    network_factory=figure3_network,
    traffic_class=UniformRandomTraffic,
    metrics=False,
    backend="reference",
):
    """One point of the latency/load curve.

    ``metrics=True`` binds a metrics-only
    :class:`~repro.telemetry.TelemetryHub` to the network and attaches
    its picklable snapshot to the result (``result.metrics``); spans
    stay off — a sweep point generates far too many to keep.

    ``backend`` selects the engine backend (see
    :mod:`repro.sim.backends`); results are identical either way, the
    ``"events"`` backend is just faster at low load.  The default is
    only forwarded to ``network_factory`` when overridden, so custom
    factories without a ``backend`` parameter keep working.
    """
    factory_kwargs = {}
    if backend != "reference":
        factory_kwargs["backend"] = backend
    telemetry = None
    if metrics:
        from repro.telemetry import TelemetryHub

        telemetry = TelemetryHub(spans=False)
        network = network_factory(seed=seed, telemetry=telemetry, **factory_kwargs)
    else:
        network = network_factory(seed=seed, **factory_kwargs)
    traffic = traffic_class(
        n_endpoints=network.plan.n_endpoints,
        w=network.codec.w,
        rate=rate,
        message_words=message_words,
        seed=seed + 1,
    )
    result = run_experiment(
        network,
        traffic,
        warmup_cycles=warmup_cycles,
        measure_cycles=measure_cycles,
        label="rate={}".format(rate),
        telemetry=telemetry,
    )
    return result


def load_trial_specs(rates=DEFAULT_RATES, seed=0, **kwargs):
    """The sweep as :class:`TrialSpec` objects, one per rate.

    Each trial's seed is ``derive_seed(seed, "load", rate)``: a pure
    function of the root seed and the rate, independent of the trial's
    position in the sweep and of which process executes it.
    """
    return [
        TrialSpec(
            runner="repro.harness.load_sweep:run_load_point",
            params=dict(rate=rate, **kwargs),
            seed=derive_seed(seed, "load", rate),
            label="rate={}".format(rate),
        )
        for rate in rates
    ]


def figure3_sweep(
    rates=DEFAULT_RATES,
    seed=0,
    workers=1,
    cache_dir=None,
    progress=None,
    runner=None,
    **kwargs
):
    """The full latency-vs-load series, one result per rate.

    ``workers`` > 1 fans the rates out across a process pool;
    ``cache_dir`` enables the on-disk trial cache.  Pass a prebuilt
    :class:`TrialRunner` as ``runner`` to share one cache/stats object
    across several sweeps (it overrides the other execution knobs).
    """
    specs = load_trial_specs(rates=rates, seed=seed, **kwargs)
    if runner is None:
        runner = TrialRunner(workers=workers, cache_dir=cache_dir, progress=progress)
    return runner.run(specs)


def unloaded_latency(seed=0, samples=24, network_factory=figure3_network,
                     message_words=20):
    """Mean unloaded (single message at a time) delivery latency.

    The paper's reference point: 28 cycles for 20-byte messages on the
    Figure 3 network.
    """
    from repro.endpoint.messages import Message
    import random

    network = network_factory(seed=seed)
    rng = random.Random(seed ^ 0x55AA)
    latencies = []
    for _ in range(samples):
        src = rng.randrange(network.plan.n_endpoints)
        dest = rng.randrange(network.plan.n_endpoints)
        if dest == src:
            dest = (dest + 1) % network.plan.n_endpoints
        payload = [rng.getrandbits(8) for _ in range(message_words)]
        message = network.send(src, Message(dest=dest, payload=payload))
        if not network.run_until_quiet(max_cycles=20000):
            raise RuntimeError("network failed to drain")
        if message.latency is not None:
            latencies.append(message.latency)
    return sum(latencies) / len(latencies)
