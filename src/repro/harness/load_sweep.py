"""The Figure 3 experiment: latency versus network loading.

The paper's Figure 3 plots effective message latency against network
load for a 3-stage, 64-endpoint, radix-4 multibutterfly (dilation
2/2/1, 8-bit datapaths) carrying randomly-addressed 20-byte messages,
with processors stalling until each message completes and each
endpoint using one network input at a time.  The unloaded latency is
28 clock cycles from injection to acknowledgment receipt.

:func:`figure3_sweep` regenerates the curve: one
:func:`~repro.harness.experiment.run_experiment` per injection rate,
reporting (offered rate, delivered load, mean/median/p95 latency).
"""

from repro.endpoint.traffic import UniformRandomTraffic
from repro.harness.experiment import run_experiment
from repro.network.builder import build_network
from repro.network.topology import figure3_plan

#: Injection probabilities swept by default: idle-endpoint start
#: probability per cycle, from nearly unloaded to saturation.
DEFAULT_RATES = (0.002, 0.005, 0.01, 0.02, 0.04, 0.08, 0.16, 0.32)


def figure3_network(seed=0, fast_reclaim=True, **overrides):
    """The Figure 3 network, ready for traffic.

    Fast path reclamation is on by default: Figure 3's loaded points
    depend on blocked connections being reclaimed quickly (Section
    5.1 pairs "fast block recovery" with "fast stochastic path
    search").
    """
    return build_network(
        figure3_plan(), seed=seed, fast_reclaim=fast_reclaim, **overrides
    )


def run_load_point(
    rate,
    seed=0,
    message_words=20,
    warmup_cycles=1500,
    measure_cycles=6000,
    network_factory=figure3_network,
    traffic_class=UniformRandomTraffic,
):
    """One point of the latency/load curve."""
    network = network_factory(seed=seed)
    traffic = traffic_class(
        n_endpoints=network.plan.n_endpoints,
        w=network.codec.w,
        rate=rate,
        message_words=message_words,
        seed=seed + 1,
    )
    result = run_experiment(
        network,
        traffic,
        warmup_cycles=warmup_cycles,
        measure_cycles=measure_cycles,
        label="rate={}".format(rate),
    )
    return result


def figure3_sweep(rates=DEFAULT_RATES, seed=0, **kwargs):
    """The full latency-vs-load series, one result per rate."""
    return [run_load_point(rate, seed=seed, **kwargs) for rate in rates]


def unloaded_latency(seed=0, samples=24, network_factory=figure3_network,
                     message_words=20):
    """Mean unloaded (single message at a time) delivery latency.

    The paper's reference point: 28 cycles for 20-byte messages on the
    Figure 3 network.
    """
    from repro.endpoint.messages import Message
    import random

    network = network_factory(seed=seed)
    rng = random.Random(seed ^ 0x55AA)
    latencies = []
    for _ in range(samples):
        src = rng.randrange(network.plan.n_endpoints)
        dest = rng.randrange(network.plan.n_endpoints)
        if dest == src:
            dest = (dest + 1) % network.plan.n_endpoints
        payload = [rng.getrandbits(8) for _ in range(message_words)]
        message = network.send(src, Message(dest=dest, payload=payload))
        if not network.run_until_quiet(max_cycles=20000):
            raise RuntimeError("network failed to drain")
        if message.latency is not None:
            latencies.append(message.latency)
    return sum(latencies) / len(latencies)
