"""Durable write-ahead run journal: crash-safe sweeps, kill-resume.

A sweep that dies forty hours into a chaos soak should cost the time
of the *unfinished* trials, not the whole campaign.  The
:class:`RunJournal` is the durability half of that promise: a
:class:`~repro.harness.parallel.TrialRunner` given one appends a JSONL
record — flushed *and* fsynced before the runner proceeds — for every
trial state transition:

* ``journal.start`` — file header carrying :data:`JOURNAL_FORMAT`;
* ``sweep.start`` — the sweep's full trial manifest (index, stable
  key, label, seed per trial) plus runner configuration;
* ``trial.queued`` / ``trial.start`` / ``trial.done`` /
  ``trial.failed`` / ``trial.quarantined`` — per-trial lifecycle,
  where ``trial.done`` carries the result's content hash
  (:func:`~repro.harness.parallel.result_content_hash`) and
  ``trial.failed`` one attempt's failure kind/detail/exit code;
* ``sweep.end`` / ``sweep.interrupted`` — how the sweep stopped.

Trial identity is :func:`~repro.harness.parallel.journal_trial_key`:
the spec's cache fingerprint when cacheable (journal and trial cache
agree on identity), else a label key.  That makes resume a pure
replay: :func:`resume_sweep` reads the journal (torn final lines are
tolerated, exactly like
:func:`repro.telemetry.stream.read_run_log` — a crash mid-append
never poisons the file), reconstructs each trial's last known state
(:func:`replay_journal`), serves every finished trial from the trial
cache *after verifying its content hash matches what the journal
recorded*, carries quarantine reports over, and re-executes only what
never finished.  Because every trial is a pure function of its spec,
the merged results are byte-identical to an uninterrupted run — the
kill-resume proof in ``tests/harness/test_journal.py`` pins this on
both the dense and events backends.

See ``docs/resilience.md`` for the format and the operational
workflow (``--journal`` / ``--resume`` on the sweep CLIs).
"""

import json
import logging
import os
import time

from repro.harness.parallel import (
    CACHE_MISS,
    QuarantinedTrial,
    journal_trial_key,
    result_content_hash,
)
from repro.telemetry.stream import read_run_log

logger = logging.getLogger(__name__)

#: Format tag carried by ``journal.start``; bump on breaking changes.
JOURNAL_FORMAT = "metro-run-journal-v1"

def _trim_torn_tail(path):
    """Drop a torn (newline-less) final line before appending.

    Readers already tolerate a torn tail, but *appending* after one
    would glue the new record onto the fragment, turning a harmless
    torn tail into a corrupt interior line.  Truncating back to the
    last complete record keeps append-after-crash safe; the torn
    record was never readable anyway.
    """
    try:
        with open(path, "rb+") as handle:
            handle.seek(0, os.SEEK_END)
            size = handle.tell()
            if size == 0:
                return
            handle.seek(-1, os.SEEK_END)
            if handle.read(1) == b"\n":
                return
            handle.seek(0)
            data = handle.read()
            keep = data.rfind(b"\n") + 1
            handle.truncate(keep)
        logger.warning(
            "journal %s: dropped a torn final record (%d byte(s)) "
            "before appending", path, size - keep,
        )
    except OSError:
        return


#: Required fields per journal event kind (:func:`validate_journal`;
#: also folded into run-log validation so journal events embedded in a
#: run log validate there too).
JOURNAL_REQUIRED_FIELDS = {
    "journal.start": ("format",),
    "sweep.start": ("total", "trials"),
    "trial.queued": ("index", "key", "label"),
    "trial.start": ("index", "key", "label", "attempt"),
    "trial.done": ("index", "key", "label", "source"),
    "trial.failed": ("index", "key", "label", "attempt", "kind"),
    "trial.quarantined": ("index", "key", "label", "report"),
    "sweep.end": ("total",),
    "sweep.interrupted": ("signum",),
}


class RunJournal:
    """Append-only JSONL write-ahead journal for sweep state.

    Every :meth:`record` is one JSON object per line, written, flushed
    and (by default) fsynced before returning — the write-ahead
    discipline that makes a SIGKILL at any instant recoverable.  The
    worst a crash can leave is one torn final line, which every reader
    here tolerates.  Opening an existing journal appends to it (a
    resumed run extends the same history); opening a fresh path writes
    the ``journal.start`` header first.

    :param path: journal file path (parent directories are created).
    :param fsync: set False to skip the per-record fsync (tests that
        hammer the journal; production sweeps should keep it on).
    """

    def __init__(self, path, fsync=True):
        self.path = str(path)
        self.fsync = fsync
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        _trim_torn_tail(self.path)
        fresh = (
            not os.path.exists(self.path)
            or os.path.getsize(self.path) == 0
        )
        self._handle = open(self.path, "a")
        self.records_written = 0
        if fresh:
            self.record("journal.start", format=JOURNAL_FORMAT, pid=os.getpid())

    @property
    def closed(self):
        return self._handle is None

    def record(self, event, **fields):
        """Durably append one ``event`` record with ``fields``."""
        if self._handle is None:
            return
        entry = {"event": event, "t": round(time.time(), 6)}
        entry.update(fields)
        self._handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self.records_written += 1

    def close(self):
        """Close the file (idempotent); further records are dropped."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        self.close()
        return False

    def __repr__(self):
        return "<RunJournal {} ({} records{})>".format(
            self.path, self.records_written,
            ", closed" if self.closed else "",
        )


def read_journal(path_or_lines):
    """Parse a journal into event dicts (torn final line tolerated).

    Same parser and tolerance contract as
    :func:`repro.telemetry.stream.read_run_log`: blank lines are
    skipped, a malformed *final* line (crash mid-append) is dropped,
    a malformed interior line raises ``ValueError``.
    """
    return read_run_log(path_or_lines)


def validate_journal(events):
    """Schema-check parsed journal events; returns the event count.

    Requires the leading ``journal.start`` header with the known
    format tag and the per-kind required fields
    (:data:`JOURNAL_REQUIRED_FIELDS`).  Unknown kinds pass — the
    format is forward-extensible — but known kinds missing fields
    raise ``ValueError``.
    """
    if not events:
        raise ValueError("journal is empty")
    first = events[0]
    if first.get("event") != "journal.start":
        raise ValueError("journal must begin with a journal.start record")
    if first.get("format") != JOURNAL_FORMAT:
        raise ValueError(
            "unknown journal format {!r} (expected {!r})".format(
                first.get("format"), JOURNAL_FORMAT
            )
        )
    for index, event in enumerate(events):
        kind = event.get("event")
        if not isinstance(kind, str):
            raise ValueError("record {} has no event field".format(index))
        for field in JOURNAL_REQUIRED_FIELDS.get(kind, ()):
            if field not in event:
                raise ValueError(
                    "record {} ({}) is missing field {!r}".format(
                        index, kind, field
                    )
                )
    return len(events)


class JournalState:
    """The replayed view of a journal: where every trial got to.

    Built by :func:`replay_journal`.  Keys throughout are
    :func:`~repro.harness.parallel.journal_trial_key` values.
    """

    def __init__(self):
        #: key -> {"index", "label", "seed"} from the sweep manifest.
        self.trials = {}
        #: key -> {"source", "result_hash", "elapsed"} for finished trials.
        self.done = {}
        #: key -> quarantine report dict (:meth:`QuarantinedTrial.as_dict`).
        self.quarantined = {}
        #: key -> highest attempt number observed.
        self.attempts = {}
        #: keys dispatched (``trial.start``) but never finished — a
        #: crash caught them mid-flight.
        self.started = set()
        #: signal name from ``sweep.interrupted``, else None.
        self.interrupted = None
        #: True once a ``sweep.end`` was recorded.
        self.completed = False

    @property
    def unfinished(self):
        """Manifest keys with neither a result nor a quarantine report."""
        return [
            key for key in self.trials
            if key not in self.done and key not in self.quarantined
        ]

    def describe(self):
        return (
            "{} trial(s): {} done, {} quarantined, {} unfinished"
            " ({} mid-flight){}{}".format(
                len(self.trials), len(self.done), len(self.quarantined),
                len(self.unfinished), len(self.started),
                "; interrupted by {}".format(self.interrupted)
                if self.interrupted else "",
                "; completed" if self.completed else "",
            )
        )

    def __repr__(self):
        return "<JournalState {}>".format(self.describe())


def replay_journal(events):
    """Fold parsed journal events into a :class:`JournalState`.

    Later records win (a retry's ``trial.failed`` after an earlier
    one, a ``trial.done`` after a crash on a previous attempt), so the
    state reflects each trial's *last* known transition.  Multiple
    ``sweep.start`` manifests merge — lazy sweeps
    (:func:`~repro.harness.saturation.find_saturation`) run one
    runner batch per probed point against the same journal.
    """
    state = JournalState()
    for event in events:
        kind = event.get("event")
        key = event.get("key")
        if kind == "sweep.start":
            for trial in event.get("trials", ()):
                if trial.get("key") is not None:
                    state.trials.setdefault(trial["key"], dict(trial))
        elif kind == "trial.queued":
            if key is not None:
                state.trials.setdefault(key, {
                    "index": event.get("index"),
                    "key": key,
                    "label": event.get("label"),
                    "seed": event.get("seed"),
                })
        elif kind == "trial.start":
            if key is not None:
                state.started.add(key)
                attempt = event.get("attempt") or 0
                if attempt > state.attempts.get(key, 0):
                    state.attempts[key] = attempt
        elif kind == "trial.done":
            if key is not None:
                state.done[key] = {
                    "source": event.get("source"),
                    "result_hash": event.get("result_hash"),
                    "elapsed": event.get("elapsed"),
                }
                state.started.discard(key)
        elif kind == "trial.failed":
            if key is not None:
                attempt = event.get("attempt") or 0
                if attempt > state.attempts.get(key, 0):
                    state.attempts[key] = attempt
        elif kind == "trial.quarantined":
            if key is not None:
                state.quarantined[key] = event.get("report") or {}
                state.started.discard(key)
        elif kind == "sweep.end":
            state.completed = True
        elif kind == "sweep.interrupted":
            state.interrupted = event.get("signal") or str(event.get("signum"))
    return state


def load_journal_state(path):
    """Read + validate + replay ``path`` in one call."""
    events = read_journal(path)
    validate_journal(events)
    return replay_journal(events)


def precomputed_from_state(state, specs, cache, partial=None):
    """``{spec index: result}`` a journal replay can serve for ``specs``.

    The resume decision per trial, shared by :func:`resume_sweep` and
    a :class:`~repro.harness.parallel.TrialRunner` built with
    ``resume_from=``:

    * a trial with a ``trial.done`` record is fetched from the trial
      ``cache`` and served **only if** its content hash matches the
      hash the journal recorded — a corrupt or foreign cache entry is
      re-executed, never trusted;
    * a quarantined trial's report is carried over as-is (it spent its
      attempt budget; resuming is not a free retry — re-run without
      resuming to try again);
    * an unfinished trial is left out (it will re-execute), except
      that ``partial(index, spec, state)`` — if given — may recover a
      result for trials the journal shows *mid-flight* (e.g. the
      chaos harness finishing a half-done soak from its snapshot
      ring).

    Serving nothing is always safe: trials are pure functions of
    their specs, so re-execution reproduces the journaled results
    byte-identically, just slower.
    """
    precomputed = {}
    recomputing = []
    for index, spec in enumerate(specs):
        key = journal_trial_key(spec)
        report = state.quarantined.get(key)
        if report is not None:
            precomputed[index] = QuarantinedTrial.from_dict(report)
            continue
        entry = state.done.get(key)
        if entry is None:
            if partial is not None and key in state.started:
                result = partial(index, spec, state)
                if result is not None:
                    precomputed[index] = result
            continue
        if cache is None or not spec.cacheable():
            recomputing.append(spec.label)
            continue
        hit = cache.get(spec.fingerprint())
        if hit is CACHE_MISS:
            recomputing.append(spec.label)
            continue
        expected = entry.get("result_hash")
        if expected is not None and result_content_hash(hit) != expected:
            logger.warning(
                "resume: cached result for trial %r does not match the "
                "journal's content hash; re-executing", spec.label,
            )
            recomputing.append(spec.label)
            continue
        precomputed[index] = hit
    if recomputing:
        shown = ", ".join(recomputing[:5])
        if len(recomputing) > 5:
            shown += ", ..."
        logger.warning(
            "resume: %d journal-finished trial(s) not servable from the "
            "trial cache; re-executing deterministically: %s",
            len(recomputing), shown,
        )
    return precomputed


def resume_sweep(journal_path, specs, runner, partial=None):
    """Finish an interrupted sweep; returns results in spec order.

    Replays the journal at ``journal_path``, then runs ``specs`` on
    ``runner`` with every already-finished trial served as a
    precomputed result (progress source ``"resumed"``) per
    :func:`precomputed_from_state`.

    Because trials are pure functions of their specs, the merged
    results are byte-identical to an uninterrupted run.  Raises
    ``ValueError`` when the journal shares no trial keys with
    ``specs`` — the wrong journal, or a code change moved every
    fingerprint, either way nothing can be safely resumed.

    Point the runner's own ``journal`` at the same path to extend the
    history: the resumed leg appends its records after the crash
    point.
    """
    specs = list(specs)
    state = load_journal_state(journal_path)
    spec_keys = [journal_trial_key(spec) for spec in specs]
    known = set(state.trials) | set(state.done) | set(state.quarantined)
    if specs and not any(key in known for key in spec_keys):
        raise ValueError(
            "journal {} does not describe this sweep: none of its {} "
            "trial key(s) match (wrong journal, or a code/parameter "
            "change moved every fingerprint)".format(
                journal_path, len(spec_keys)
            )
        )
    precomputed = precomputed_from_state(
        state, specs, runner.cache, partial=partial
    )
    logger.info(
        "resuming sweep from %s: %s; %d of %d trial(s) served from the "
        "journal", journal_path, state.describe(), len(precomputed),
        len(specs),
    )
    return runner.run(specs, precomputed=precomputed)
