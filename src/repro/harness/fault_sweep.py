"""Performance under faults (Section 6.2's robustness claim).

"Earlier work based around the routing protocol which evolved to
become the METRO routing protocol shows that performance degrades
robustly in the face of faults [2][3]."  This sweep reproduces that
experiment's shape on our simulator: the same offered load measured
against networks with increasing numbers of dead wires/routers,
reporting delivered throughput, latency and retry inflation.
"""

from repro.core.random_source import derive_seed
from repro.endpoint.traffic import UniformRandomTraffic
from repro.faults.injector import FaultInjector, random_fault_scenario
from repro.harness.experiment import measure_experiment
from repro.harness.load_sweep import figure3_network
from repro.harness.parallel import TrialRunner, TrialSpec


def _build_warm_workload(
    rate, seed, message_words, metrics, max_attempts, retry_policy, backend,
    network_factory,
):
    """The fault-free network + traffic every fault point starts from."""
    endpoint_kwargs = {}
    if max_attempts is not None:
        endpoint_kwargs["max_attempts"] = max_attempts
    if retry_policy is not None:
        endpoint_kwargs["retry_policy"] = retry_policy
    factory_kwargs = {}
    if backend != "reference":
        factory_kwargs["backend"] = backend
    telemetry = None
    if metrics:
        from repro.telemetry import TelemetryHub

        telemetry = TelemetryHub(spans=False)
        network = network_factory(
            seed=seed,
            telemetry=telemetry,
            endpoint_kwargs=endpoint_kwargs,
            **factory_kwargs
        )
    else:
        network = network_factory(
            seed=seed, endpoint_kwargs=endpoint_kwargs, **factory_kwargs
        )
    traffic = UniformRandomTraffic(
        n_endpoints=network.plan.n_endpoints,
        w=network.codec.w,
        rate=rate,
        message_words=message_words,
        seed=seed + 1,
    )
    return network, traffic, telemetry


def _apply_fault_level(network, n_dead_links, n_dead_routers, seed):
    """Inject one sweep level's random static faults, immediately."""
    injector = FaultInjector(network)
    faults = random_fault_scenario(
        network,
        n_dead_links=n_dead_links,
        n_dead_routers=n_dead_routers,
        seed=seed + 17,
        exclude_final_stage=True,
    )
    for fault in faults:
        injector.now(fault)
    return injector


def _factory_name(network_factory):
    return "{}:{}".format(
        getattr(network_factory, "__module__", "?"),
        getattr(network_factory, "__qualname__", repr(network_factory)),
    )


def make_warm_snapshot(
    rate=0.02,
    seed=0,
    message_words=20,
    warmup_cycles=1500,
    network_factory=figure3_network,
    metrics=False,
    max_attempts=None,
    retry_policy=None,
    backend="reference",
):
    """Warm up the fault-free workload once and capture it.

    Every level of a fault sweep shares the same warmup when faults
    strike at the measured window (``inject_after_warmup``), so the
    warmup can be paid once: the returned
    :class:`~repro.sim.snapshot.Snapshot` feeds
    ``run_fault_point(warm_snapshot=...)`` /
    ``fault_degradation_sweep(warm_snapshot=...)``, which restore it
    and jump straight to fault injection + measurement.  The workload
    parameters are stamped into ``snap.meta`` and re-validated at
    restore time, so a snapshot can never silently warm-start a
    mismatched sweep.
    """
    network, traffic, telemetry = _build_warm_workload(
        rate, seed, message_words, metrics, max_attempts, retry_policy,
        backend, network_factory,
    )
    traffic.attach(network)
    network.run(warmup_cycles)
    return network.engine.snapshot(
        extras={
            "network": network,
            "traffic": traffic,
            "telemetry": telemetry,
        },
        meta={
            "kind": "fault-warmup",
            "rate": rate,
            "seed": seed,
            "message_words": message_words,
            "warmup_cycles": warmup_cycles,
            "metrics": bool(metrics),
            "max_attempts": max_attempts,
            "network_factory": _factory_name(network_factory),
        },
    )


def _restore_warm(warm_snapshot, expected, backend):
    """Restore a warm snapshot, refusing parameter mismatches."""
    from repro.sim.snapshot import restore

    meta = warm_snapshot.meta
    if meta.get("kind") != "fault-warmup":
        raise ValueError(
            "snapshot is not a fault-sweep warm start (meta kind {!r})".format(
                meta.get("kind")
            )
        )
    mismatched = [
        "{}: snapshot={!r} != requested {!r}".format(key, meta.get(key), value)
        for key, value in expected.items()
        if meta.get(key) != value
    ]
    if mismatched:
        raise ValueError(
            "warm snapshot does not match the requested sweep "
            "parameters:\n  " + "\n  ".join(mismatched)
        )
    extras = restore(warm_snapshot, backend=backend).extras
    return extras["network"], extras["traffic"], extras["telemetry"]


def run_fault_point(
    n_dead_links=0,
    n_dead_routers=0,
    rate=0.02,
    seed=0,
    message_words=20,
    warmup_cycles=1500,
    measure_cycles=6000,
    network_factory=figure3_network,
    metrics=False,
    max_attempts=None,
    retry_policy=None,
    backend="reference",
    inject_after_warmup=False,
    warm_snapshot=None,
    fault_seed=None,
):
    """One (fault level, load) measurement.

    ``metrics=True`` attaches a metrics-only telemetry snapshot to the
    result (see :func:`~repro.harness.load_sweep.run_load_point`).
    ``max_attempts``/``retry_policy`` configure the endpoints' retry
    discipline; with a finite budget, messages that exhaust it are
    counted in ``result.undeliverable`` (note: a ``retry_policy``
    object in the params makes the trial spec uncacheable — prefer
    plain ``max_attempts`` for swept trials).  ``backend`` selects the
    engine backend; forwarded to ``network_factory`` only when not the
    default, so custom factories keep working.

    ``inject_after_warmup=True`` moves the fault strike from before
    warmup (the default, modelling a network that was *built* broken)
    to the start of the measured window (modelling faults striking a
    running network).  In that mode the warmup is fault-level
    independent, which is what makes warm starts sound:

    ``warm_snapshot`` (a :func:`make_warm_snapshot` capture) skips the
    build and warmup entirely — the snapshot is restored (onto
    ``backend``, which may differ from the capture backend), this
    level's faults strike, and only the measured window simulates.
    Results are byte-identical to a cold ``inject_after_warmup`` run
    of the same parameters; the snapshot's recorded parameters are
    validated against the requested ones and any mismatch raises.

    ``fault_seed`` decouples the fault draw from the workload seed
    (default: same seed, the historical behaviour).  Warm sweeps need
    the split: every level shares one workload seed (one warmup, one
    snapshot) while the faults stay per-level.
    """
    label = "links={} routers={}".format(n_dead_links, n_dead_routers)
    if fault_seed is None:
        fault_seed = seed
    if warm_snapshot is not None:
        network, traffic, telemetry = _restore_warm(
            warm_snapshot,
            expected={
                "rate": rate,
                "seed": seed,
                "message_words": message_words,
                "warmup_cycles": warmup_cycles,
                "metrics": bool(metrics),
                "max_attempts": max_attempts,
                "network_factory": _factory_name(network_factory),
            },
            backend=backend,
        )
    else:
        network, traffic, telemetry = _build_warm_workload(
            rate, seed, message_words, metrics, max_attempts, retry_policy,
            backend, network_factory,
        )
        if not inject_after_warmup:
            _apply_fault_level(
                network, n_dead_links, n_dead_routers, fault_seed
            )
        traffic.attach(network)
        network.run(warmup_cycles)
    if warm_snapshot is not None or inject_after_warmup:
        _apply_fault_level(network, n_dead_links, n_dead_routers, fault_seed)
    return measure_experiment(
        network,
        traffic,
        measure_cycles,
        label=label,
        telemetry=telemetry,
        warmup_cycles=warmup_cycles,
    )


def fault_trial_specs(
    fault_levels=((0, 0), (4, 0), (8, 0), (16, 0), (4, 2), (8, 4)),
    rate=0.02,
    seed=0,
    warm_snapshot=None,
    inject_after_warmup=False,
    **kwargs
):
    """One :class:`TrialSpec` per fault level, seeded per level.

    The seed path is ``("fault", links, routers, rate)`` so a level's
    randomness is unchanged when levels are added or reordered.

    In the historical (inject-before-warmup) mode the derived seed is
    the trial's whole seed: every level builds its own network.  With
    ``inject_after_warmup`` (and therefore with ``warm_snapshot``) all
    levels share the root workload seed — one network, one warmup,
    identical across levels — and the derived seed becomes the level's
    ``fault_seed`` only.  That split is what lets a single
    :func:`make_warm_snapshot` capture warm-start the entire sweep, and
    makes the warm sweep's results comparable level-for-level with a
    cold ``inject_after_warmup`` sweep.

    A ``warm_snapshot`` keeps specs cacheable: the snapshot enters the
    cache key as its content hash (``Snapshot.cache_token``), so
    re-sweeping from the same capture reuses cached levels while a
    different warmup invalidates them.
    """
    shared_warmup = warm_snapshot is not None or inject_after_warmup
    specs = []
    for links, routers in fault_levels:
        level_seed = derive_seed(seed, "fault", links, routers, rate)
        params = dict(
            n_dead_links=links, n_dead_routers=routers, rate=rate, **kwargs
        )
        if shared_warmup:
            params["inject_after_warmup"] = True
            params["fault_seed"] = level_seed
            if warm_snapshot is not None:
                params["warm_snapshot"] = warm_snapshot
            spec_seed = seed
        else:
            spec_seed = level_seed
        specs.append(
            TrialSpec(
                runner="repro.harness.fault_sweep:run_fault_point",
                params=params,
                seed=spec_seed,
                label="links={} routers={}".format(links, routers),
            )
        )
    return specs


def fault_degradation_sweep(
    fault_levels=((0, 0), (4, 0), (8, 0), (16, 0), (4, 2), (8, 4)),
    rate=0.02,
    seed=0,
    warm_snapshot=None,
    inject_after_warmup=False,
    workers=1,
    cache_dir=None,
    progress=None,
    runner=None,
    **kwargs
):
    """Latency/throughput at one load across increasing fault counts.

    Levels are independent trials: ``workers`` parallelizes them and
    ``cache_dir`` reuses already-measured levels across invocations.

    ``warm_snapshot`` (from :func:`make_warm_snapshot`, built with the
    same ``rate``/``seed``/workload parameters) warm-starts every
    level from one shared post-warmup capture: the levels skip their
    warmup cycles entirely and reproduce a cold
    ``inject_after_warmup=True`` sweep byte-for-byte.
    """
    specs = fault_trial_specs(
        fault_levels=fault_levels,
        rate=rate,
        seed=seed,
        warm_snapshot=warm_snapshot,
        inject_after_warmup=inject_after_warmup,
        **kwargs
    )
    if runner is None:
        runner = TrialRunner(workers=workers, cache_dir=cache_dir, progress=progress)
    return runner.run(specs)


def degradation_failures(results, max_degradation=None, max_undeliverable=None):
    """Sweep levels that degraded beyond the bounds.

    With ``max_degradation``, the first result is the baseline
    (normally the fault-free level); every later level must deliver at
    least ``(1 - max_degradation) * baseline`` words per
    endpoint-cycle.  With ``max_undeliverable``, every level
    (baseline included) may abandon at most that many messages —
    retry-budget exhaustion surfaced as a checkable bound instead of
    messages quietly vanishing from the delivered tally.

    Returns the offending ``(result, floor)`` pairs (``floor`` is the
    delivered-load floor for degradation violations, None for
    undeliverable violations), empty when the whole sweep is within
    bounds.  This is the paper's "degrades robustly" claim made
    checkable: the CLI turns a non-empty return into a nonzero exit
    status.
    """
    failures = []
    if max_degradation is not None:
        if not 0.0 <= max_degradation <= 1.0:
            raise ValueError(
                "max_degradation must be in [0, 1], got {}".format(max_degradation)
            )
        if len(results) >= 2:
            baseline = results[0].delivered_load
            floor = baseline * (1.0 - max_degradation)
            failures.extend(
                (r, floor) for r in results[1:] if r.delivered_load < floor
            )
    if max_undeliverable is not None:
        failures.extend(
            (r, None) for r in results if r.undeliverable > max_undeliverable
        )
    return failures
