"""Performance under faults (Section 6.2's robustness claim).

"Earlier work based around the routing protocol which evolved to
become the METRO routing protocol shows that performance degrades
robustly in the face of faults [2][3]."  This sweep reproduces that
experiment's shape on our simulator: the same offered load measured
against networks with increasing numbers of dead wires/routers,
reporting delivered throughput, latency and retry inflation.
"""

from repro.core.random_source import derive_seed
from repro.endpoint.traffic import UniformRandomTraffic
from repro.faults.injector import FaultInjector, random_fault_scenario
from repro.harness.experiment import run_experiment
from repro.harness.load_sweep import figure3_network
from repro.harness.parallel import TrialRunner, TrialSpec


def run_fault_point(
    n_dead_links=0,
    n_dead_routers=0,
    rate=0.02,
    seed=0,
    message_words=20,
    warmup_cycles=1500,
    measure_cycles=6000,
    network_factory=figure3_network,
    metrics=False,
    max_attempts=None,
    retry_policy=None,
    backend="reference",
):
    """One (fault level, load) measurement.

    ``metrics=True`` attaches a metrics-only telemetry snapshot to the
    result (see :func:`~repro.harness.load_sweep.run_load_point`).
    ``max_attempts``/``retry_policy`` configure the endpoints' retry
    discipline; with a finite budget, messages that exhaust it are
    counted in ``result.undeliverable`` (note: a ``retry_policy``
    object in the params makes the trial spec uncacheable — prefer
    plain ``max_attempts`` for swept trials).  ``backend`` selects the
    engine backend; forwarded to ``network_factory`` only when not the
    default, so custom factories keep working.
    """
    endpoint_kwargs = {}
    if max_attempts is not None:
        endpoint_kwargs["max_attempts"] = max_attempts
    if retry_policy is not None:
        endpoint_kwargs["retry_policy"] = retry_policy
    factory_kwargs = {}
    if backend != "reference":
        factory_kwargs["backend"] = backend
    telemetry = None
    if metrics:
        from repro.telemetry import TelemetryHub

        telemetry = TelemetryHub(spans=False)
        network = network_factory(
            seed=seed,
            telemetry=telemetry,
            endpoint_kwargs=endpoint_kwargs,
            **factory_kwargs
        )
    else:
        network = network_factory(
            seed=seed, endpoint_kwargs=endpoint_kwargs, **factory_kwargs
        )
    injector = FaultInjector(network)
    faults = random_fault_scenario(
        network,
        n_dead_links=n_dead_links,
        n_dead_routers=n_dead_routers,
        seed=seed + 17,
        exclude_final_stage=True,
    )
    for fault in faults:
        injector.now(fault)
    traffic = UniformRandomTraffic(
        n_endpoints=network.plan.n_endpoints,
        w=network.codec.w,
        rate=rate,
        message_words=message_words,
        seed=seed + 1,
    )
    label = "links={} routers={}".format(n_dead_links, n_dead_routers)
    return run_experiment(
        network,
        traffic,
        warmup_cycles=warmup_cycles,
        measure_cycles=measure_cycles,
        label=label,
        telemetry=telemetry,
    )


def fault_trial_specs(
    fault_levels=((0, 0), (4, 0), (8, 0), (16, 0), (4, 2), (8, 4)),
    rate=0.02,
    seed=0,
    **kwargs
):
    """One :class:`TrialSpec` per fault level, seeded per level.

    The seed path is ``("fault", links, routers, rate)`` so a level's
    randomness is unchanged when levels are added or reordered.
    """
    return [
        TrialSpec(
            runner="repro.harness.fault_sweep:run_fault_point",
            params=dict(
                n_dead_links=links, n_dead_routers=routers, rate=rate, **kwargs
            ),
            seed=derive_seed(seed, "fault", links, routers, rate),
            label="links={} routers={}".format(links, routers),
        )
        for links, routers in fault_levels
    ]


def fault_degradation_sweep(
    fault_levels=((0, 0), (4, 0), (8, 0), (16, 0), (4, 2), (8, 4)),
    rate=0.02,
    seed=0,
    workers=1,
    cache_dir=None,
    progress=None,
    runner=None,
    **kwargs
):
    """Latency/throughput at one load across increasing fault counts.

    Levels are independent trials: ``workers`` parallelizes them and
    ``cache_dir`` reuses already-measured levels across invocations.
    """
    specs = fault_trial_specs(
        fault_levels=fault_levels, rate=rate, seed=seed, **kwargs
    )
    if runner is None:
        runner = TrialRunner(workers=workers, cache_dir=cache_dir, progress=progress)
    return runner.run(specs)


def degradation_failures(results, max_degradation=None, max_undeliverable=None):
    """Sweep levels that degraded beyond the bounds.

    With ``max_degradation``, the first result is the baseline
    (normally the fault-free level); every later level must deliver at
    least ``(1 - max_degradation) * baseline`` words per
    endpoint-cycle.  With ``max_undeliverable``, every level
    (baseline included) may abandon at most that many messages —
    retry-budget exhaustion surfaced as a checkable bound instead of
    messages quietly vanishing from the delivered tally.

    Returns the offending ``(result, floor)`` pairs (``floor`` is the
    delivered-load floor for degradation violations, None for
    undeliverable violations), empty when the whole sweep is within
    bounds.  This is the paper's "degrades robustly" claim made
    checkable: the CLI turns a non-empty return into a nonzero exit
    status.
    """
    failures = []
    if max_degradation is not None:
        if not 0.0 <= max_degradation <= 1.0:
            raise ValueError(
                "max_degradation must be in [0, 1], got {}".format(max_degradation)
            )
        if len(results) >= 2:
            baseline = results[0].delivered_load
            floor = baseline * (1.0 - max_degradation)
            failures.extend(
                (r, floor) for r in results[1:] if r.delivered_load < floor
            )
    if max_undeliverable is not None:
        failures.extend(
            (r, None) for r in results if r.undeliverable > max_undeliverable
        )
    return failures
