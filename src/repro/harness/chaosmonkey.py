"""Harness fault injector: kill workers, tear journals, corrupt caches.

:mod:`repro.faults` injects faults into the *simulated* network; this
module injects faults into the *harness itself*, to prove the
resilience layer (supervised pool, run journal, kill-resume) the same
way PR 7's seeded mutations proved the vector backend: by actually
breaking things and watching recovery happen.  Test/CI-only — nothing
here runs unless explicitly armed.

Arming is by environment variable, because the victim is usually a
*worker process* (or a whole CLI subprocess) that inherits its
environment from the test:

* :data:`CHAOSMONKEY_ENV` (``REPRO_CHAOSMONKEY``) —
  ``"<strikes>:<target>"``: SIGKILL the current process at trial
  start, up to ``strikes`` times per trial label, for trials whose
  label contains ``target`` (``*`` = every trial).
* :data:`CHAOSMONKEY_DIR_ENV` (``REPRO_CHAOSMONKEY_DIR``) — ledger
  directory persisting per-label strike counts across the victims'
  deaths (each victim dies before it can remember anything).  With no
  ledger the monkey never strikes: an unbounded killer would turn
  every retry budget into a hang.

:func:`~repro.harness.parallel.execute_trial` calls
:func:`maybe_strike` only when :data:`CHAOSMONKEY_ENV` is set, so
production sweeps pay one env lookup and nothing else.

The other two weapons are plain functions for tests to call directly:
:func:`truncate_tail` (simulate a crash mid-journal-append) and
:func:`corrupt_cache_entry` (flip bytes in a cached trial result —
which content-hash verification must then refuse to serve on resume).
"""

import hashlib
import os
import signal

#: ``"<strikes>:<target>"`` — arm the process killer.
CHAOSMONKEY_ENV = "REPRO_CHAOSMONKEY"
#: Ledger directory for strike counts (required for strikes to land).
CHAOSMONKEY_DIR_ENV = "REPRO_CHAOSMONKEY_DIR"


def arm(ledger_dir, target="*", strikes=1):
    """Environment variables arming the monkey; the caller exports them.

    Returns a dict to merge into ``os.environ`` (in-process pools
    inherit it on fork/spawn) or a subprocess's ``env``.  ``strikes``
    is the per-trial-label kill budget: set it below the runner's
    attempt budget to prove retry-to-success, at/above it to prove
    quarantine.
    """
    os.makedirs(ledger_dir, exist_ok=True)
    return {
        CHAOSMONKEY_ENV: "{}:{}".format(int(strikes), target),
        CHAOSMONKEY_DIR_ENV: str(ledger_dir),
    }


def disarm(environ=None):
    """Remove the monkey's variables from ``environ`` (default ``os.environ``)."""
    environ = os.environ if environ is None else environ
    environ.pop(CHAOSMONKEY_ENV, None)
    environ.pop(CHAOSMONKEY_DIR_ENV, None)


def _ledger_path(ledger_dir, label):
    digest = hashlib.sha256(label.encode("utf-8")).hexdigest()[:16]
    return os.path.join(ledger_dir, "strikes-{}.txt".format(digest))


def _bump_strike(ledger_dir, label):
    """Increment and return the strike count for ``label``.

    Victims of the same label die strictly one at a time (the
    supervisor retries sequentially), so read-modify-replace is safe.
    """
    path = _ledger_path(ledger_dir, label)
    count = 0
    try:
        with open(path) as handle:
            count = int(handle.read().splitlines()[-1])
    except (OSError, ValueError, IndexError):
        count = 0
    count += 1
    os.makedirs(ledger_dir, exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        handle.write("{}\n{}".format(label, count))
    os.replace(tmp, path)
    return count


def strike_counts(ledger_dir):
    """``{trial label: kills so far}`` from a ledger directory."""
    counts = {}
    try:
        names = sorted(os.listdir(ledger_dir))
    except OSError:
        return counts
    for name in names:
        if not name.startswith("strikes-") or not name.endswith(".txt"):
            continue
        try:
            with open(os.path.join(ledger_dir, name)) as handle:
                lines = handle.read().splitlines()
            counts[lines[0]] = int(lines[-1])
        except (OSError, ValueError, IndexError):
            continue
    return counts


def maybe_strike(spec):
    """SIGKILL the current process if the monkey is armed for ``spec``.

    Called at trial start.  No return on a strike — SIGKILL is not
    catchable, which is the point: the supervisor must detect the
    death from the *outside*, exactly like an OOM kill.
    """
    config = os.environ.get(CHAOSMONKEY_ENV)
    if not config:
        return
    strikes_text, _, target = config.partition(":")
    try:
        budget = int(strikes_text)
    except ValueError:
        return
    label = str(spec.label)
    if target and target != "*" and target not in label:
        return
    ledger_dir = os.environ.get(CHAOSMONKEY_DIR_ENV)
    if not ledger_dir:
        return
    if _bump_strike(ledger_dir, label) <= budget:
        os.kill(os.getpid(), signal.SIGKILL)


def truncate_tail(path, nbytes=7):
    """Chop ``nbytes`` off the end of ``path`` (a crash mid-append).

    Returns the number of bytes actually removed.  The journal and
    run-log readers must treat the resulting torn final record as if
    it were never written.
    """
    size = os.path.getsize(path)
    removed = min(int(nbytes), size)
    with open(path, "rb+") as handle:
        handle.truncate(size - removed)
    return removed


def corrupt_cache_entry(cache, key, offset=8, flip=0xFF):
    """XOR one byte of the cached pickle for ``key`` in place.

    Returns True if an entry existed and was corrupted.  A resumed
    sweep must refuse to serve the damaged entry (the journal's
    content hash no longer matches) and re-execute instead.
    """
    path = cache._path(key)
    try:
        size = os.path.getsize(path)
    except OSError:
        return False
    if size == 0:
        return False
    position = min(int(offset), size - 1)
    with open(path, "rb+") as handle:
        handle.seek(position)
        byte = handle.read(1)
        handle.seek(position)
        handle.write(bytes([byte[0] ^ flip]))
    return True
