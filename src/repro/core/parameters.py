"""Architectural parameters (Table 1) and configuration options (Table 2).

The METRO architecture separates *architectural parameters* — fixed at
implementation time, defining a particular router chip — from
*configuration options* — scan-programmable each time the component is
used, some even while in use.  :class:`RouterParameters` captures
Table 1; :class:`RouterConfig` captures Table 2.
"""

import math


def _is_power_of_two(value):
    return value >= 1 and (value & (value - 1)) == 0


class RouterParameters:
    """Table 1: the implementation-time parameters of a METRO router.

    :param i: number of forward ports (must be a power of two).
    :param o: number of backward ports (power of two, >= ``max_d``).
    :param w: bit width of the data channel (>= log2(o)).
    :param max_d: maximum dilation (power of two, <= o).
    :param sp: number of scan paths (>= 1).
    :param ri: number of random inputs (>= 1).
    :param hw: header words consumed per router during connection setup
        (>= 0; 0 means routing bits are shifted out of the head word).
    :param dp: data pipeline stages inside the router (>= 1).
    :param max_vtd: maximum per-port variable-turn-delay slots (>= 0).
    """

    __slots__ = ("i", "o", "w", "max_d", "sp", "ri", "hw", "dp", "max_vtd")

    def __init__(self, i=4, o=4, w=4, max_d=2, sp=1, ri=1, hw=0, dp=1, max_vtd=7):
        if not _is_power_of_two(i):
            raise ValueError("i must be a power of two, got {}".format(i))
        if not _is_power_of_two(o):
            raise ValueError("o must be a power of two, got {}".format(o))
        if not _is_power_of_two(max_d):
            raise ValueError("max_d must be a power of two, got {}".format(max_d))
        if max_d > o:
            raise ValueError("max_d ({}) must be <= o ({})".format(max_d, o))
        if w < math.log2(o):
            raise ValueError("w ({}) must be >= log2(o) = {}".format(w, math.log2(o)))
        if sp < 1:
            raise ValueError("sp must be >= 1, got {}".format(sp))
        if ri < 1:
            raise ValueError("ri must be >= 1, got {}".format(ri))
        if hw < 0:
            raise ValueError("hw must be >= 0, got {}".format(hw))
        if dp < 1:
            raise ValueError("dp must be >= 1, got {}".format(dp))
        if max_vtd < 0:
            raise ValueError("max_vtd must be >= 0, got {}".format(max_vtd))
        self.i = i
        self.o = o
        self.w = w
        self.max_d = max_d
        self.sp = sp
        self.ri = ri
        self.hw = hw
        self.dp = dp
        self.max_vtd = max_vtd

    def radix(self, dilation):
        """Logical radix when configured with the given dilation."""
        if dilation > self.max_d:
            raise ValueError(
                "dilation {} exceeds max_d {}".format(dilation, self.max_d)
            )
        if self.o % dilation:
            raise ValueError(
                "dilation {} does not divide o {}".format(dilation, self.o)
            )
        return self.o // dilation

    def direction_bits(self, dilation):
        """Routing bits consumed per stage at the given dilation."""
        return int(math.log2(self.radix(dilation)))

    def as_dict(self):
        return {name: getattr(self, name) for name in self.__slots__}

    def __eq__(self, other):
        return isinstance(other, RouterParameters) and self.as_dict() == other.as_dict()

    def __repr__(self):
        return "RouterParameters({})".format(
            ", ".join("{}={}".format(k, v) for k, v in self.as_dict().items())
        )


#: The minimal METRO instance the paper fabricated (METROJR-ORBIT):
#: i = o = w = 4, hw = 0, dp = 1, max_d = 2 (Section 6.1).
METROJR = RouterParameters(i=4, o=4, w=4, max_d=2, hw=0, dp=1)


class RouterConfig:
    """Table 2: the scan-configurable options of one METRO router.

    Per-port options are indexed by *port id*: forward ports are
    ``0 .. i-1`` and backward ports are ``i .. i+o-1``, matching the
    ``i + o`` instance counts in Table 2.

    :param params: the :class:`RouterParameters` this config belongs to.
    :param dilation: effective dilation, a power of two <= ``max_d``
        (Section 5.1, *Configurable Dilation*).
    """

    def __init__(self, params, dilation=None):
        self.params = params
        nports = params.i + params.o
        #: Port On/Off — a disabled port is removed from service and can
        #: be scanned/tested in isolation (Section 5.1, Scan Support).
        self.port_enabled = [True] * nports
        #: Off Port Drive Output — whether a disabled port still drives
        #: its output pins (useful during port testing).
        self.off_port_drive = [False] * nports
        #: Turn Delay — pipeline stages on the wire attached to each
        #: port; must match the physical link and not exceed max_vtd.
        self.turn_delay = [min(1, params.max_vtd)] * nports
        #: Fast Reclaim — per forward port: blocked connections send an
        #: immediate backward drop instead of waiting for a TURN to
        #: deliver a detailed status reply.
        self.fast_reclaim = [False] * nports
        #: Swallow — per forward port, only meaningful when hw == 0:
        #: drop the (exhausted) head word after extracting routing bits.
        self.swallow = [False] * params.i
        self._dilation = None
        self.dilation = params.max_d if dilation is None else dilation

    @property
    def dilation(self):
        return self._dilation

    @dilation.setter
    def dilation(self, value):
        if not _is_power_of_two(value):
            raise ValueError("dilation must be a power of two, got {}".format(value))
        if value > self.params.max_d:
            raise ValueError(
                "dilation {} exceeds max_d {}".format(value, self.params.max_d)
            )
        self._dilation = value

    @property
    def radix(self):
        """Logical radix implied by the configured dilation."""
        return self.params.radix(self._dilation)

    def forward_port_id(self, index):
        """Port id of forward port ``index``."""
        if not 0 <= index < self.params.i:
            raise IndexError("forward port {} out of range".format(index))
        return index

    def backward_port_id(self, index):
        """Port id of backward port ``index``."""
        if not 0 <= index < self.params.o:
            raise IndexError("backward port {} out of range".format(index))
        return self.params.i + index

    def set_turn_delay(self, port_id, delay):
        if delay > self.params.max_vtd:
            raise ValueError(
                "turn delay {} exceeds max_vtd {}".format(delay, self.params.max_vtd)
            )
        self.turn_delay[port_id] = delay

    def backward_group(self, direction):
        """Backward-port indices equivalent in the given logical direction.

        With dilation ``d``, backward ports are grouped ``d`` at a time:
        direction ``g`` owns ports ``g*d .. (g+1)*d - 1``.
        """
        d = self._dilation
        if not 0 <= direction < self.radix:
            raise ValueError(
                "direction {} out of range for radix {}".format(direction, self.radix)
            )
        return list(range(direction * d, (direction + 1) * d))

    def config_bit_count(self):
        """Total scan-register bits needed for this config (Table 2)."""
        params = self.params
        nports = params.i + params.o
        turn_bits = max(1, math.ceil(math.log2(params.max_vtd + 1)))
        return (
            nports  # port on/off
            + nports  # off port drive
            + nports * turn_bits  # turn delay
            + nports  # fast reclaim
            + params.i  # swallow
            + max(1, int(math.log2(params.max_d)))  # dilation
        )
