"""The dilated crossbar allocator.

A METRO router's central decision is made here: given a requested
logical direction, pick a backward port from the ``d`` equivalent ports
of that direction's dilation group — *randomly* among those that are
free and enabled (paper, Section 4, Stochastic Path Selection).  Random
selection needs no state beyond the router itself, is cheap in silicon,
and makes source-responsible retries explore alternate paths, which is
what gives METRO networks their tolerance of congestion and dynamic
faults.

The allocator also supports two non-architectural selection policies
(first-free and round-robin) used only by the ablation benchmarks to
quantify what randomness buys.
"""

from repro.core import mutation as _mutation

RANDOM = "random"
FIRST_FREE = "first-free"
ROUND_ROBIN = "round-robin"

_POLICIES = frozenset((RANDOM, FIRST_FREE, ROUND_ROBIN))


class CrossbarAllocator:
    """Tracks backward-port occupancy and arbitrates connection requests.

    :param config: the router's :class:`~repro.core.parameters.RouterConfig`
        (supplies dilation grouping and port enables).
    :param random_stream: source of selection randomness; for cascaded
        routers this is the shared bus, otherwise a per-router stream.
    :param policy: selection policy; the METRO architecture specifies
        RANDOM, the others exist for ablation studies.
    """

    def __init__(self, config, random_stream, policy=RANDOM):
        if policy not in _POLICIES:
            raise ValueError("unknown selection policy {!r}".format(policy))
        self.config = config
        self.random_stream = random_stream
        self.policy = policy
        self._in_use = [False] * config.params.o
        self._rr_next = 0

    def free_ports(self, direction):
        """Enabled, unoccupied backward ports in the dilation group."""
        config = self.config
        candidates = []
        for port in config.backward_group(direction):
            if self._in_use[port]:
                continue
            if not config.port_enabled[config.backward_port_id(port)]:
                continue
            candidates.append(port)
        return candidates

    def allocate(self, direction, decision_key=0):
        """Try to claim a backward port in ``direction``.

        Returns the backward-port index, or None when every equivalent
        output is busy or disabled — the connection is then *blocked*.
        ``decision_key`` distinguishes simultaneous arbitration points
        for shared-randomness cascading.
        """
        candidates = self.free_ports(direction)
        if _mutation.ACTIVE and _mutation.enabled(_mutation.DOUBLE_ALLOCATE):
            # Seeded bug: arbitration ignores the IN-USE bits, so two
            # live connections can be granted the same backward port.
            config = self.config
            candidates = [
                port
                for port in config.backward_group(direction)
                if config.port_enabled[config.backward_port_id(port)]
            ]
        if not candidates:
            return None
        port = candidates[self._select(len(candidates), decision_key)]
        self._in_use[port] = True
        return port

    def _select(self, n, decision_key):
        if n == 1:
            return 0
        if self.policy == RANDOM:
            choose_shared = getattr(self.random_stream, "choose_shared", None)
            if choose_shared is not None:
                return choose_shared(decision_key, n)
            return self.random_stream.choose(n)
        if self.policy == FIRST_FREE:
            return 0
        # Round-robin: rotate a single pointer across all decisions.
        index = self._rr_next % n
        self._rr_next += 1
        return index

    def release(self, port):
        """Return a backward port to the free pool."""
        if not self._in_use[port]:
            if _mutation.ACTIVE:
                # A seeded mutation already freed (or never claimed)
                # this port; tolerate the double release so the run
                # survives long enough for the oracle to report it.
                return
            raise ValueError("backward port {} was not in use".format(port))
        self._in_use[port] = False

    def in_use(self, port):
        return self._in_use[port]

    def occupancy(self):
        """Number of backward ports currently claimed."""
        return sum(self._in_use)
