"""Random bit streams for stochastic path selection.

Each METRO component generates one random output bit stream and
consumes ``ri`` random input bits per cycle (paper, Section 5.1, Width
Cascading): routers that are cascaded must draw *identical* random bits
so they make identical allocation decisions, while standalone routers
simply loop their own generator back to their inputs.

The simulation models a random stream as a deterministic PRNG seeded
per component, so experiments are reproducible, plus a
:class:`SharedRandomBus` that fans one stream out to a cascade group.
"""

import random


class RandomStream:
    """A reproducible stream of random bits/choices for one router.

    The hardware consumes raw bits; the simulation additionally offers
    :meth:`choose`, which picks uniformly among ``n`` candidates using
    the underlying bit stream — the same selection a hardware
    implementation makes from its random inputs, without modeling the
    exact bit-to-choice circuit.
    """

    def __init__(self, seed=0):
        self._rng = random.Random(seed)

    def bit(self):
        """The next random bit (0 or 1)."""
        return self._rng.getrandbits(1)

    def bits(self, count):
        """The next ``count`` random bits as an integer."""
        if count <= 0:
            return 0
        return self._rng.getrandbits(count)

    def choose(self, n):
        """A uniform choice in ``range(n)``; n must be >= 1."""
        if n < 1:
            raise ValueError("cannot choose among {} candidates".format(n))
        if n == 1:
            return 0
        return self._rng.randrange(n)


class SharedRandomBus(RandomStream):
    """One random stream shared by a width-cascaded router group.

    Cascaded routers receive their random bits from off chip so all
    members see identical values each cycle.  The bus memoizes values
    per cycle: every member that asks during cycle ``c`` receives the
    same answer, mirroring the shared external random wires.
    """

    def __init__(self, seed=0):
        super().__init__(seed)
        self._cycle = None
        self._cache = {}

    def begin_cycle(self, cycle):
        """Advance to a new clock cycle, invalidating the memo table."""
        if cycle != self._cycle:
            self._cycle = cycle
            self._cache.clear()

    def choose_shared(self, key, n):
        """A uniform choice in ``range(n)``, identical for every member
        of the cascade that asks with the same ``key`` this cycle.

        ``key`` identifies the decision point (forward port index), so
        multiple simultaneous arbitration decisions draw independent
        values while remaining consistent across the cascade.
        """
        memo_key = (key, n)
        if memo_key not in self._cache:
            self._cache[memo_key] = self.choose(n)
        return self._cache[memo_key]
