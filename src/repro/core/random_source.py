"""Random bit streams for stochastic path selection.

Each METRO component generates one random output bit stream and
consumes ``ri`` random input bits per cycle (paper, Section 5.1, Width
Cascading): routers that are cascaded must draw *identical* random bits
so they make identical allocation decisions, while standalone routers
simply loop their own generator back to their inputs.

The simulation models a random stream as a deterministic PRNG seeded
per component, so experiments are reproducible, plus a
:class:`SharedRandomBus` that fans one stream out to a cascade group.

The module also provides the experiment-level seed machinery:
:func:`derive_seed` hashes a root seed plus a label path into an
independent 64-bit seed, and :class:`SeedStream` wraps a root seed so
sweeps can hand every trial its own reproducible stream.  Derivation
is position-independent — the seed for ``("load", 0.04)`` does not
change when other trials are added to or removed from a sweep — which
is what lets serial and parallel sweep execution produce bit-identical
results.
"""

import hashlib
import random


def derive_seed(root, *path):
    """A deterministic 64-bit seed for the trial identified by ``path``.

    ``root`` is the experiment's root seed; ``path`` is any sequence of
    primitives (strings, ints, floats, tuples) naming the trial — e.g.
    ``derive_seed(3, "load", 0.04)``.  The derivation is a SHA-256 hash
    of the canonical representation, so it is stable across processes,
    platforms and Python versions (unlike ``hash()``), and seeds for
    different paths are statistically independent.
    """
    material = repr((int(root),) + tuple(_canonical_seed_part(p) for p in path))
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def _canonical_seed_part(part):
    if isinstance(part, float):
        return repr(part)
    if isinstance(part, (tuple, list)):
        return tuple(_canonical_seed_part(p) for p in part)
    return part


class SeedStream:
    """A root seed plus namespaced derivation, for fan-out experiments.

    Each trial of a sweep asks the stream for its own seed (or child
    stream) by path; the answers depend only on (root, path), never on
    the order of the requests, so a pool of workers and a serial loop
    draw identical randomness.
    """

    def __init__(self, root=0):
        self.root = int(root)

    def seed(self, *path):
        """The derived 64-bit seed for ``path``."""
        return derive_seed(self.root, *path)

    def child(self, *path):
        """A :class:`SeedStream` rooted at the derived seed for ``path``."""
        return SeedStream(self.seed(*path))

    def stream(self, *path):
        """A :class:`RandomStream` seeded for ``path``."""
        return RandomStream(self.seed(*path))

    def __repr__(self):
        return "<SeedStream root={}>".format(self.root)


class RandomStream:
    """A reproducible stream of random bits/choices for one router.

    The hardware consumes raw bits; the simulation additionally offers
    :meth:`choose`, which picks uniformly among ``n`` candidates using
    the underlying bit stream — the same selection a hardware
    implementation makes from its random inputs, without modeling the
    exact bit-to-choice circuit.
    """

    def __init__(self, seed=0):
        self._rng = random.Random(seed)

    def bit(self):
        """The next random bit (0 or 1)."""
        return self._rng.getrandbits(1)

    def bits(self, count):
        """The next ``count`` random bits as an integer."""
        if count <= 0:
            return 0
        return self._rng.getrandbits(count)

    def choose(self, n):
        """A uniform choice in ``range(n)``; n must be >= 1."""
        if n < 1:
            raise ValueError("cannot choose among {} candidates".format(n))
        if n == 1:
            return 0
        return self._rng.randrange(n)


class SharedRandomBus(RandomStream):
    """One random stream shared by a width-cascaded router group.

    Cascaded routers receive their random bits from off chip so all
    members see identical values each cycle.  The bus memoizes values
    per cycle: every member that asks during cycle ``c`` receives the
    same answer, mirroring the shared external random wires.
    """

    def __init__(self, seed=0):
        super().__init__(seed)
        self._cycle = None
        self._cache = {}

    def begin_cycle(self, cycle):
        """Advance to a new clock cycle, invalidating the memo table."""
        if cycle != self._cycle:
            self._cycle = cycle
            self._cache.clear()

    def choose_shared(self, key, n):
        """A uniform choice in ``range(n)``, identical for every member
        of the cascade that asks with the same ``key`` this cycle.

        ``key`` identifies the decision point (forward port index), so
        multiple simultaneous arbitration decisions draw independent
        values while remaining consistent across the cascade.
        """
        memo_key = (key, n)
        if memo_key not in self._cache:
            self._cache[memo_key] = self.choose(n)
        return self._cache[memo_key]
