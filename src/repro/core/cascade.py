"""Router width cascading (Section 5.1).

Routing components are pin-limited: for a fixed pin budget, wider
datapaths mean fewer ports.  METRO instead lets ``c`` narrow routers
act as one logical router of width ``c * w``.  Two hooks make the
members behave identically:

* **Shared randomness** — every member draws its random selection bits
  from the same external stream (here a
  :class:`~repro.core.random_source.SharedRandomBus`), so identical
  connection requests produce identical backward-port allocations.

* **Wired-AND IN-USE pull-up** — each backward port exports an active-
  low "not in use" signal wired across the cascade.  Any allocation
  disagreement (possible only under faults, e.g. a corrupted header
  slice) is detected the moment it occurs and the connection is shut
  down on *all* members, containing the fault.  End-to-end checksums
  still back this up for the improbable cases the pull-up misses.

:class:`CascadeGroup` implements the pull-up as a post-tick cross
check; :func:`split_value` / :func:`join_slices` carve wide words into
per-member slices (routing headers are replicated into every slice,
which is why Table 4 multiplies ``hbits`` by ``c``).
"""

from repro.sim.component import Component


def split_value(value, w, c):
    """Slice a ``c*w``-bit value into ``c`` little-endian ``w``-bit words."""
    mask = (1 << w) - 1
    return [(value >> (index * w)) & mask for index in range(c)]


def join_slices(slices, w):
    """Inverse of :func:`split_value`."""
    value = 0
    for index, part in enumerate(slices):
        value |= (part & ((1 << w) - 1)) << (index * w)
    return value


class CascadeGroup(Component):
    """The wired-AND IN-USE consistency check across cascaded routers.

    Register this component *after* its members so it observes each
    cycle's allocations.  On any per-backward-port disagreement it
    force-tears-down the involved connections on every member.

    :param members: the cascaded :class:`~repro.core.router.MetroRouter`
        objects; they must share identical ``i``/``o`` geometry and are
        expected to share a :class:`~repro.core.random_source.SharedRandomBus`.
    :param trace: optional trace; records ``inuse-mismatch`` events.
    """

    def __init__(self, members, name="cascade", trace=None):
        if len(members) < 2:
            raise ValueError("a cascade needs at least two members")
        geometry = {(m.params.i, m.params.o) for m in members}
        if len(geometry) != 1:
            raise ValueError("cascade members must share port geometry")
        self.members = list(members)
        self.name = name
        self.trace = trace
        self.mismatches = 0

    def tick(self, cycle):
        reference = self.members[0]
        o = reference.params.o
        owner_ports = [m.backward_owner_ports() for m in self.members]
        for q in range(o):
            owners = {ports[q] for ports in owner_ports}
            if len(owners) == 1:
                continue
            # Disagreement: the IN-USE pull-up fires.  Kill every
            # connection touching this backward port, on every member.
            self.mismatches += 1
            if self.trace is not None:
                self.trace.record(cycle, self.name, "inuse-mismatch", q)
            for owner in owners:
                if owner is None:
                    continue
                for member in self.members:
                    member.force_teardown(owner)

    def consistent(self):
        """True when all members agree on every allocation."""
        reference = self.members[0].backward_owner_ports()
        return all(
            m.backward_owner_ports() == reference for m in self.members[1:]
        )
