"""The METRO router architecture — the paper's primary contribution.

Submodules:

* :mod:`~repro.core.words` — data/control word encoding (DATA-IDLE,
  TURN, DROP, STATUS) and checksums.
* :mod:`~repro.core.parameters` — Table 1 architectural parameters and
  Table 2 configuration options.
* :mod:`~repro.core.random_source` — random bit streams for stochastic
  path selection, including the shared bus for width cascading.
* :mod:`~repro.core.crossbar` — the dilated crossbar allocator.
* :mod:`~repro.core.router` — the router component itself.
* :mod:`~repro.core.cascade` — width cascading of narrow routers.
"""

from repro.core.crossbar import CrossbarAllocator, FIRST_FREE, RANDOM, ROUND_ROBIN
from repro.core.parameters import METROJR, RouterConfig, RouterParameters
from repro.core.random_source import RandomStream, SharedRandomBus
from repro.core.router import MetroRouter
from repro.core.words import (
    Checksum,
    RouterStatus,
    Word,
    checksum_of,
    data,
    DROP_WORD,
    IDLE_WORD,
    TURN_WORD,
)

__all__ = [
    "Checksum",
    "CrossbarAllocator",
    "DROP_WORD",
    "FIRST_FREE",
    "IDLE_WORD",
    "METROJR",
    "MetroRouter",
    "RANDOM",
    "ROUND_ROBIN",
    "RandomStream",
    "RouterConfig",
    "RouterParameters",
    "RouterStatus",
    "SharedRandomBus",
    "TURN_WORD",
    "Word",
    "checksum_of",
    "data",
]
