"""The METRO router: a dilated, pipelined, circuit-switched crossbar.

This module implements the router behaviour of Sections 3-5 of the
paper as a clocked component:

* **Self routing** — the leading words of each stream carry the routing
  specification; the router extracts its direction bits, arbitrates for
  a backward port in that dilation group (randomly among free
  equivalents) and locks the crosspoint for the life of the connection.
* **Pipelined circuit switching** — data traverses the router in ``dp``
  clock cycles through an internal pipeline; no word is ever buffered
  beyond that pipeline (stateless network: stopping the clock loses no
  messages).
* **Connection setup options** — ``hw >= 1`` routers consume ``hw``
  words per stage (pipelined connection setup); ``hw = 0`` routers
  shift the head word left by ``log2(radix)`` bits, optionally
  *swallowing* it when the configured swallow bit says the word is
  exhausted.
* **Connection reversal (TURN)** — when a TURN passes through, the
  router flushes its pipeline, reverses the crosspoint, injects a
  STATUS word (blocked flag + running checksum) into the new data
  stream and fills reversal bubbles with DATA-IDLE.  Any number of
  reversals may occur per connection.
* **Blocking** — when every enabled backward port in the requested
  direction is busy the connection blocks.  In *detailed* mode the
  router swallows the stream and answers the eventual TURN with
  STATUS(blocked) + DROP; in *fast reclamation* mode it immediately
  propagates a backward-control-bit (BCB) drop toward the source,
  freeing resources at once.
* **Fault containment** — a connection whose live input goes silent for
  ``signal_timeout`` cycles is torn down so a dead upstream component
  cannot wedge network resources forever (in hardware, loss of line
  coding is similarly detectable).

Port geometry: forward port ``p`` attaches to ``forward_ends[p]`` (the
*B* side of the upstream channel); backward port ``q`` attaches to
``backward_ends[q]`` (the *A* side of the downstream channel).
"""

from repro.core import mutation as _mutation
from repro.core import words as W
from repro.core.crossbar import CrossbarAllocator, RANDOM
from repro.core.parameters import RouterConfig
from repro.core.random_source import RandomStream, SharedRandomBus
from repro.sim.component import ACTIVE, Component, PARKED
from repro.telemetry.nullobj import NULL_TELEMETRY

# Forward-port FSM states (exposed for tests via connection_state()).
IDLE_STATE = "idle"          # no connection; waiting for a head word
SETUP_STATE = "setup"        # hw >= 1: consuming header words
FORWARD_STATE = "forward"    # established; data flowing source -> dest
BLOCKED_STATE = "blocked"    # detailed-mode block; swallowing until TURN
REVERSED_STATE = "reversed"  # established; data flowing dest -> source
DISCARD_STATE = "discard"    # torn down; draining in-flight words


class _Connection:
    """Per-forward-port connection state."""

    __slots__ = (
        "state",
        "fwd_port",
        "bwd_port",
        "pipe",
        "checksum",
        "words_forwarded",
        "header_remaining",
        "direction",
        "status_pending",
        "silent_cycles",
        "drop_then_idle",
    )

    def __init__(self, fwd_port, dp):
        self.fwd_port = fwd_port
        self.pipe = [None] * dp
        self.checksum = W.Checksum()
        self.reset()

    def reset(self):
        self.state = IDLE_STATE
        self.bwd_port = None
        for index in range(len(self.pipe)):
            self.pipe[index] = None
        self.checksum.reset()
        self.words_forwarded = 0
        self.header_remaining = 0
        self.direction = None
        self.status_pending = False
        self.silent_cycles = 0
        self.drop_then_idle = False

    def pipe_push(self, word):
        """Shift the internal pipeline one stage; returns the word exiting."""
        pipe = self.pipe
        out = pipe[-1]
        for index in range(len(pipe) - 1, 0, -1):
            pipe[index] = pipe[index - 1]
        pipe[0] = word
        return out

    def pipe_clear(self):
        for index in range(len(self.pipe)):
            self.pipe[index] = None

    def begin_new_direction(self):
        """Bookkeeping common to every reversal of the data flow."""
        self.status_pending = True
        self.silent_cycles = 0
        self.pipe_clear()


class MetroRouter(Component):
    """One METRO routing component.

    :param params: architectural parameters (Table 1).
    :param name: identifier used in traces and STATUS words.
    :param config: configuration options (Table 2); a default-valued
        config is created when omitted.
    :param random_stream: selection randomness; a
        :class:`~repro.core.random_source.SharedRandomBus` makes this
        router cascade-consistent with its group.
    :param selection_policy: backward-port selection policy; METRO
        specifies random, the others exist for ablation studies.
    :param signal_timeout: cycles of silence on a live connection
        before the router unilaterally tears it down (fault
        containment); None disables the watchdog.
    :param trace: optional :class:`~repro.sim.trace.Trace`.
    """

    def __init__(
        self,
        params,
        name="router",
        config=None,
        random_stream=None,
        selection_policy=RANDOM,
        signal_timeout=64,
        trace=None,
        telemetry=None,
    ):
        self.params = params
        self.name = name
        self.config = config if config is not None else RouterConfig(params)
        if self.config.params is not params:
            raise ValueError("config was built for different parameters")
        if random_stream is None:
            random_stream = RandomStream(seed=hash(name) & 0xFFFFFFFF)
        self.random_stream = random_stream
        #: Cascaded routers share a bus that must be advanced once per
        #: cycle; checked here once instead of once per tick.
        self._shared_bus = isinstance(random_stream, SharedRandomBus)
        self.allocator = CrossbarAllocator(
            self.config, random_stream, policy=selection_policy
        )
        self.signal_timeout = signal_timeout
        self.trace = trace
        #: A live TelemetryHub or the null object; every event site
        #: already funnels through _record, which guards on .enabled.
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        #: Channel ends, installed by the network builder via attach_*().
        self.forward_ends = [None] * params.i
        self.backward_ends = [None] * params.o
        self._conns = [_Connection(p, params.dp) for p in range(params.i)]
        #: Which connection owns each backward port (or None).  Entries
        #: may be draining connections that no longer own a forward port.
        self._bwd_owner = [None] * params.o
        #: Connections whose DROP has been accepted but whose pipelines
        #: are still flushing downstream; their forward port is already
        #: free for a new circuit (back-to-back connection support).
        self._draining = []
        #: Boundary-capture registers for scan (last word seen per port;
        #: forward ports then backward ports, Table 2 port-id order).
        self.boundary_capture = [None] * (params.i + params.o)
        #: Scan-driven test word per backward port (off-port drive).
        self._scan_drive = [None] * params.o
        self._cycle = 0
        #: A dead router (hard fault) goes completely silent; neighbours
        #: recover through their dead-signal watchdogs and sources route
        #: around it by stochastic retry.
        self.dead = False
        #: Set by the event-driven engine backend; out-of-tick mutators
        #: (forced teardowns, scan drives) call it so a parked router is
        #: re-scheduled.  None under the dense reference engine.
        self.wake_hook = None

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------

    def __getstate__(self):
        """Shed engine- and scan-installed machinery for snapshots.

        ``wake_hook`` is re-installed by the event backend's prepare
        pass.  ``multitap`` (when a scan fabric attached one) holds
        closure-captured scan registers that cannot pickle; it is
        replaced by a marker and rebuilt on restore.  Every scan
        transaction begins from Test-Logic-Reset, so residual TAP/DR
        state between transactions is unobservable and a fresh MultiTap
        is behaviourally identical — except for deliberately killed TAP
        ports, which the marker carries across.
        """
        state = dict(self.__dict__)
        state["wake_hook"] = None
        multitap = state.pop("multitap", None)
        if multitap is not None:
            state["_scan_marker"] = (multitap.sp, sorted(multitap.dead_ports))
        return state

    def __setstate__(self, state):
        marker = state.pop("_scan_marker", None)
        self.__dict__.update(state)
        if marker is not None:
            from repro.scan.controller import attach_scan

            sp, dead_ports = marker
            multitap = attach_scan(self, sp=sp)
            multitap.dead_ports.update(dead_ports)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach_forward(self, port, channel_end):
        """Connect forward port ``port`` to the B side of its channel."""
        self.forward_ends[port] = channel_end

    def attach_backward(self, port, channel_end):
        """Connect backward port ``port`` to the A side of its channel."""
        self.backward_ends[port] = channel_end

    # ------------------------------------------------------------------
    # Introspection (used by tests, stats and the scan subsystem)
    # ------------------------------------------------------------------

    def connection_state(self, fwd_port):
        return self._conns[fwd_port].state

    def connected_backward_port(self, fwd_port):
        return self._conns[fwd_port].bwd_port

    def busy_backward_ports(self):
        return [q for q, owner in enumerate(self._bwd_owner) if owner is not None]

    def is_quiescent(self):
        """True when no connection is open or in flight through here."""
        return (
            all(conn.state == IDLE_STATE for conn in self._conns)
            and not self._draining
        )

    # ------------------------------------------------------------------
    # Activity protocol (event-driven engine backend)
    # ------------------------------------------------------------------

    def activity_state(self):
        """How much of a cycle this router needs (see repro.sim.component).

        A dead router is parked outright: its tick is an unconditional
        early return.  A live router parks only when it is quiescent,
        has no scan drive pending, *and* its last tick read silence on
        every attached forward port — the boundary capture registers
        then already hold the ``None`` the reference engine would keep
        rewriting, so skipped cycles are observably identical even if a
        run stops mid-park.
        """
        if self.dead:
            return PARKED
        if self._draining:
            return ACTIVE
        for conn in self._conns:
            if conn.state != IDLE_STATE:
                return ACTIVE
        for fp in range(self.params.i):
            if self.boundary_capture[fp] is not None:
                return ACTIVE
        for word in self._scan_drive:
            if word is not None:
                return ACTIVE
        return PARKED

    def on_park(self):
        """Nothing to normalize: see :meth:`activity_state`."""

    def attached_channels(self):
        """``(channel, is_a_side)`` for every wired port.

        Forward ports hold the B side of their (upstream) channel,
        backward ports the A side of their (downstream) channel.
        """
        channels = []
        for end in self.forward_ends:
            if end is not None:
                channels.append((end.channel, False))
        for end in self.backward_ends:
            if end is not None:
                channels.append((end.channel, True))
        return channels

    def _notify_wake(self):
        if self.wake_hook is not None:
            self.wake_hook(self)

    def scan_drive_backward(self, port, word):
        """Scan subsystem: drive ``word`` out a *disabled* backward port.

        Models the Off Port Drive Output option (Table 2): a disabled
        port can still drive test patterns so the attached wire and the
        neighbouring component's boundary can be examined without
        taking the rest of the router out of service.
        """
        port_id = self.config.backward_port_id(port)
        if self.config.port_enabled[port_id]:
            raise ValueError(
                "backward port {} is enabled; disable it first".format(port)
            )
        if not self.config.off_port_drive[port_id]:
            raise ValueError(
                "off-port drive not enabled for backward port {}".format(port)
            )
        self._scan_drive[port] = word
        self._notify_wake()

    # ------------------------------------------------------------------
    # Per-cycle behaviour
    # ------------------------------------------------------------------

    def tick(self, cycle):
        if self.dead:
            return
        self._cycle = cycle
        if self._shared_bus:
            self.random_stream.begin_cycle(cycle)
        self._service_backward_bcb()
        if self._draining:
            self._service_draining()
        # The port loop is inlined (rather than calling a per-port
        # helper) and skips the state dispatch for silent idle ports —
        # the overwhelmingly common case on a lightly loaded network.
        forward_ends = self.forward_ends
        boundary = self.boundary_capture
        enabled = self.config.port_enabled
        for conn in self._conns:
            fp = conn.fwd_port
            fwd_end = forward_ends[fp]
            if fwd_end is None:
                continue
            word = fwd_end.recv()
            # The boundary register observes the pins even on a
            # disabled port — that observability is what port-isolation
            # tests use.  (Forward port ids equal forward indices.)
            boundary[fp] = word
            state = conn.state
            if state == IDLE_STATE and (word is None or word.kind != W.DATA):
                continue
            if not enabled[fp]:
                continue
            if state == IDLE_STATE:
                self._handle_idle(conn, word)
            elif state == SETUP_STATE:
                self._handle_setup(conn, word)
            elif state == FORWARD_STATE:
                self._handle_forward(conn, word)
            elif state == BLOCKED_STATE:
                self._handle_blocked(conn, word)
            elif state == REVERSED_STATE:
                self._handle_reversed(conn, word)
            elif state == DISCARD_STATE:
                self._handle_discard(conn, word)
        self._drive_scan_outputs()

    def _service_draining(self):
        """Flush pipelines of closed connections; free ports on DROP exit."""
        for conn in list(self._draining):
            out = conn.pipe_push(None)
            if out is None:
                continue
            self.backward_ends[conn.bwd_port].send(out)
            if out.kind == W.DROP:
                self._record("conn-drop", conn.fwd_port, conn.bwd_port)
                self._release_backward(conn)
                self._draining.remove(conn)

    # -- fast reclamation arriving from downstream ---------------------

    def _service_backward_bcb(self):
        """React to BCB drops propagating up from blocked routers below."""
        for q, conn in enumerate(self._bwd_owner):
            if conn is None:
                continue
            end = self.backward_ends[q]
            if end is None:
                continue
            stage_count = end.recv_bcb()
            if stage_count is None:
                continue
            # Terminate the downstream side, free the output, and keep
            # propagating the (incremented) drop toward the source.
            end.send(W.DROP_WORD)
            skip_release = _mutation.ACTIVE and _mutation.enabled(
                _mutation.SKIP_BCB_RELEASE
            )
            if conn in self._draining:
                # Already closing; just finish immediately.
                if not skip_release:
                    self._release_backward(conn)
                self._draining.remove(conn)
                continue
            fwd_end = self.forward_ends[conn.fwd_port]
            if fwd_end is not None:
                fwd_end.send_bcb(stage_count + 1)
            self._record("bcb-propagate", conn.fwd_port, stage_count + 1)
            if not skip_release:
                self._release_backward(conn)
            conn.reset()
            conn.state = DISCARD_STATE

    # -- forward-port FSM ----------------------------------------------

    def _handle_idle(self, conn, word):
        if word is None or word.kind != W.DATA:
            # Stale control words or silence: nothing to route.
            return
        if self.params.hw == 0:
            self._route(conn, self._extract_direction_hw0(conn, word))
        else:
            conn.direction = word.value & (self.config.radix - 1)
            conn.silent_cycles = 0
            conn.header_remaining = self.params.hw - 1
            if conn.header_remaining == 0:
                self._route(conn, None)
            else:
                conn.state = SETUP_STATE

    def _extract_direction_hw0(self, conn, word):
        """Pull direction bits off the head word; returns the shifted word.

        The head word's top ``log2(radix)`` bits select the direction;
        the word is shifted left so the next stage sees *its* bits on
        top.  When this forward port's swallow bit is set the word is
        exhausted and dropped entirely.
        """
        bits = self.params.direction_bits(self.config.dilation)
        width = self.params.w
        value = word.value
        conn.direction = value >> (width - bits) if bits else 0
        if self.config.swallow[conn.fwd_port]:
            return None
        shifted = (value << bits) & ((1 << width) - 1)
        return W.data(shifted)

    def _route(self, conn, forward_word):
        """Arbitrate for a backward port and establish (or block)."""
        direction = conn.direction
        if _mutation.ACTIVE and _mutation.enabled(_mutation.WRONG_DIRECTION):
            direction = (direction + 1) % self.config.radix
        backward = self.allocator.allocate(direction, decision_key=conn.fwd_port)
        if backward is None:
            self._block(conn)
            return
        conn.bwd_port = backward
        self._bwd_owner[backward] = conn
        conn.state = FORWARD_STATE
        conn.silent_cycles = 0
        self._record("conn-open", conn.fwd_port, (conn.direction, backward))
        if forward_word is not None and forward_word.kind == W.DATA:
            # The shifted head word is forwarded data like any other.
            conn.checksum.update(forward_word.value)
            conn.words_forwarded += 1
        self._emit_backward(conn, conn.pipe_push(forward_word))

    def _block(self, conn):
        fp = conn.fwd_port
        fast = self.config.fast_reclaim[fp]  # forward port id == index
        self._record(
            "conn-blocked", fp, (conn.direction, "fast" if fast else "detailed")
        )
        if fast:
            self.forward_ends[fp].send_bcb(1)
            self._record("bcb-sent", fp, 1)
            conn.reset()
            conn.state = DISCARD_STATE
        else:
            conn.state = BLOCKED_STATE
            conn.silent_cycles = 0

    def _handle_setup(self, conn, word):
        if word is None:
            if self._watchdog(conn):
                conn.reset()
            return
        conn.silent_cycles = 0
        if word.kind == W.DROP:
            conn.reset()
            return
        if word.kind == W.TURN:
            # Malformed: reversal before the header completed.  Answer
            # like a blocked connection so the source learns and retries.
            self._finish_blocked_turn(conn)
            return
        if word.kind == W.IDLE:
            return
        conn.header_remaining -= 1
        if conn.header_remaining <= 0:
            self._route(conn, None)

    def _handle_forward(self, conn, word):
        if word is not None and word.kind == W.DROP:
            # Accept the close at pipe *entry*: the forward port frees
            # immediately (a new circuit request may be one cycle
            # behind the DROP), while the old pipeline keeps flushing
            # downstream and releases the backward port when the DROP
            # exits.
            self._begin_drain(conn)
            return
        if conn.status_pending:
            # The flow just reversed back to forward through this
            # router; its STATUS word leads the new stream downstream.
            self._emit_status(conn, self.backward_ends[conn.bwd_port])
            if word is not None and word.kind == W.DATA:
                conn.checksum.update(word.value)
                conn.words_forwarded += 1
            conn.pipe_push(word)  # pipeline refilling; nothing exits yet
            return
        if word is None:
            if self._watchdog(conn):
                self._teardown_downstream(conn)
                return
            # Hold the line: a bubble becomes DATA-IDLE downstream so
            # the circuit visibly stays open.
            word = W.IDLE_WORD
        else:
            conn.silent_cycles = 0
            if word.kind == W.DATA:
                conn.checksum.update(word.value)
                conn.words_forwarded += 1
        out = conn.pipe_push(word)
        self._emit_backward(conn, out)
        if out is not None and out.kind == W.TURN:
            conn.state = REVERSED_STATE
            conn.begin_new_direction()
            self._record("conn-turn", conn.fwd_port, conn.bwd_port)

    def _begin_drain(self, conn):
        """Accept a forward-direction close: free the port, flush later."""
        out = conn.pipe_push(W.DROP_WORD)
        self._emit_backward(conn, out)
        self._record("conn-close-accepted", conn.fwd_port, conn.bwd_port)
        self._draining.append(conn)
        self._conns[conn.fwd_port] = _Connection(conn.fwd_port, self.params.dp)
        if _mutation.ACTIVE and _mutation.enabled(_mutation.FREE_PORT_EARLY):
            # Seeded bug: unlock the crosspoint while the old stream is
            # still flushing through it.
            drained = conn.bwd_port
            self.allocator.release(drained)
            self._bwd_owner[drained] = None

    def _handle_blocked(self, conn, word):
        if word is None:
            if self._watchdog(conn):
                conn.reset()
            return
        conn.silent_cycles = 0
        if word.kind == W.DROP:
            conn.reset()
        elif word.kind == W.TURN:
            self._finish_blocked_turn(conn)
        # DATA/IDLE words of the doomed stream are swallowed silently.

    def _finish_blocked_turn(self, conn):
        """Detailed-mode reply: STATUS(blocked) then DROP, then idle.

        Nothing can be in flight behind the TURN (the upstream router
        reversed as it forwarded it), so after emitting the deferred
        DROP the port returns straight to idle.
        """
        self.forward_ends[conn.fwd_port].send(
            W.status(True, conn.checksum.value, conn.words_forwarded, self.name)
        )
        self._record("conn-blocked-reply", conn.fwd_port, None)
        conn.reset()
        conn.state = DISCARD_STATE
        conn.drop_then_idle = True

    def _handle_reversed(self, conn, word_from_upstream):
        fp_end = self.forward_ends[conn.fwd_port]
        bwd_end = self.backward_ends[conn.bwd_port]

        if word_from_upstream is not None and word_from_upstream.kind == W.DROP:
            # Close arriving against the reverse flow: the source gave
            # up (e.g. reply timeout).  Tear down both sides at once.
            bwd_end.send(W.DROP_WORD)
            self._record("conn-drop", conn.fwd_port, conn.bwd_port)
            self._release_backward(conn)
            conn.reset()
            return

        reverse_in = bwd_end.recv()
        self.boundary_capture[self.params.i + conn.bwd_port] = reverse_in
        if reverse_in is None:
            if self._watchdog(conn):
                fp_end.send(W.DROP_WORD)
                self._record("watchdog-teardown", conn.fwd_port, "reversed")
                self._release_backward(conn)
                conn.reset()
                return
        else:
            conn.silent_cycles = 0
            if reverse_in.kind == W.DATA:
                conn.checksum.update(reverse_in.value)
                conn.words_forwarded += 1

        out = conn.pipe_push(reverse_in)
        if conn.status_pending:
            # The router's own STATUS word precedes all reverse data.
            # (The pipe is freshly cleared, so nothing exits this cycle.)
            self._emit_status(conn, fp_end)
            return
        if out is None:
            fp_end.send(W.IDLE_WORD)
            return
        fp_end.send(out)
        if out.kind == W.DROP:
            self._record("conn-drop", conn.fwd_port, conn.bwd_port)
            self._release_backward(conn)
            conn.reset()
        elif out.kind == W.TURN:
            # The destination handed the direction back: flow forward
            # again, with a fresh STATUS leading the new stream.
            conn.state = FORWARD_STATE
            conn.begin_new_direction()
            self._record("conn-turn", conn.fwd_port, conn.bwd_port)

    def _handle_discard(self, conn, word):
        if conn.drop_then_idle:
            self.forward_ends[conn.fwd_port].send(W.DROP_WORD)
            conn.reset()
            return
        if word is None:
            if self._watchdog(conn):
                conn.reset()
            return
        conn.silent_cycles = 0
        if word.kind == W.DROP:
            conn.reset()

    def backward_owner_ports(self):
        """Forward-port index owning each backward port (None if free).

        Draining connections still count as owners — the wired-AND
        IN-USE signal stays asserted until the DROP leaves the chip.
        """
        return [
            owner.fwd_port if owner is not None else None
            for owner in self._bwd_owner
        ]

    def force_teardown(self, fwd_port):
        """Shut a connection down immediately (cascade fault containment).

        Used by the width-cascading wired-AND IN-USE check (Section
        5.1): on an allocation disagreement the connection is killed on
        every attached router — DROP downstream, BCB upstream — so the
        fault cannot corrupt further traffic.
        """
        conn = self._conns[fwd_port]
        if conn.state == IDLE_STATE:
            return
        if conn.bwd_port is not None:
            self.backward_ends[conn.bwd_port].send(W.DROP_WORD)
            self._release_backward(conn)
        end = self.forward_ends[fwd_port]
        if end is not None:
            end.send_bcb(1)
        self._record("forced-teardown", fwd_port, None)
        conn.reset()
        conn.state = DISCARD_STATE
        self._notify_wake()

    def quiesce_backward_port(self, q):
        """Evict whatever owns backward port ``q`` (repair preparation).

        The online fault manager must not run an isolation test over a
        wire while a live circuit holds it, so it evicts the owner
        first: an active connection is torn down exactly like a
        cascade containment (DROP downstream, BCB upstream); a
        draining connection has its flush cut short with an immediate
        DROP.  Returns True when a connection was evicted.
        """
        owner = self._bwd_owner[q]
        if owner is None:
            return False
        if owner in self._draining:
            self.backward_ends[q].send(W.DROP_WORD)
            self._record("conn-drop", owner.fwd_port, q)
            self._release_backward(owner)
            self._draining.remove(owner)
            self._notify_wake()
        else:
            self.force_teardown(owner.fwd_port)
        return True

    # -- helpers --------------------------------------------------------

    def _emit_status(self, conn, end):
        if _mutation.ACTIVE and _mutation.enabled(_mutation.SKIP_STATUS):
            # Seeded bug: the reversal proceeds without its STATUS word.
            conn.status_pending = False
            conn.checksum.reset()
            conn.words_forwarded = 0
            return
        checksum = conn.checksum.value
        if _mutation.ACTIVE and _mutation.enabled(
            _mutation.CORRUPT_STATUS_CHECKSUM
        ):
            checksum ^= 0xFF
        end.send(
            W.status(False, checksum, conn.words_forwarded, self.name)
        )
        conn.status_pending = False
        # The accumulators begin afresh for the new flow direction.
        conn.checksum.reset()
        conn.words_forwarded = 0

    def _emit_backward(self, conn, word):
        if word is not None:
            self.backward_ends[conn.bwd_port].send(word)

    def _release_backward(self, conn):
        if conn.bwd_port is None:
            return
        if _mutation.ACTIVE:
            if _mutation.enabled(_mutation.LEAK_PORT_ON_DROP):
                # Seeded bug: the crosspoint is never returned to the
                # pool; the connection just forgets it owned one.
                conn.bwd_port = None
                return
            if not self.allocator.in_use(conn.bwd_port):
                # A seeded early release already freed this port.
                conn.bwd_port = None
                return
        self.allocator.release(conn.bwd_port)
        self._bwd_owner[conn.bwd_port] = None
        conn.bwd_port = None

    def _teardown_downstream(self, conn):
        self.backward_ends[conn.bwd_port].send(W.DROP_WORD)
        self._record("watchdog-teardown", conn.fwd_port, "forward")
        self._release_backward(conn)
        conn.reset()

    def _watchdog(self, conn):
        """Count silence; True when the dead-signal timeout expires."""
        if self.signal_timeout is None:
            return False
        conn.silent_cycles += 1
        return conn.silent_cycles >= self.signal_timeout

    def _drive_scan_outputs(self):
        for q, word in enumerate(self._scan_drive):
            if word is None:
                continue
            end = self.backward_ends[q]
            if end is not None:
                end.send(word)
            self._scan_drive[q] = None

    def _record(self, kind, port, detail):
        if self.trace is not None:
            self.trace.record(self._cycle, self.name, kind, (port, detail))
        if self.telemetry.enabled:
            self.telemetry.router_event(self._cycle, self, kind, port, detail)
