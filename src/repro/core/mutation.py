"""Test-only protocol mutation hooks.

The conformance oracle (:mod:`repro.verify.oracle`) claims to catch
METRO protocol violations.  That claim is itself testable: this module
lets the test suite *seed* deliberate protocol bugs — skip a STATUS
word, free a backward port early, route to the wrong dilation group —
and assert that the oracle flags every one of them (the mutation smoke
test, ``tests/verify/test_mutations.py``).

The hooks are deliberately dumb: a module-level set of active mutation
names, consulted at a handful of guarded points in the router and
allocator.  With no mutation active (the only state production code
ever runs in) each guard is a single falsy module-attribute check on
paths that are already branch-heavy, so the simulation's behaviour and
determinism are unchanged.

Usage (tests only)::

    from repro.core import mutation

    with mutation.seeded(mutation.SKIP_STATUS):
        ...  # routers silently drop their STATUS words

Never activate mutations outside a test: they exist to break the
protocol.
"""

from contextlib import contextmanager

#: Drop the STATUS word a router injects at each reversal (the stream
#: reverses without the per-stage blocked flag + checksum).
SKIP_STATUS = "skip-status"

#: Report a corrupted checksum in every STATUS word (the checksum path
#: is broken even though data flows correctly).
CORRUPT_STATUS_CHECKSUM = "corrupt-status-checksum"

#: Release the backward port the moment a DROP enters the router,
#: instead of when it exits the pipeline — the locked-circuit property
#: is violated while the old stream is still flushing.
FREE_PORT_EARLY = "free-port-early"

#: Never release backward ports when connections close (a path
#: reclamation bug: every circuit leaks its output forever).
LEAK_PORT_ON_DROP = "leak-port-on-drop"

#: Allocate among *all* enabled ports of the dilation group, ignoring
#: the IN-USE bits — two connections can share one backward port.
DOUBLE_ALLOCATE = "double-allocate"

#: Route to the next dilation group up, not the requested one (a
#: direction-decode bug: self-routing delivers to the wrong subtree).
WRONG_DIRECTION = "wrong-direction"

#: Propagate a backward-control-bit drop without freeing the local
#: backward port (BCB path reclamation leaks the traversed port).
SKIP_BCB_RELEASE = "skip-bcb-release"

ALL_MUTATIONS = frozenset(
    (
        SKIP_STATUS,
        CORRUPT_STATUS_CHECKSUM,
        FREE_PORT_EARLY,
        LEAK_PORT_ON_DROP,
        DOUBLE_ALLOCATE,
        WRONG_DIRECTION,
        SKIP_BCB_RELEASE,
    )
)

# -- Backend-layer mutations (vector engine) --------------------------------
#
# Seeded bugs in the vectorized engine's structure-of-arrays layer
# (:mod:`repro.sim.vector`).  Where ALL_MUTATIONS breaks the METRO
# *protocol* to prove the oracle is sensitive, these break the vector
# backend's *array bookkeeping* to prove the backend equivalence prover
# (:mod:`repro.verify.backend_diff`) and the oracle both notice when
# the accelerated engine drifts from the reference semantics.

#: Read head-of-pipeline word kinds one column early after the array
#: roll, so the whole-array decision layer (idle-port gating, receive
#: gating, arrival wakes) acts on stale wire state.
VEC_ROLL_OFF_BY_ONE = "vector-roll-off-by-one"

#: Encode staged STATUS words as empty in the kind matrix: the array
#: occupancy undercounts, channels carrying only STATUS traffic are
#: evicted from the hot set and the words stall in flight.
VEC_DROP_STATUS_KIND = "vector-drop-status-kind"

#: Never refresh a router's cached backward-port ownership mask after a
#: full tick, so the fast path's BCB gate watches the wrong ports and
#: misses fast-reclamation drops.
VEC_STALE_OWNERSHIP = "vector-stale-ownership"

#: Drop the arrival wake in the vectorized advance phase: parked
#: components are never re-scheduled when a word reaches their ports.
VEC_SKIP_WAKE = "vector-skip-wake"

BACKEND_MUTATIONS = frozenset(
    (
        VEC_ROLL_OFF_BY_ONE,
        VEC_DROP_STATUS_KIND,
        VEC_STALE_OWNERSHIP,
        VEC_SKIP_WAKE,
    )
)

# -- Workload-layer mutations (collective DAG release) ----------------------
#
# Seeded bugs in the :class:`repro.workloads.collective.CollectiveObserver`
# release bookkeeping.  Where ALL_MUTATIONS breaks the METRO protocol and
# BACKEND_MUTATIONS breaks the vector engine's arrays, these break the
# *application* layer — the dependency-DAG release rule a collective
# workload lives by — to prove the workload determinism harness notices
# when ops are released too early or never.

#: Forget the dependency edge to an op's first successor when its
#: delivery lands: the successor's undelivered-dependency count stays
#: pinned and the downstream subgraph deadlocks.
WL_DROP_DEP_EDGE = "workload-drop-dep-edge"

#: Release a successor on its *first* satisfied dependency instead of
#: its last: ops launch before the data they were meant to wait for.
WL_PREMATURE_RELEASE = "workload-premature-release"

WORKLOAD_MUTATIONS = frozenset((WL_DROP_DEP_EDGE, WL_PREMATURE_RELEASE))

#: Every mutation :func:`activate` accepts (protocol + backend +
#: workload layers).
KNOWN_MUTATIONS = ALL_MUTATIONS | BACKEND_MUTATIONS | WORKLOAD_MUTATIONS

#: The active mutation set.  Falsy (empty) in production; the guards in
#: router/allocator code check emptiness before doing a set lookup.
ACTIVE = frozenset()


def enabled(name):
    """True when mutation ``name`` is currently seeded."""
    return name in ACTIVE


def activate(*names):
    """Seed the named mutations (additive).  Tests only."""
    global ACTIVE
    unknown = set(names) - KNOWN_MUTATIONS
    if unknown:
        raise ValueError("unknown mutations: {}".format(sorted(unknown)))
    ACTIVE = ACTIVE | frozenset(names)


def deactivate_all():
    """Return to healthy-protocol operation."""
    global ACTIVE
    ACTIVE = frozenset()


@contextmanager
def seeded(*names):
    """Context manager seeding mutations for the enclosed block only."""
    global ACTIVE
    previous = ACTIVE
    activate(*names)
    try:
        yield
    finally:
        ACTIVE = previous
