"""Word (flit) encoding for METRO data streams.

A METRO connection carries one word per clock cycle.  Most words are
plain data, but the protocol reserves a handful of out-of-band tokens
(paper, Sections 4 and 5.1):

* ``DATA`` — a payload or routing-header word of ``w`` bits.
* ``IDLE`` — the designated DATA-IDLE token, outside the normal data
  encoding, used to hold a connection open when no data is available
  (variable turn delay, pipeline reversal bubbles, slow repliers).
* ``TURN`` — reverses the direction of the open connection.
* ``DROP`` — closes the connection; tears down each router it passes.
* ``STATUS`` — injected by each router into the return stream during a
  reversal, carrying the router's view of the connection (blocked?)
  and a running checksum of the data it forwarded.

In hardware these tokens are encoded with extra line-code symbols or
control bits alongside the ``w`` data bits; in the simulation each word
carries an explicit ``kind`` tag.  STATUS payloads are structured
objects rather than bit fields — a documented simulation convenience
(real implementations serialize status over several ``w``-bit words).
"""

DATA = "data"
IDLE = "idle"
TURN = "turn"
DROP = "drop"
STATUS = "status"

_KINDS = frozenset((DATA, IDLE, TURN, DROP, STATUS))


class Word:
    """One clock cycle's worth of traffic on a channel."""

    __slots__ = ("kind", "value")

    def __init__(self, kind, value=0):
        if kind not in _KINDS:
            raise ValueError("unknown word kind {!r}".format(kind))
        self.kind = kind
        self.value = value

    def is_control(self):
        """True for TURN/DROP/IDLE/STATUS — anything that is not data."""
        return self.kind != DATA

    def __eq__(self, other):
        return (
            isinstance(other, Word)
            and self.kind == other.kind
            and self.value == other.value
        )

    def __hash__(self):
        return hash((self.kind, self.value))

    def __repr__(self):
        if self.kind == DATA:
            return "<Word data {:#x}>".format(self.value)
        return "<Word {} {}>".format(self.kind, self.value)


def data(value):
    """A DATA word carrying ``value``."""
    return Word(DATA, value)


#: Shared singletons for the valueless control tokens.
IDLE_WORD = Word(IDLE)
TURN_WORD = Word(TURN)
DROP_WORD = Word(DROP)


class RouterStatus:
    """Payload of a STATUS word injected by one router at a reversal.

    :param blocked: True when the connection was blocked at this router
        (no free backward port in the requested direction), so no data
        ever flowed past it.
    :param checksum: the router's running checksum over the data words
        it forwarded in the direction that just ended.
    :param words_forwarded: how many data words the router forwarded;
        with the checksum this lets the source localize truncation as
        well as corruption.
    :param router_name: simulation-level identifier for diagnostics
        (hardware conveys the same information positionally: status
        words arrive in stage order).
    """

    __slots__ = ("blocked", "checksum", "words_forwarded", "router_name")

    def __init__(self, blocked, checksum, words_forwarded, router_name=""):
        self.blocked = blocked
        self.checksum = checksum
        self.words_forwarded = words_forwarded
        self.router_name = router_name

    def __repr__(self):
        return "<RouterStatus {} blocked={} cksum={:#x} n={}>".format(
            self.router_name, self.blocked, self.checksum, self.words_forwarded
        )


def status(blocked, checksum, words_forwarded, router_name=""):
    """A STATUS word wrapping a :class:`RouterStatus` payload."""
    return Word(STATUS, RouterStatus(blocked, checksum, words_forwarded, router_name))


def _crc8_table(poly):
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 0x80:
                crc = ((crc << 1) ^ poly) & 0xFF
            else:
                crc = (crc << 1) & 0xFF
        table.append(crc)
    return tuple(table)


class Checksum:
    """Running CRC-8 (polynomial 0x31, as in Dallas/Maxim one-wire).

    Every router keeps one of these per live connection and reports its
    value in the STATUS word at each reversal; endpoints keep one per
    message and append its value as the final payload word(s).  The
    particular polynomial is an implementation choice — the paper
    requires only that end-to-end and per-router checksums exist.
    Table-driven: routers update this every data cycle.
    """

    __slots__ = ("value",)

    POLY = 0x31
    _TABLE = _crc8_table(0x31)

    def __init__(self):
        self.value = 0

    def update(self, word_value):
        """Fold one word value into the checksum, byte by byte."""
        table = self._TABLE
        crc = self.value
        value = word_value
        while True:
            crc = table[crc ^ (value & 0xFF)]
            value >>= 8
            if value == 0:
                break
        self.value = crc

    def reset(self):
        self.value = 0


def checksum_of(values):
    """Checksum of an iterable of word values (convenience for tests)."""
    crc = Checksum()
    for value in values:
        crc.update(value)
    return crc.value
