"""METRO: a router architecture for high-performance short-haul routing
networks — a full reproduction of the ISCA 1994 paper.

Quick start::

    from repro import build_network, figure1_plan, Message

    network = build_network(figure1_plan(), seed=1)
    message = network.send(6, Message(dest=15, payload=[1, 2, 3]))
    network.run_until_quiet()
    assert message.outcome == "delivered"

Packages:

* :mod:`repro.core` — the METRO router itself.
* :mod:`repro.network` — multibutterfly/fat-tree construction.
* :mod:`repro.endpoint` — source-responsible network interfaces.
* :mod:`repro.faults` — fault injection and diagnosis.
* :mod:`repro.scan` — IEEE 1149.1 TAP / MultiTAP configuration.
* :mod:`repro.latency_model` — the Table 3/4/5 analytical models.
* :mod:`repro.harness` — experiment runners for every paper figure.
"""

from repro.core import METROJR, MetroRouter, RouterConfig, RouterParameters
from repro.endpoint import Endpoint, Message, MessageLog
from repro.network import (
    HeaderCodec,
    MetroNetwork,
    NetworkPlan,
    StageSpec,
    build_network,
    figure1_plan,
    figure3_plan,
)

__version__ = "1.0.0"

__all__ = [
    "Endpoint",
    "HeaderCodec",
    "METROJR",
    "Message",
    "MessageLog",
    "MetroNetwork",
    "MetroRouter",
    "NetworkPlan",
    "RouterConfig",
    "RouterParameters",
    "StageSpec",
    "build_network",
    "figure1_plan",
    "figure3_plan",
    "__version__",
]
