"""ML collectives as message-dependency DAGs.

A collective is not a traffic *rate* — it is a partial order of
messages.  Rank ``i`` may start its step-``s`` transfer only once the
step-``s-1`` transfers it depends on have been **delivered** (the
source saw the acknowledgment), never after some wall-clock delay.
:class:`CollectiveSchedule` captures that partial order;
:class:`CollectiveWorkload` executes it on a live network as a
:class:`~repro.endpoint.traffic.TrafficSource`-compatible driver plus
one lightweight engine observer
(:class:`CollectiveObserver`) that watches the shared message log for
deliveries and releases DAG successors.

Because the release mechanism runs entirely off the observer tick and
the sources expose ``next_arrival_cycle`` hints, the same workload
object runs unchanged — and byte-identically — on the dense reference
engine, the event-driven backend (idle compression included), and the
vectorized backend, and the whole live DAG pickles with the engine for
snapshot/restore.

Schedule generators cover the collectives an ML fabric evaluation
needs: ring and recursive-doubling all-reduce, all-to-all, and
pipeline-parallel microbatch schedules; :class:`ModelShape` turns a
list of layer sizes into the per-step message sizes of a model-shaped
training step.
"""

import hashlib

from repro.core import mutation
from repro.core.random_source import derive_seed
from repro.endpoint.messages import ABANDONED, DELIVERED, Message
from repro.endpoint.traffic import random_payload

import random


class CollectiveOp:
    """One point-to-point transfer inside a collective.

    :param op_id: position in the schedule (assigned by the schedule).
    :param src: sending endpoint index.
    :param dest: receiving endpoint index.
    :param words: payload length in words.
    :param deps: op_ids whose *delivery* gates this op's release.
    :param step: reporting tag — the logical step (an int, or a
        ``(layer, step)`` tuple for model-shaped schedules).
    """

    __slots__ = ("op_id", "src", "dest", "words", "deps", "step")

    def __init__(self, op_id, src, dest, words, deps, step):
        self.op_id = op_id
        self.src = src
        self.dest = dest
        self.words = words
        self.deps = tuple(deps)
        self.step = step

    def __repr__(self):
        return "<CollectiveOp {} {}->{} step={} deps={}>".format(
            self.op_id, self.src, self.dest, self.step, self.deps
        )


class CollectiveSchedule:
    """A dependency DAG of transfers: the algebra of one collective.

    Construct via the generators (:meth:`ring_all_reduce`,
    :meth:`recursive_doubling_all_reduce`, :meth:`all_to_all`,
    :meth:`pipeline_parallel`) or compose by hand with :meth:`add_op`.
    Dependencies always point at *earlier* op_ids (a cycle is a
    deadlock, and :meth:`add_op` rejects forward references), so a
    schedule is a valid topological order by construction.
    """

    def __init__(self, n_endpoints, label="custom"):
        self.n_endpoints = n_endpoints
        self.label = label
        self.ops = []

    def add_op(self, src, dest, words, deps=(), step=0):
        """Append one transfer; returns its op_id."""
        op_id = len(self.ops)
        for dep in deps:
            if not 0 <= dep < op_id:
                raise ValueError(
                    "op {} dependency {} is not an earlier op".format(op_id, dep)
                )
        if src == dest:
            raise ValueError("op {} sends to itself".format(op_id))
        if not (0 <= src < self.n_endpoints and 0 <= dest < self.n_endpoints):
            raise ValueError("op {} endpoint out of range".format(op_id))
        self.ops.append(CollectiveOp(op_id, src, dest, words, deps, step))
        return op_id

    def __len__(self):
        return len(self.ops)

    def steps(self):
        """The distinct step tags, in first-appearance order."""
        seen = []
        for op in self.ops:
            if op.step not in seen:
                seen.append(op.step)
        return seen

    # -- generators ------------------------------------------------------

    @classmethod
    def ring_all_reduce(cls, n_endpoints, words_per_rank=20, ranks=None,
                        step_offset=0, base=None):
        """Ring all-reduce: ``2(n-1)`` steps of neighbor transfers.

        The classic bandwidth-optimal algorithm: ``n-1`` reduce-scatter
        steps then ``n-1`` all-gather steps, each rank forwarding one
        chunk (``ceil(words/n)``) to its ring successor.  Rank ``i``'s
        step-``s`` send depends on the step-``s-1`` message it received
        from rank ``i-1`` — the chunk it is about to combine/forward.
        """
        ranks = list(range(n_endpoints)) if ranks is None else list(ranks)
        n = len(ranks)
        if n < 2:
            raise ValueError("a ring needs at least 2 ranks")
        schedule = base if base is not None else cls(n_endpoints, "ring-all-reduce")
        chunk = max(1, -(-words_per_rank // n))
        previous = {}  # rank position -> op_id of its last send
        for s in range(2 * (n - 1)):
            current = {}
            for i in range(n):
                deps = []
                if s > 0:
                    deps.append(previous[(i - 1) % n])
                current[i] = schedule.add_op(
                    ranks[i], ranks[(i + 1) % n], chunk,
                    deps=deps, step=step_offset + s,
                )
            previous = current
        return schedule

    @classmethod
    def recursive_doubling_all_reduce(cls, n_endpoints, words_per_rank=20,
                                      ranks=None, step_offset=0, base=None):
        """Recursive-doubling all-reduce: ``log2(n)`` exchange steps.

        At step ``s`` rank ``i`` exchanges its full accumulated vector
        with partner ``i XOR 2**s``; it may start once its own previous
        send was acknowledged (buffer reusable) *and* the previous
        step's message from its old partner arrived (data to combine).
        Latency-optimal for small vectors; requires a power-of-two rank
        count.
        """
        ranks = list(range(n_endpoints)) if ranks is None else list(ranks)
        n = len(ranks)
        if n < 2 or n & (n - 1):
            raise ValueError("recursive doubling needs a power-of-two rank count")
        schedule = (
            base if base is not None else cls(n_endpoints, "rd-all-reduce")
        )
        previous = {}
        s = 0
        stride = 1
        while stride < n:
            current = {}
            for i in range(n):
                partner = i ^ stride
                deps = []
                if s > 0:
                    deps.append(previous[i])
                    deps.append(previous[i ^ (stride >> 1)])
                current[i] = schedule.add_op(
                    ranks[i], ranks[partner], words_per_rank,
                    deps=deps, step=step_offset + s,
                )
            previous = current
            stride <<= 1
            s += 1
        return schedule

    @classmethod
    def all_to_all(cls, n_endpoints, words_per_pair=8, ranks=None,
                   step_offset=0, base=None):
        """All-to-all: ``n-1`` shifted-permutation rounds.

        Round ``s`` sends rank ``i``'s block to rank ``(i+s+1) mod n``;
        each rank serializes its own rounds (one outstanding block per
        rank), so round ``s`` depends on the rank's round-``s-1`` send.
        """
        ranks = list(range(n_endpoints)) if ranks is None else list(ranks)
        n = len(ranks)
        if n < 2:
            raise ValueError("all-to-all needs at least 2 ranks")
        schedule = base if base is not None else cls(n_endpoints, "all-to-all")
        previous = {}
        for s in range(n - 1):
            current = {}
            for i in range(n):
                deps = [previous[i]] if s > 0 else []
                current[i] = schedule.add_op(
                    ranks[i], ranks[(i + s + 1) % n], words_per_pair,
                    deps=deps, step=step_offset + s,
                )
            previous = current
        return schedule

    @classmethod
    def pipeline_parallel(cls, n_endpoints, n_microbatches=4,
                          activation_words=20, ranks=None, step_offset=0,
                          base=None):
        """Pipeline parallelism: microbatches flow forward, then back.

        Ranks are pipeline stages.  Microbatch ``m``'s forward transfer
        out of stage ``k`` depends on its arrival from stage ``k-1``
        and on the stage's previous microbatch (a stage processes one
        microbatch at a time); the backward gradient pass retraces the
        pipe in reverse after the last forward hop.  The step tag is
        the hop index along the schedule, so the per-step report shows
        the fill/steady/drain phases of the pipe.
        """
        ranks = list(range(n_endpoints)) if ranks is None else list(ranks)
        n = len(ranks)
        if n < 2:
            raise ValueError("a pipeline needs at least 2 stages")
        schedule = base if base is not None else cls(n_endpoints, "pipeline")
        fwd = {}
        bwd = {}
        for m in range(n_microbatches):
            for k in range(n - 1):
                deps = []
                if k > 0:
                    deps.append(fwd[(m, k - 1)])
                if m > 0:
                    deps.append(fwd[(m - 1, k)])
                fwd[(m, k)] = schedule.add_op(
                    ranks[k], ranks[k + 1], activation_words,
                    deps=deps, step=step_offset + m + k,
                )
            for j in range(n - 1):
                k = n - 1 - j  # gradient leaves stage k toward k-1
                deps = [fwd[(m, n - 2)]] if j == 0 else [bwd[(m, k + 1)]]
                if m > 0:
                    deps.append(bwd[(m - 1, k)])
                bwd[(m, k)] = schedule.add_op(
                    ranks[k], ranks[k - 1], activation_words,
                    deps=deps, step=step_offset + m + (n - 1) + j,
                )
        return schedule


class ModelShape:
    """Layer sizes -> message sizes -> a per-step training schedule.

    The MockSim idea: drive the fabric from the *shape* of a model, not
    a rate.  ``layer_words`` lists each layer's gradient size in words;
    :meth:`schedule` emits one all-reduce per layer (sized by that
    layer's chunk) in reverse-layer order — the order backprop produces
    gradients — with each layer's collective gated on the previous
    one's completion, exactly how a serialized gradient bucketing
    runtime behaves.
    """

    def __init__(self, layer_words, algorithm="ring"):
        if not layer_words:
            raise ValueError("a model needs at least one layer")
        self.layer_words = list(layer_words)
        self.algorithm = algorithm

    def schedule(self, n_endpoints, ranks=None):
        generator = {
            "ring": CollectiveSchedule.ring_all_reduce,
            "recursive-doubling":
                CollectiveSchedule.recursive_doubling_all_reduce,
        }[self.algorithm]
        schedule = CollectiveSchedule(
            n_endpoints, "model-{}".format(self.algorithm)
        )
        barrier = []  # final ops of the previous layer's collective
        for layer, words in enumerate(reversed(self.layer_words)):
            first_op = len(schedule.ops)
            generator(
                n_endpoints,
                words_per_rank=words,
                ranks=ranks,
                step_offset=0,
                base=schedule,
            )
            # Serialize layers: every rank's first op of this layer
            # additionally waits for the previous layer's last step.
            if barrier:
                step0 = schedule.ops[first_op].step
                for op in schedule.ops[first_op:]:
                    if op.step == step0:
                        op.deps = tuple(op.deps) + tuple(barrier)
            last_step = schedule.ops[-1].step
            barrier = [
                op.op_id
                for op in schedule.ops[first_op:]
                if op.step == last_step
            ]
            for op in schedule.ops[first_op:]:
                op.step = (layer, op.step)
        return schedule


class _CollectiveState:
    """The live DAG bookkeeping, shared by sources and observer.

    One instance per workload, referenced by every per-endpoint source
    and by the observer — pickling the network (engine snapshots)
    preserves that shared identity, so a restored run resumes with the
    exact release frontier it was captured with.
    """

    def __init__(self, schedule):
        self.schedule = schedule
        self.remaining = []  # op_id -> undelivered dependency count
        self.succs = []      # op_id -> op_ids it gates
        self.ready = {}      # endpoint -> FIFO of released, unsent op_ids
        self.released_cycle = [None] * len(schedule.ops)
        self.done_cycle = [None] * len(schedule.ops)
        self.completed = 0
        self.failed = 0
        for op in schedule.ops:
            self.remaining.append(len(op.deps))
            self.succs.append([])
        for op in schedule.ops:
            for dep in op.deps:
                self.succs[dep].append(op.op_id)
        for op in schedule.ops:
            if not op.deps:
                self._release(op.op_id, 0)

    def _release(self, op_id, cycle):
        op = self.schedule.ops[op_id]
        self.ready.setdefault(op.src, []).append(op_id)
        self.released_cycle[op_id] = cycle

    @property
    def finished(self):
        return self.completed + self.failed >= len(self.schedule.ops)

    def stuck(self):
        """No released work left but the DAG is not finished.

        With the network quiet this means an op's delivery will never
        come (an abandoned message, or a release-bookkeeping bug) and
        the remaining subgraph is deadlocked.
        """
        return not self.finished and not any(self.ready.values())


class _CollectiveSource:
    """One endpoint's DAG frontier drain (picklable callable).

    Consumes no randomness per cycle — payloads are derived per-op —
    so polls are free and the ``next_arrival_cycle`` hint keeps the
    event-driven backends' idle compression alive: 0 (the distant
    past, blocking compression as long as released work is waiting)
    while the frontier is non-empty, +inf otherwise (the observer's
    next release can only follow network activity, which blocks
    compression by itself).
    """

    __slots__ = ("_workload", "_state", "_index")

    def __init__(self, workload, state, index):
        self._workload = workload
        self._state = state
        self._index = index

    def __call__(self, cycle):
        queue = self._state.ready.get(self._index)
        if not queue:
            return None
        op_id = queue.pop(0)
        return self._workload._message_for(op_id)

    def next_arrival_cycle(self):
        return 0 if self._state.ready.get(self._index) else float("inf")


class _CollectiveMessage(Message):
    """A schedule-op transfer: a Message that knows its op_id."""

    __slots__ = ("op_id",)

    def __init__(self, dest, payload, op_id):
        super().__init__(dest, payload)
        self.op_id = op_id


class CollectiveObserver:
    """Engine observer releasing DAG successors on delivery.

    Watches the shared :class:`~repro.endpoint.messages.MessageLog`
    through a cursor; each newly recorded *delivered* collective
    message marks its op done and decrements every successor's
    undelivered-dependency count, releasing those that reach zero onto
    their source endpoint's ready queue.  Abandoned collective
    messages mark the op failed (its successors stay gated — the
    workload reports the deadlock rather than silently skipping ops).

    The observer acts only when the log grows, and the log grows only
    through component activity — which blocks idle compression on its
    own — so :meth:`next_event_cycle` can always answer "no scheduled
    event" and ride compression jumps instead of vetoing them.

    Two seeded mutation hooks (tests only) break the release rule on
    purpose: ``workload-drop-dep-edge`` forgets the edge to an op's
    first successor, ``workload-premature-release`` releases
    successors on their first satisfied dependency instead of their
    last.  Both must be caught by the workload determinism harness
    (``tests/workloads/test_mutations.py``).
    """

    def __init__(self, state, log):
        self.state = state
        self.log = log
        self._cursor = 0

    def tick(self, cycle):
        messages = self.log.messages
        state = self.state
        while self._cursor < len(messages):
            message = messages[self._cursor]
            self._cursor += 1
            op_id = getattr(message, "op_id", None)
            if op_id is None or state.done_cycle[op_id] is not None:
                continue
            if message.outcome == DELIVERED:
                state.done_cycle[op_id] = message.done_cycle
                state.completed += 1
                self._release_successors(op_id, cycle)
            elif message.outcome == ABANDONED:
                state.done_cycle[op_id] = message.done_cycle
                state.failed += 1

    def _release_successors(self, op_id, cycle):
        state = self.state
        succs = state.succs[op_id]
        if (
            mutation.ACTIVE
            and mutation.enabled(mutation.WL_DROP_DEP_EDGE)
            and succs
        ):
            # Seeded bug: the delivery never reaches the first
            # successor — its dependency count stays pinned and the
            # downstream subgraph deadlocks.
            succs = succs[1:]
        for succ in succs:
            state.remaining[succ] -= 1
            released = state.remaining[succ] == 0
            if (
                mutation.ACTIVE
                and mutation.enabled(mutation.WL_PREMATURE_RELEASE)
                and not released
            ):
                # Seeded bug: first delivery releases the op, ahead of
                # the dependencies it was meant to wait for.
                released = state.released_cycle[succ] is None
            if released and state.released_cycle[succ] is None:
                state._release(succ, cycle)

    def next_event_cycle(self):
        """Compression hint: the observer schedules no events itself."""
        return float("inf")


class CollectiveWorkload:
    """Drives a :class:`CollectiveSchedule` on a live network.

    ``attach(network)`` installs a per-endpoint frontier source on
    every rank (TrafficSource-compatible: endpoints poll it exactly
    like any other generator) and registers the
    :class:`CollectiveObserver` with the engine.  The whole object —
    schedule, live DAG state, sources, observer — pickles with the
    network for snapshot/restore.

    :param schedule: the dependency DAG to execute.
    :param w: datapath word width (payload values are ``w``-bit).
    :param seed: payload randomness root (payloads are derived per-op
        from ``derive_seed(seed, "op", op_id)``, independent of
        execution order).
    """

    def __init__(self, schedule, w=8, seed=0):
        self.schedule = schedule
        self.w = w
        self.seed = seed
        self.state = _CollectiveState(schedule)
        self.generated = 0
        self.message_words = max((op.words for op in schedule.ops), default=0)

    def source_for(self, endpoint_index):
        return _CollectiveSource(self, self.state, endpoint_index)

    def attach(self, network):
        """Install sources on every rank and register the observer."""
        ranks = {op.src for op in self.schedule.ops}
        for endpoint in network.endpoints:
            if endpoint.index in ranks:
                endpoint.traffic_source = self.source_for(endpoint.index)
        network.engine.add_observer(CollectiveObserver(self.state, network.log))
        return self

    def _message_for(self, op_id):
        op = self.schedule.ops[op_id]
        rng = random.Random(derive_seed(self.seed, "op", op_id))
        self.generated += 1
        return _CollectiveMessage(
            dest=op.dest,
            payload=random_payload(rng, op.words, self.w),
            op_id=op_id,
        )

    @property
    def finished(self):
        return self.state.finished

    def result(self, network, label=None):
        return CollectiveResult(self, network, label=label)


class CollectiveResult:
    """Per-step completion times and straggler breakdown (plain data).

    Picklable and journal-hashable like every other trial result
    (:func:`~repro.harness.parallel.result_content_hash` applies), so
    collective points flow through the parallel
    :class:`~repro.harness.parallel.TrialRunner`, its cache and its
    crash journal unchanged.
    """

    quarantined = False
    metrics = None

    def __init__(self, workload, network, label=None):
        schedule = workload.schedule
        state = workload.state
        self.label = label or schedule.label
        self.algorithm = schedule.label
        self.n_endpoints = schedule.n_endpoints
        self.n_ops = len(schedule.ops)
        self.completed_ops = state.completed
        self.failed_ops = state.failed
        self.incomplete = not state.finished
        done = [c for c in state.done_cycle if c is not None]
        self.total_cycles = max(done) if done else None
        self.steps = self._step_rows(schedule, state)
        self.per_rank_done = self._per_rank(schedule, state)
        deliveries = [
            m for m in network.log.messages
            if getattr(m, "op_id", None) is not None
        ]
        attempts = [m.attempts for m in deliveries if m.outcome == DELIVERED]
        self.mean_attempts = (
            sum(attempts) / len(attempts) if attempts else float("nan")
        )
        self.log_digest = collective_log_digest(network.log)

    @staticmethod
    def _step_rows(schedule, state):
        rows = []
        for step in schedule.steps():
            ops = [op.op_id for op in schedule.ops if op.step == step]
            done = [state.done_cycle[o] for o in ops]
            released = [state.released_cycle[o] for o in ops]
            complete = all(c is not None for c in done)
            start = (
                min(r for r in released if r is not None)
                if any(r is not None for r in released)
                else None
            )
            rows.append({
                "step": step,
                "ops": len(ops),
                "released": start,
                "done": max(done) if complete else None,
                # Straggler skew: the slowest rank's finish minus the
                # fastest's, within the step.
                "skew": (max(done) - min(done)) if complete else None,
            })
        return rows

    @staticmethod
    def _per_rank(schedule, state):
        per_rank = {}
        for op in schedule.ops:
            done = state.done_cycle[op.op_id]
            if done is not None:
                prev = per_rank.get(op.src)
                per_rank[op.src] = done if prev is None else max(prev, done)
        return per_rank

    def step_times(self):
        """Completion cycle of each step, in schedule order."""
        return [row["done"] for row in self.steps]

    def max_step_skew(self):
        skews = [row["skew"] for row in self.steps if row["skew"] is not None]
        return max(skews) if skews else None

    def straggler_rank(self):
        """The rank whose last op finished latest, or None."""
        if not self.per_rank_done:
            return None
        return max(self.per_rank_done, key=lambda r: (self.per_rank_done[r], r))

    def content_hash(self):
        from repro.harness.parallel import result_content_hash

        return result_content_hash(self)

    def as_dict(self):
        return {
            "label": self.label,
            "algorithm": self.algorithm,
            "ops": self.n_ops,
            "completed": self.completed_ops,
            "failed": self.failed_ops,
            "incomplete": self.incomplete,
            "total_cycles": self.total_cycles,
            "max_step_skew": self.max_step_skew(),
            "straggler_rank": self.straggler_rank(),
            "mean_attempts": self.mean_attempts,
            "log_digest": self.log_digest,
        }

    def __repr__(self):
        return "<CollectiveResult {} {}/{} ops in {} cycles>".format(
            self.label, self.completed_ops, self.n_ops, self.total_cycles
        )


def collective_log_digest(log):
    """A stable hash of every observable fact about the run's messages.

    Built on :func:`repro.verify.backend_diff.message_fingerprint`, so
    "two runs produced this digest" means byte-identical trajectories
    — the check the cross-backend and serial-vs-parallel acceptance
    tests pin.
    """
    from repro.verify.backend_diff import message_fingerprint

    material = repr(sorted(message_fingerprint(log)["messages"]))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def run_collective(network, workload, max_cycles=200000, chunk=256,
                   settle=8, label=None):
    """Execute ``workload`` on ``network`` to completion (or deadlock).

    Attaches the workload and hands off to :func:`finish_collective`.
    Returns a :class:`CollectiveResult`.
    """
    workload.attach(network)
    return finish_collective(
        network, workload, max_cycles=max_cycles, chunk=chunk,
        settle=settle, label=label,
    )


def finish_collective(network, workload, max_cycles=200000, chunk=256,
                      settle=8, label=None):
    """Drive an already-attached workload to completion (or deadlock).

    The resume half of :func:`run_collective`: a network restored from
    a mid-workload engine snapshot comes back with its sources and
    observer already wired (shared identity through the pickle), so
    only the drive loop remains.  Runs the engine in ``chunk``-cycle
    slices (compression-friendly: plain ``run`` slices, never an
    opaque ``run_until`` predicate) until the DAG finishes, the cycle
    budget runs out, or the DAG is provably stuck (network quiet,
    nothing released, ops remaining — the abandoned-message /
    seeded-bug case).
    """
    spent = 0
    while not workload.finished and spent < max_cycles:
        step = min(chunk, max_cycles - spent)
        network.run(step)
        spent += step
        if (
            workload.state.stuck()
            and network.run_until_quiet(max_cycles=0)
        ):
            break
    if workload.finished:
        # Let the receive-side FSMs of the final transfers close.
        network.run_until_quiet(max_cycles=max_cycles, settle=settle)
    return workload.result(network, label=label)
