"""Application workloads over the METRO fabric.

Everything the simulator routed before this package was synthetic —
Bernoulli coin flips, permutations, traces.  Real systems put two very
different kinds of traffic on a multipath network, and both live here:

:mod:`repro.workloads.collective`
    ML collectives as dependency DAGs: ring / recursive-doubling
    all-reduce, all-to-all and pipeline-parallel schedules where each
    operation waits on the *delivery* of its predecessors' messages
    (not on wall-clock cycles), driven by a model-shaped step schedule
    (layer sizes -> message sizes -> per-step traffic).

:mod:`repro.workloads.service`
    Closed-loop datacenter services: open-loop Poisson or bursty
    request arrivals multiplexed over many simulated clients per
    endpoint, request/response service times at the servers, and
    p50/p95/p99/p999 SLO accounting over per-request latencies.

Both plug into the existing machinery unchanged: workloads are
:class:`~repro.endpoint.traffic.TrafficSource`-compatible drivers plus
(for collectives) a lightweight engine observer that watches
message-log deliveries to release DAG successors.  They run on all
three engine backends, pickle for the parallel
:class:`~repro.harness.parallel.TrialRunner` and for engine
snapshot/restore, and sweep through
:mod:`repro.harness.workload_sweep`.  See ``docs/workloads.md``.
"""

from repro.workloads.collective import (
    CollectiveOp,
    CollectiveResult,
    CollectiveSchedule,
    CollectiveWorkload,
    ModelShape,
    finish_collective,
    run_collective,
)
from repro.workloads.service import (
    RequestResponseWorkload,
    ServiceResult,
    run_service,
    service_slo_failures,
)

__all__ = [
    "CollectiveOp",
    "CollectiveResult",
    "CollectiveSchedule",
    "CollectiveWorkload",
    "ModelShape",
    "RequestResponseWorkload",
    "ServiceResult",
    "finish_collective",
    "run_collective",
    "run_service",
    "service_slo_failures",
]
