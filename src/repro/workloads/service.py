"""Closed-loop datacenter services with open-loop arrivals.

A latency-SLO service is the other traffic shape a multipath fabric
must carry: many clients issuing requests to a few server endpoints,
each request a round trip (the reply rides METRO's acknowledgment
stream, with a simulated service time at the server), judged not by
the mean but by the tail — p50/p95/p99/p999 against an SLO.

Arrivals are **open loop**: each simulated client draws its next
request time from a Poisson (or bursty) process *independent of the
network's state*, so a slow fabric grows a backlog instead of
politely throttling the load — queueing delay counts against the SLO.
Each physical endpoint multiplexes several such clients (one network
interface, many callers behind it), and a request's latency clock
starts at its *arrival*, not at the cycle the interface got around to
transmitting it: sources pre-stamp ``queued_cycle`` with the true
arrival, which :meth:`~repro.endpoint.interface.Endpoint.submit`
preserves.

The workload is a standard
:class:`~repro.endpoint.traffic.TrafficSource`: picklable, resumable
mid-sequence from an engine snapshot, byte-identical across all three
backends, and compression-friendly (arrival times are precomputed per
client, so an idle gap's length is always known).
"""

import math
import random

from repro.endpoint import messages as M
from repro.endpoint.messages import Message
from repro.endpoint.traffic import TrafficSource, random_payload


class _ServiceMessage(Message):
    """One request: a Message that knows which client issued it."""

    __slots__ = ("request_id", "client_id")

    def __init__(self, dest, payload, request_id, client_id):
        super().__init__(dest, payload)
        self.request_id = request_id
        self.client_id = client_id


class _ServiceHandler:
    """A server endpoint's reply handler (picklable callable).

    Returns ``reply_words`` of payload plus a service delay drawn
    uniformly from ``delay_range`` — the variable-latency remote-read
    of the paper's Section 5.1, repurposed as request processing time.
    """

    __slots__ = ("_words", "_delay", "_w", "_rng")

    def __init__(self, words, delay_range, w, seed):
        self._words = words
        self._delay = delay_range
        self._w = w
        self._rng = random.Random(seed)

    def __call__(self, payload, checksum_ok):
        lo, hi = self._delay
        delay = self._rng.randint(lo, hi) if hi > lo else lo
        if not self._words:
            return [], delay
        return random_payload(self._rng, self._words, self._w), delay


class _ClientSource:
    """One endpoint's multiplexed client population (picklable).

    Keeps, per simulated client, the cycle of its next arrival; a poll
    at cycle ``c`` emits the earliest due request (ties broken by
    client id) and immediately draws that client's next arrival — so
    randomness is consumed *per request*, never per cycle, and
    :meth:`next_arrival_cycle` can always name the next event for the
    event-driven backends' idle compression.  Requests the interface
    cannot transmit yet simply stay due (the open-loop backlog); their
    pre-stamped ``queued_cycle`` keeps the latency clock honest.
    """

    __slots__ = ("_traffic", "_rng", "_index", "_due", "_burst", "_stop_at")

    def __init__(self, traffic, rng, index):
        self._traffic = traffic
        self._rng = rng
        self._index = index
        # Client k's first arrival: an initial gap draw, so clients
        # don't all fire at cycle 0 in lockstep.
        self._due = [self._gap() for _ in range(traffic.clients)]
        self._burst = []  # extra (due_cycle, client) arrivals from bursts
        self._stop_at = None

    def _gap(self):
        traffic = self._traffic
        if traffic.rate <= 0:
            return float("inf")
        u = self._rng.random()
        # Inverse-CDF exponential inter-arrival, floored at 1 cycle.
        return max(1, int(-math.log(1.0 - u) / traffic.rate))

    def __call__(self, cycle):
        if self._burst and self._burst[0][0] <= cycle:
            due, client = self._burst.pop(0)
            return self._emit(due, client)
        best = None
        for client, due in enumerate(self._due):
            if due <= cycle and (best is None or due < self._due[best]):
                best = client
        if best is None:
            return None
        due = self._due[best]
        traffic = self._traffic
        nxt = due + self._gap()
        if self._stop_at is not None and nxt >= self._stop_at:
            # The arrival process ended before this client's next draw.
            nxt = float("inf")
        self._due[best] = nxt
        if traffic.burst_size > 1 and self._rng.random() < traffic.burst_prob:
            # A bursty client issues a back-to-back batch: the extras
            # share the trigger's arrival cycle (they were all waiting
            # on the same upstream event).
            self._burst.extend(
                (due, best) for _ in range(traffic.burst_size - 1)
            )
        return self._emit(due, best)

    def _emit(self, due, client):
        traffic = self._traffic
        message = traffic._request(self._rng, self._index, client)
        # Open-loop semantics: the latency clock starts at the arrival,
        # not at the submit; Endpoint.submit preserves a preset stamp.
        message.queued_cycle = due
        return message

    def stop(self, at_cycle):
        """End the arrival processes: drop everything due ``at_cycle``+.

        Arrivals that already happened (due earlier) stay pending and
        are still emitted on later polls — including the ones a stalled
        interface has not materialized yet, whose dues keep advancing
        through the pre-``at_cycle`` past as they drain.  The drain
        phase must not censor the open-loop backlog's tail.
        """
        self._stop_at = at_cycle
        self._burst = [entry for entry in self._burst if entry[0] < at_cycle]
        for client, due in enumerate(self._due):
            if due >= at_cycle:
                self._due[client] = float("inf")

    def next_arrival_cycle(self):
        """The earliest due arrival (possibly in the past), never None."""
        nearest = min(self._due) if self._due else float("inf")
        if self._burst:
            nearest = min(nearest, self._burst[0][0])
        return nearest


class RequestResponseWorkload(TrafficSource):
    """Open-loop request/response traffic against server endpoints.

    :param n_endpoints: network size.
    :param w: datapath width (payload values are ``w``-bit).
    :param servers: endpoint indices acting as servers; every other
        endpoint is a client host.
    :param clients: simulated clients multiplexed per client endpoint.
    :param rate: per-client mean arrivals per cycle (Poisson); the
        offered load per client endpoint is ``clients * rate``
        requests/cycle.
    :param burst_prob: probability an arrival triggers a burst.
    :param burst_size: total requests per burst (1 = pure Poisson).
    :param request_words: request payload length.
    :param reply_words: server reply payload length.
    :param service_time: inclusive ``(lo, hi)`` cycles of simulated
        server processing per request.
    :param seed: randomness root (per-endpoint streams derive from it).
    """

    def __init__(self, n_endpoints, w, servers=(0,), clients=4, rate=0.002,
                 burst_prob=0.0, burst_size=1, request_words=8,
                 reply_words=4, service_time=(0, 0), seed=0):
        super().__init__(n_endpoints, w, message_words=request_words, seed=seed)
        self.servers = tuple(sorted(servers))
        if not self.servers:
            raise ValueError("a service needs at least one server endpoint")
        self.clients = clients
        self.rate = rate
        self.burst_prob = burst_prob
        self.burst_size = burst_size
        self.request_words = request_words
        self.reply_words = reply_words
        self.service_time = tuple(service_time)

    def source_for(self, endpoint_index):
        return _ClientSource(self, self._rng(endpoint_index), endpoint_index)

    def attach(self, network):
        """Clients get sources, servers get reply handlers."""
        server_set = set(self.servers)
        for endpoint in network.endpoints:
            if endpoint.index in server_set:
                endpoint.traffic_source = None
                endpoint.reply_handler = _ServiceHandler(
                    self.reply_words,
                    self.service_time,
                    self.w,
                    (self.seed << 8) ^ (endpoint.index * 2617 + 5),
                )
            else:
                endpoint.traffic_source = self.source_for(endpoint.index)
        return self

    def _request(self, rng, endpoint_index, client):
        dest = self.servers[rng.randrange(len(self.servers))]
        request_id = self.generated
        self.generated += 1
        return _ServiceMessage(
            dest=dest,
            payload=random_payload(rng, self.request_words, self.w),
            request_id=request_id,
            client_id=(endpoint_index, client),
        )


class ServiceResult:
    """Tail-latency statistics over one measured window (plain data)."""

    quarantined = False
    metrics = None

    def __init__(self, label, requests, abandoned, measure_cycles,
                 n_client_endpoints, clients, offered_rate, backlog,
                 log_digest):
        self.label = label
        self.delivered_count = len(requests)
        self.abandoned_count = abandoned
        self.measure_cycles = measure_cycles
        self.n_client_endpoints = n_client_endpoints
        self.clients = clients
        self.offered_rate = offered_rate
        #: Requests that had arrived but not completed when the window
        #: closed — the open-loop queue the fabric failed to drain.
        self.backlog = backlog
        self.log_digest = log_digest
        latencies = sorted(
            m.total_latency for m in requests if m.total_latency is not None
        )
        self._latencies = latencies
        self.per_client_counts = {}
        for m in requests:
            key = m.client_id
            self.per_client_counts[key] = self.per_client_counts.get(key, 0) + 1

    def latency_percentile(self, q):
        """Exact nearest-rank percentile over per-request latencies."""
        values = self._latencies
        if not values:
            return float("nan")
        rank = max(0, min(len(values) - 1, int(len(values) * q / 100.0)))
        return float(values[rank])

    @property
    def mean_latency(self):
        values = self._latencies
        return sum(values) / len(values) if values else float("nan")

    @property
    def throughput(self):
        """Completed requests per kilocycle."""
        if not self.measure_cycles:
            return float("nan")
        return 1000.0 * self.delivered_count / self.measure_cycles

    def starved_clients(self):
        """Clients that completed no request inside the window."""
        expected = {
            (endpoint, client)
            for endpoint in self.client_endpoints()
            for client in range(self.clients)
        }
        return sorted(expected - set(self.per_client_counts))

    def client_endpoints(self):
        return sorted({key[0] for key in self.per_client_counts})

    def content_hash(self):
        from repro.harness.parallel import result_content_hash

        return result_content_hash(self)

    def as_dict(self):
        return {
            "label": self.label,
            "delivered": self.delivered_count,
            "abandoned": self.abandoned_count,
            "backlog": self.backlog,
            # Requests per kilocycle per client endpoint — same scale
            # as ``throughput``, readable in one table.
            "offered_per_kcycle": 1000.0 * self.offered_rate,
            "throughput": self.throughput,
            "mean_latency": self.mean_latency,
            "p50_latency": self.latency_percentile(50),
            "p95_latency": self.latency_percentile(95),
            "p99_latency": self.latency_percentile(99),
            "p999_latency": self.latency_percentile(99.9),
            "log_digest": self.log_digest,
        }

    def __repr__(self):
        return "<ServiceResult {} n={} p99={:.0f}>".format(
            self.label, self.delivered_count, self.latency_percentile(99)
        )


def service_slo_failures(result, slo):
    """SLO verdicts for one service point.

    ``slo`` maps percentile labels (``"p50"``, ``"p95"``, ``"p99"``,
    ``"p999"``) to latency bounds in cycles; ``"abandoned"``, when
    present, bounds the count of undeliverable requests.  Returns a
    list of human-readable violations — empty means the gate passes.
    The CLI exits with code 1 when any point violates its SLO (see
    ``docs/workloads.md``).
    """
    quantiles = {"p50": 50, "p95": 95, "p99": 99, "p999": 99.9}
    failures = []
    for name, bound in sorted(slo.items()):
        if name == "abandoned":
            continue
        if name not in quantiles:
            raise ValueError("unknown SLO key {!r}".format(name))
        observed = result.latency_percentile(quantiles[name])
        if not observed <= bound:  # NaN (no data) also fails the gate
            failures.append(
                "{}: {} latency {} exceeds SLO {}".format(
                    result.label, name, observed, bound
                )
            )
    abandoned_bound = slo.get("abandoned")
    if abandoned_bound is not None and result.abandoned_count > abandoned_bound:
        failures.append(
            "{}: {} abandoned requests exceed bound {}".format(
                result.label, result.abandoned_count, abandoned_bound
            )
        )
    return failures


def run_service(network, workload, warmup_cycles=1000, measure_cycles=6000,
                drain_cycles=None, label=None):
    """Warm up, measure, drain, and summarize one service soak.

    Requests are attributed to the measured window by *arrival* cycle
    (their open-loop ``queued_cycle``), and the drain phase lets
    stragglers finish so the tail is not censored — the same
    discipline as :func:`repro.harness.experiment.run_experiment`,
    minus the closed-loop assumptions.
    """
    workload.attach(network)
    network.run(warmup_cycles)
    start = network.engine.cycle
    network.run(measure_cycles)
    end = network.engine.cycle
    # Stop the arrival processes at the window edge.  Arrivals that
    # already happened stay pending inside the sources and are still
    # emitted during the drain — detaching the sources here would
    # silently censor exactly the worst-latency tail requests.
    for endpoint in network.endpoints:
        source = endpoint.traffic_source
        if source is not None:
            source.stop(end)
    budget = drain_cycles if drain_cycles is not None else measure_cycles * 4
    network.run_until_quiet(max_cycles=budget)

    in_window = [
        m
        for m in network.log.messages
        if getattr(m, "request_id", None) is not None
        and m.queued_cycle is not None
        and start <= m.queued_cycle < end
    ]
    delivered = [m for m in in_window if m.outcome == M.DELIVERED]
    abandoned = sum(1 for m in in_window if m.outcome == M.ABANDONED)
    # The open-loop queue the fabric had failed to drain when the
    # window closed: in-window arrivals still incomplete at ``end``.
    backlog = sum(
        1
        for m in in_window
        if m.done_cycle is None or m.done_cycle > end
    )

    from repro.workloads.collective import collective_log_digest

    n_client_endpoints = network.plan.n_endpoints - len(workload.servers)
    return ServiceResult(
        label=label or "rate={}".format(workload.rate),
        requests=delivered,
        abandoned=abandoned,
        measure_cycles=measure_cycles,
        n_client_endpoints=n_client_endpoints,
        clients=workload.clients,
        offered_rate=workload.rate * workload.clients,
        backlog=backlog,
        log_digest=collective_log_digest(network.log),
    )
