"""RunWatchdog: stall detection, heartbeats, and quiet-network manners."""

import io

from repro.endpoint.traffic import UniformRandomTraffic
from repro.faults.injector import FaultInjector
from repro.faults.model import DeadRouter
from repro.harness.load_sweep import figure1_network
from repro.telemetry import (
    HEARTBEAT_ENV,
    RunWatchdog,
    TelemetryStream,
    attach_watchdog,
    heartbeat_path_from_env,
    read_heartbeat,
    read_run_log,
    validate_run_log,
    write_heartbeat,
)


def _traffic(network, rate=0.05, seed=6):
    UniformRandomTraffic(
        n_endpoints=network.plan.n_endpoints,
        w=network.codec.w,
        rate=rate,
        message_words=8,
        seed=seed,
    ).attach(network)


def _wedge(network, cycle=500):
    """Schedule the death of every middle-stage router.

    With the whole middle stage gone no message can cross the network;
    endpoints with an effectively-unlimited retry budget keep work
    pending forever — the canonical livelock the watchdog must flag.
    """
    injector = FaultInjector(network)
    for stage, block, index in network.router_grid:
        if stage == 1:
            injector.at(cycle, DeadRouter(stage, block, index))
    for endpoint in network.endpoints:
        endpoint.max_attempts = 10**9
    return injector


class TestStallDetection:
    def test_wedged_network_is_flagged_within_the_window(self):
        network = figure1_network(seed=5)
        _traffic(network)
        _wedge(network, cycle=500)
        watchdog = RunWatchdog(stall_cycles=800)
        watchdog.bind(network)
        network.run(4000)
        assert watchdog.stalled
        assert len(watchdog.stalls) == 1
        stall = watchdog.stalls[0]
        # Declared within one stall window of the last real progress.
        assert 500 <= stall.cycle <= 500 + 2 * 800
        assert stall.pending > 0
        assert stall.stalled_cycles >= 800
        # check_quiescent diagnosed where the stuck state lives.
        assert stall.violations
        assert all(v.rule == "quiescence-leak" for v in stall.violations)

    def test_stall_event_lands_in_the_run_log(self):
        network = figure1_network(seed=5)
        _traffic(network)
        _wedge(network, cycle=500)
        sink = io.StringIO()
        stream = TelemetryStream(sink, flush_every=400, window_cycles=400)
        stream.bind(network)
        watchdog = RunWatchdog(stall_cycles=800, sink=stream)
        watchdog.bind(network)
        network.run(4000)
        stream.close()
        events = read_run_log(sink.getvalue().splitlines())
        assert validate_run_log(events) == len(events)
        stalls = [e for e in events if e["event"] == "watchdog.stall"]
        assert len(stalls) == 1
        assert stalls[0]["pending"] > 0
        assert stalls[0]["violations"]
        assert stalls[0]["violations"][0]["rule"] == "quiescence-leak"

    def test_idle_network_never_stalls(self):
        network = figure1_network(seed=5, backend="events")
        watchdog = RunWatchdog(stall_cycles=500)
        watchdog.bind(network)
        network.run(3000)
        assert not watchdog.stalled
        assert watchdog.stalls == []
        # The idle-timer reset keeps the hint ahead of the clock, so
        # the events backend still compresses the quiet stretches.
        assert network.engine.compressed_cycles > 0.8 * 3000

    def test_healthy_loaded_network_never_stalls(self):
        network = figure1_network(seed=5)
        _traffic(network)
        watchdog = attach_watchdog(network, stall_cycles=400)
        network.run(2000)
        assert not watchdog.stalled
        assert watchdog.delivered > 0

    def test_recovery_clears_the_stalled_flag(self):
        network = figure1_network(seed=5)
        _traffic(network)
        injector = _wedge(network, cycle=500)
        for stage, block, index in network.router_grid:
            if stage == 1:
                injector.revert_at(2500, DeadRouter(stage, block, index))
        watchdog = RunWatchdog(stall_cycles=800)
        watchdog.bind(network)
        network.run(5000)
        assert watchdog.stalls  # it did wedge...
        assert not watchdog.stalled  # ...and progress resumed


class TestHeartbeats:
    def test_heartbeat_file_round_trip(self, tmp_path):
        path = str(tmp_path / "hb.json")
        write_heartbeat(path, cycle=123, delivered=7, stalled=True)
        beat = read_heartbeat(path)
        assert beat["cycle"] == 123
        assert beat["delivered"] == 7
        assert beat["stalled"] is True
        assert read_heartbeat(str(tmp_path / "missing.json")) is None

    def test_watchdog_writes_periodic_heartbeats(self, tmp_path):
        path = str(tmp_path / "hb.json")
        network = figure1_network(seed=5)
        _traffic(network)
        watchdog = RunWatchdog(
            stall_cycles=5000, heartbeat_path=path, heartbeat_every=100
        )
        watchdog.bind(network)
        network.run(1000)
        beat = read_heartbeat(path)
        assert beat is not None
        assert beat["cycle"] >= 900
        assert beat["delivered"] > 0
        assert beat["stalled"] is False

    def test_heartbeat_path_defaults_from_env(self, tmp_path, monkeypatch):
        path = str(tmp_path / "hb.json")
        monkeypatch.setenv(HEARTBEAT_ENV, path)
        assert heartbeat_path_from_env() == path
        watchdog = RunWatchdog(stall_cycles=5000, heartbeat_every=200)
        assert watchdog.heartbeat_path == path
        monkeypatch.delenv(HEARTBEAT_ENV)
        assert heartbeat_path_from_env() is None

    def test_stall_is_reflected_in_the_heartbeat(self, tmp_path):
        path = str(tmp_path / "hb.json")
        network = figure1_network(seed=5)
        _traffic(network)
        _wedge(network, cycle=500)
        watchdog = RunWatchdog(
            stall_cycles=800, heartbeat_path=path, heartbeat_every=200
        )
        watchdog.bind(network)
        network.run(4000)
        assert watchdog.stalled
        beat = read_heartbeat(path)
        assert beat["stalled"] is True

    def test_heartbeat_survives_concurrent_readers(self, tmp_path):
        """Readers racing the writer never observe a torn heartbeat.

        The write is write-temp-then-rename, so a concurrent reader
        sees either the previous complete beat or the new one — never
        a partial JSON document.  Hammer the file from reader threads
        while the writer updates it and check every observation is a
        complete, known beat (None is allowed only before the first
        write lands).
        """
        import threading

        path = str(tmp_path / "hb.json")
        n_beats = 300
        bad = []
        seen = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                beat = read_heartbeat(path)
                if beat is None:
                    continue
                if not {"cycle", "delivered", "stalled", "pid"} <= set(beat):
                    bad.append(beat)
                elif not (0 <= beat["cycle"] < n_beats
                          and beat["delivered"] == beat["cycle"] * 2):
                    bad.append(beat)
                else:
                    seen.append(beat["cycle"])

        readers = [threading.Thread(target=reader) for _ in range(3)]
        for thread in readers:
            thread.start()
        for cycle in range(n_beats):
            write_heartbeat(path, cycle=cycle, delivered=cycle * 2)
        stop.set()
        for thread in readers:
            thread.join()
        assert bad == []
        assert seen  # the readers really did observe beats mid-write
        final = read_heartbeat(path)
        assert final["cycle"] == n_beats - 1
