"""Span recorder: nesting, ring buffer, Chrome export, validation."""

import json

import pytest

from repro.telemetry.spans import SpanRecorder, validate_trace_events


def test_begin_end_records_duration_and_args():
    recorder = SpanRecorder()
    recorder.begin(10, "ep0/p0", "attempt", args={"dest": 3})
    span = recorder.end(25, "ep0/p0", args={"outcome": "delivered"})
    assert span.duration == 15
    assert span.args == {"dest": 3, "outcome": "delivered"}
    assert recorder.spans(name="attempt") == [span]


def test_spans_nest_per_track():
    recorder = SpanRecorder()
    outer = recorder.begin(0, "t", "attempt")
    inner = recorder.begin(1, "t", "setup")
    assert outer.depth == 0 and inner.depth == 1
    assert recorder.end(4, "t") is inner
    assert recorder.end(9, "t") is outer
    # Independent tracks keep independent stacks.
    recorder.begin(0, "a", "x")
    recorder.begin(0, "b", "y")
    assert recorder.end(1, "a").name == "x"
    assert recorder.end(1, "b").name == "y"


def test_end_without_open_span_is_noop():
    recorder = SpanRecorder()
    assert recorder.end(5, "nowhere") is None
    assert recorder.spans() == []


def test_end_all_closes_innermost_first():
    recorder = SpanRecorder()
    recorder.begin(0, "t", "attempt")
    recorder.begin(1, "t", "reply")
    closed = recorder.end_all(7, "t", args={"outcome": "blocked"})
    assert [span.name for span in closed] == ["reply", "attempt"]
    assert all(span.args["outcome"] == "blocked" for span in closed)
    assert recorder.open_count() == 0


def test_ring_buffer_bounds_memory_and_counts_drops():
    recorder = SpanRecorder(max_spans=5)
    for cycle in range(12):
        recorder.instant(cycle, "t", "e{}".format(cycle))
    assert len(recorder.completed) == 5
    assert recorder.dropped == 7
    assert [span.begin for span in recorder.completed] == list(range(7, 12))


def test_max_spans_validation():
    with pytest.raises(ValueError):
        SpanRecorder(max_spans=0)


def _recorded():
    recorder = SpanRecorder()
    recorder.begin(0, "ep0/p0", "attempt", cat="message")
    recorder.begin(0, "ep0/p0", "setup", cat="message")
    recorder.end(3, "ep0/p0")
    recorder.begin(3, "ep0/p0", "stream", cat="message")
    recorder.instant(8, "r0.0.0", "conn-open", cat="router")
    recorder.end(9, "ep0/p0")
    recorder.end(20, "ep0/p0", args={"outcome": "delivered"})
    return recorder


def test_chrome_export_is_valid_and_deterministic():
    document = _recorded().to_chrome()
    assert validate_trace_events(document) == len(document["traceEvents"])
    assert document == _recorded().to_chrome()
    phases = [event["ph"] for event in document["traceEvents"]]
    # process_name + two thread_name metadata records lead.
    assert phases[:3] == ["M", "M", "M"]
    names = {
        event["args"]["name"]
        for event in document["traceEvents"]
        if event["ph"] == "M"
    }
    assert {"metro-sim", "ep0/p0", "r0.0.0"} <= names
    instants = [e for e in document["traceEvents"] if e["ph"] == "i"]
    assert [e["name"] for e in instants] == ["conn-open"]


def test_unfinished_spans_export_to_horizon():
    recorder = SpanRecorder()
    recorder.begin(4, "t", "attempt")
    document = recorder.to_chrome(final_cycle=30)
    (event,) = [e for e in document["traceEvents"] if e["ph"] == "X"]
    assert event["ts"] == 4 and event["dur"] == 26
    assert event["args"]["unfinished"] is True


def test_export_round_trips_through_json(tmp_path):
    path = tmp_path / "trace.json"
    document = _recorded().export(str(path))
    loaded = json.loads(path.read_text())
    assert loaded == document
    assert validate_trace_events(loaded) == len(loaded["traceEvents"])


def test_validate_rejects_malformed_documents():
    with pytest.raises(ValueError):
        validate_trace_events("nope")
    with pytest.raises(ValueError):
        validate_trace_events({"no_events": []})
    with pytest.raises(ValueError):
        validate_trace_events([{"ph": "Z", "name": "x", "pid": 1, "tid": 1}])
    with pytest.raises(ValueError):
        # Complete event without a duration.
        validate_trace_events(
            [{"ph": "X", "name": "x", "pid": 1, "tid": 1, "ts": 0}]
        )
    # A bare, well-formed event array is accepted.
    assert (
        validate_trace_events(
            [{"ph": "i", "s": "t", "name": "x", "pid": 1, "tid": 1, "ts": 0}]
        )
        == 1
    )
