"""TelemetryHub: binding, metrics, span trees, sweep integration."""

import pytest

from repro.endpoint.messages import DELIVERED, Message
from repro.endpoint.traffic import HotspotTraffic
from repro.harness.load_sweep import figure1_network, figure3_sweep
from repro.network.builder import build_network
from repro.network.topology import figure1_plan
from repro.telemetry import (
    MetricsSnapshot,
    TelemetryHub,
    attach_telemetry,
    validate_trace_events,
)


def _bound_network(seed=3, **hub_kwargs):
    hub = TelemetryHub(**hub_kwargs)
    network = build_network(
        figure1_plan(), seed=seed, fast_reclaim=True, telemetry=hub
    )
    return network, hub


# -- binding -------------------------------------------------------------


def test_bind_wires_every_component():
    network, hub = _bound_network()
    assert network.telemetry is hub
    assert all(r.telemetry is hub for r in network.all_routers())
    assert all(ep.telemetry is hub for ep in network.endpoints)
    assert all(ch.telemetry is hub for ch in network.channels.values())


def test_hub_binds_exactly_once():
    network, hub = _bound_network()
    with pytest.raises(ValueError):
        hub.bind(network)


def test_attach_telemetry_convenience():
    network = build_network(figure1_plan(), seed=4)
    hub = attach_telemetry(network, spans=False)
    assert network.telemetry is hub
    assert hub.spans is None


# -- metrics from one delivery ------------------------------------------


def test_single_delivery_metrics():
    network, hub = _bound_network()
    message = network.send(2, Message(dest=11, payload=[1, 2, 3]))
    assert network.run_until_quiet(max_cycles=5000)
    assert message.outcome == DELIVERED

    snapshot = hub.snapshot()
    assert snapshot.value("endpoint.send.attempts", endpoint=2) == 1
    assert snapshot.value("endpoint.send.delivered", endpoint=2) == 1
    assert snapshot.value("endpoint.recv.messages", endpoint=11) == 1
    assert snapshot.total("router.conn.opened") >= 3  # one per stage
    latency = snapshot.histogram("message.latency.cycles")
    assert latency.count == 1
    assert latency.low == message.latency
    # Channel word counters saw the header go in and the payload out.
    assert snapshot.total("channel.words") > 0


def test_telemetry_does_not_change_behavior():
    plain = build_network(figure1_plan(), seed=9, fast_reclaim=True)
    message_a = plain.send(0, Message(dest=7, payload=[5, 6]))
    plain.run_until_quiet(max_cycles=5000)
    observed, _hub = _bound_network(seed=9)
    message_b = observed.send(0, Message(dest=7, payload=[5, 6]))
    observed.run_until_quiet(max_cycles=5000)
    assert message_a.outcome == message_b.outcome
    assert message_a.latency == message_b.latency
    assert message_a.attempts == message_b.attempts


def test_occupancy_sampling_period():
    network, hub = _bound_network(sample_period=10)
    network.run(100)
    assert hub.snapshot().value("router.util.samples") == 10


# -- span trees ----------------------------------------------------------


def test_delivered_message_span_tree():
    network, hub = _bound_network()
    message = network.send(5, Message(dest=15, payload=[1, 2, 3, 4]))
    assert network.run_until_quiet(max_cycles=5000)
    assert message.outcome == DELIVERED

    (attempt,) = hub.spans.spans(name="attempt")
    assert attempt.track.startswith("ep5/p")
    assert attempt.args["dest"] == 15
    assert attempt.args["outcome"] == "delivered"
    children = [
        span
        for span in hub.spans.spans(track=attempt.track)
        if span.depth == 1
    ]
    assert [span.name for span in children] == ["setup", "stream", "reply"]
    assert children[0].begin == attempt.begin
    assert children[-1].end == attempt.end
    (deliver,) = hub.spans.spans(name="deliver")
    assert deliver.track == "ep15/rx"


def test_blocked_then_retried_message_shows_bcb_drop():
    """Contended traffic must produce the paper's retry shape on some
    track: a setup span, a bcb-drop instant (fast path reclamation),
    and a later attempt that ends delivered."""
    network, hub = _bound_network(seed=6)
    traffic = HotspotTraffic(
        16, 4, rate=0.2, hotspot=0, fraction=0.9, message_words=12, seed=13
    )
    traffic.attach(network)
    network.run(1500)

    drops = hub.spans.spans(name="bcb-drop")
    assert drops, "no fast-reclaim drop was ever recorded"
    retried = []
    for drop in drops:
        retried.extend(
            span
            for span in hub.spans.spans(name="attempt", track=drop.track)
            if span.begin >= drop.end
            and span.args.get("outcome") == "delivered"
            and span.args.get("attempt", 0) > 0
        )
    assert retried, "no blocked track ever retried to delivery"
    # Metrics agree that the fast path fired.
    snapshot = hub.snapshot()
    assert snapshot.total("router.bcb.sent") > 0
    assert snapshot.total("endpoint.send.failures") > 0


def test_export_trace_validates(tmp_path):
    network, hub = _bound_network()
    network.send(1, Message(dest=9, payload=[7]))
    network.run_until_quiet(max_cycles=5000)
    path = tmp_path / "out.json"
    document = hub.export_trace(str(path))
    assert path.exists()
    assert validate_trace_events(document) == len(document["traceEvents"])


def test_metrics_only_hub_rejects_trace_export():
    network, hub = _bound_network(spans=False)
    with pytest.raises(ValueError):
        hub.export_trace("/tmp/never-written.json")


def test_span_ring_buffer_passthrough():
    network, hub = _bound_network(max_spans=8)
    traffic = HotspotTraffic(
        16, 4, rate=0.2, hotspot=0, fraction=0.9, message_words=12, seed=13
    )
    traffic.attach(network)
    network.run(600)
    assert len(hub.spans.completed) == 8
    assert hub.spans.dropped > 0


# -- sweep integration ---------------------------------------------------


def _sweep(workers):
    return figure3_sweep(
        rates=(0.02, 0.06),
        seed=11,
        workers=workers,
        metrics=True,
        network_factory=figure1_network,
        warmup_cycles=200,
        measure_cycles=600,
    )


def test_sweep_metrics_serial_equals_parallel():
    serial = _sweep(workers=1)
    parallel = _sweep(workers=2)
    assert all(r.metrics is not None for r in serial)
    merged_serial = MetricsSnapshot.merge_all(r.metrics for r in serial)
    merged_parallel = MetricsSnapshot.merge_all(r.metrics for r in parallel)
    assert merged_serial == merged_parallel
    # The hub sees every delivery (warmup and drain included), so its
    # count can only exceed the measured-window statistics.
    assert merged_serial.histogram("message.latency.cycles").count >= sum(
        r.delivered_count for r in serial
    )


def test_sweep_without_metrics_has_none():
    results = figure3_sweep(
        rates=(0.02,),
        seed=11,
        network_factory=figure1_network,
        warmup_cycles=100,
        measure_cycles=300,
    )
    assert results[0].metrics is None
