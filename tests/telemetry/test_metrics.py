"""Metrics registry: instruments, snapshots, pickling and merging."""

import pickle

import pytest

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    bucket_bounds,
    bucket_index,
)


# -- bucketing -----------------------------------------------------------


def test_bucket_index_powers_of_two():
    assert bucket_index(0) == 0
    assert bucket_index(0.5) == 0
    assert bucket_index(-3) == 0
    assert bucket_index(1) == 1
    assert bucket_index(2) == 2
    assert bucket_index(3) == 2
    assert bucket_index(4) == 3
    assert bucket_index(1023) == 10
    assert bucket_index(1024) == 11


def test_bucket_bounds_cover_their_values():
    for value in (0, 1, 2, 3, 7, 100, 4096, 12345):
        low, high = bucket_bounds(bucket_index(value))
        assert low <= max(value, 0) < high or value < 1


# -- instruments ---------------------------------------------------------


def test_counter_increments():
    counter = Counter()
    counter.inc()
    counter.inc(5)
    assert counter.value == 6


def test_gauge_last_write_wins():
    gauge = Gauge()
    assert gauge.updates == 0
    gauge.set(3.5)
    gauge.set(1.0)
    assert gauge.value == 1.0
    assert gauge.updates == 2


def test_histogram_stats_and_percentiles():
    histogram = Histogram()
    for value in range(1, 101):
        histogram.observe(value)
    assert histogram.count == 100
    assert histogram.mean == pytest.approx(50.5)
    assert histogram.low == 1
    assert histogram.high == 100
    assert histogram.percentile(0) == 1.0
    assert histogram.percentile(100) == 100.0
    # Log buckets give factor-of-two accuracy; the median of 1..100
    # must land inside [32, 64) where the true value (50) lives.
    assert 32 <= histogram.percentile(50) < 64


def test_empty_histogram_is_nan():
    histogram = Histogram()
    assert histogram.mean != histogram.mean
    assert histogram.percentile(50) != histogram.percentile(50)


# -- registry ------------------------------------------------------------


def test_registry_get_or_create_is_stable():
    registry = MetricsRegistry()
    a = registry.counter("hits", stage=1)
    b = registry.counter("hits", stage=1)
    c = registry.counter("hits", stage=2)
    assert a is b
    assert a is not c
    assert len(registry) == 2


def test_registry_label_order_is_irrelevant():
    registry = MetricsRegistry()
    a = registry.counter("x", stage=1, router="r0")
    b = registry.counter("x", router="r0", stage=1)
    assert a is b


def test_registry_rejects_kind_conflicts():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(ValueError):
        registry.gauge("x")


# -- snapshots -----------------------------------------------------------


def _sample_registry():
    registry = MetricsRegistry()
    registry.counter("sends", endpoint=0).inc(3)
    registry.counter("sends", endpoint=1).inc(4)
    registry.gauge("ports", router="0.0.0").set(8)
    histogram = registry.histogram("latency")
    for value in (10, 20, 40):
        histogram.observe(value)
    return registry


def test_snapshot_pickles_and_compares():
    snapshot = _sample_registry().snapshot()
    clone = pickle.loads(pickle.dumps(snapshot))
    assert clone == snapshot
    assert clone.value("sends", endpoint=0) == 3
    assert clone.value("ports", router="0.0.0") == 8


def test_snapshot_is_independent_of_registry():
    registry = _sample_registry()
    snapshot = registry.snapshot()
    registry.counter("sends", endpoint=0).inc(100)
    registry.histogram("latency").observe(999)
    assert snapshot.value("sends", endpoint=0) == 3
    assert snapshot.histogram("latency").count == 3


def test_merge_counters_and_histograms_add():
    left = _sample_registry().snapshot()
    right = _sample_registry().snapshot()
    merged = left.merge(right)
    assert merged.value("sends", endpoint=0) == 6
    histogram = merged.histogram("latency")
    assert histogram.count == 6
    assert histogram.low == 10 and histogram.high == 40
    # Inputs are untouched.
    assert left.value("sends", endpoint=0) == 3


def test_merge_gauge_last_write_wins_in_merge_order():
    a = MetricsRegistry()
    a.gauge("g").set(1.0)
    b = MetricsRegistry()
    b.gauge("g").set(2.0)
    c = MetricsRegistry()  # never set: must not clobber real writes
    c.gauge("g")
    merged = MetricsSnapshot.merge_all(
        [a.snapshot(), b.snapshot(), c.snapshot()]
    )
    assert merged.value("g") == 2.0


def test_merge_all_is_fold_in_order():
    snapshots = [_sample_registry().snapshot() for _ in range(3)]
    merged = MetricsSnapshot.merge_all(snapshots)
    assert merged.value("sends", endpoint=1) == 12
    # None entries (trials without metrics) are skipped.
    assert MetricsSnapshot.merge_all([None, snapshots[0], None]) == snapshots[0]


def test_merge_rejects_kind_conflicts():
    a = MetricsRegistry()
    a.counter("x").inc()
    b = MetricsRegistry()
    b.gauge("x").set(1)
    with pytest.raises(ValueError):
        a.snapshot().merge(b.snapshot())


def test_total_and_grouping():
    snapshot = _sample_registry().snapshot()
    assert snapshot.total("sends") == 7
    assert snapshot.total("sends", by="endpoint") == {0: 3, 1: 4}


def test_names_get_and_as_dict():
    snapshot = _sample_registry().snapshot()
    assert snapshot.names() == ["latency", "ports", "sends"]
    assert snapshot.get("missing", default=-1) == -1
    rendered = snapshot.as_dict()
    assert rendered["sends{endpoint=0}"] == 3
    assert rendered["latency"]["count"] == 3
