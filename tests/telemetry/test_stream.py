"""TelemetryStream run logs: schema, lossless deltas, engine hints."""

import io
import json

import pytest

from repro.endpoint.traffic import UniformRandomTraffic
from repro.harness.chaos import chaos_sweep, run_chaos_point
from repro.harness.load_sweep import figure1_network
from repro.telemetry import (
    STREAM_FORMAT,
    TelemetryHub,
    TelemetryStream,
    merge_stream_metrics,
    read_run_log,
    snapshot_from_jsonable,
    snapshot_to_jsonable,
    validate_run_log,
)

# Small, fast soak shared by the streaming tests.
SOAK_KW = dict(
    n_windows=6,
    window_cycles=200,
    warmup_windows=2,
    rate=0.02,
    n_flaky_links=1,
    n_dead_routers=1,
    mtbf=400,
    mttr=200,
    max_attempts=30,
)


def _loaded_network(**kwargs):
    network = figure1_network(seed=5, **kwargs)
    UniformRandomTraffic(
        n_endpoints=network.plan.n_endpoints,
        w=network.codec.w,
        rate=0.05,
        message_words=8,
        seed=6,
    ).attach(network)
    return network


class TestSnapshotCodec:
    def test_round_trip_is_exact_through_json(self):
        network = _loaded_network(telemetry=TelemetryHub(spans=False))
        network.run(600)
        snapshot = network.telemetry.snapshot()
        assert len(snapshot)
        encoded = json.loads(json.dumps(snapshot_to_jsonable(snapshot)))
        decoded = snapshot_from_jsonable(encoded)
        assert decoded == snapshot

    def test_empty_snapshot_round_trips(self):
        from repro.telemetry import MetricsSnapshot

        empty = MetricsSnapshot()
        assert snapshot_from_jsonable(snapshot_to_jsonable(empty)) == empty


class TestRunLogSchema:
    def test_soak_log_is_valid_and_complete(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        result = run_chaos_point(
            seed=1, stream_path=path, metrics=True, **SOAK_KW
        )
        events = read_run_log(path)
        assert validate_run_log(events) == len(events)
        kinds = {event["event"] for event in events}
        assert {
            "run.start", "metrics.delta", "window.stats", "run.end"
        } <= kinds
        assert events[0]["format"] == STREAM_FORMAT
        # The soak injects faults, so transitions must be streamed.
        assert "fault.transition" in kinds
        assert events[-1]["event"] == "run.end"
        assert result.windows  # the run itself finished normally

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        run_chaos_point(seed=1, stream_path=path, metrics=True, **SOAK_KW)
        whole = read_run_log(path)
        with open(path, "a") as handle:
            handle.write('{"event": "metrics.del')  # crash mid-write
        torn = read_run_log(path)
        assert torn == whole

    def test_malformed_interior_line_raises_with_line_number(self):
        lines = ['{"event": "run.start"}', "not json", '{"event": "x"}']
        with pytest.raises(ValueError, match="line 2"):
            read_run_log(lines)

    def test_validate_rejects_missing_start_and_bad_format(self):
        with pytest.raises(ValueError, match="run.start"):
            validate_run_log([{"event": "metrics.delta"}])
        with pytest.raises(ValueError, match="format"):
            validate_run_log([{"event": "run.start", "format": "bogus"}])
        with pytest.raises(ValueError, match="cycle"):
            validate_run_log(
                [
                    {"event": "run.start", "format": STREAM_FORMAT},
                    {"event": "window.stats", "window": 0,
                     "delivered": 1, "cycle": "soon"},
                ]
            )

    def test_truncated_mid_record_parses_as_a_prefix(self, tmp_path):
        """A crash can cut the file at any byte, not just mid-append.

        Whatever the truncation point, the reader must return a clean
        prefix of the original events — the torn final record (and
        only it) vanishes.
        """
        from repro.harness.chaosmonkey import truncate_tail

        path = str(tmp_path / "run.jsonl")
        run_chaos_point(seed=1, stream_path=path, metrics=True, **SOAK_KW)
        whole = read_run_log(path)
        for nbytes in (1, 7, 40):
            torn_path = str(tmp_path / "torn-{}.jsonl".format(nbytes))
            with open(path, "rb") as src, open(torn_path, "wb") as dst:
                dst.write(src.read())
            truncate_tail(torn_path, nbytes)
            torn = read_run_log(torn_path)
            assert torn == whole[: len(torn)]
            assert len(torn) >= len(whole) - 2

    def test_journal_events_validate_inside_run_logs(self):
        """Journal trial events embedded in a run log schema-check."""
        events = [
            {"event": "run.start", "format": STREAM_FORMAT},
            {"event": "trial.done", "index": 0, "key": "k", "label": "pt0",
             "source": "executed"},
        ]
        assert validate_run_log(events) == 2
        with pytest.raises(ValueError, match="missing field"):
            validate_run_log(
                [
                    {"event": "run.start", "format": STREAM_FORMAT},
                    {"event": "trial.done", "index": 0},
                ]
            )


class TestLosslessDeltas:
    def test_merged_deltas_equal_final_snapshot_serial(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        result = run_chaos_point(
            seed=2, stream_path=path, metrics=True, **SOAK_KW
        )
        merged = merge_stream_metrics(read_run_log(path))
        assert merged == result.metrics

    @pytest.mark.parametrize("backend", ["events", "vector"])
    def test_merged_deltas_equal_final_snapshot_fast_backends(
        self, tmp_path, backend
    ):
        path = str(tmp_path / "run.jsonl")
        result = run_chaos_point(
            seed=2, stream_path=path, metrics=True, backend=backend,
            **SOAK_KW
        )
        merged = merge_stream_metrics(read_run_log(path))
        assert merged == result.metrics

    def test_merged_deltas_equal_final_snapshot_parallel(self, tmp_path):
        results = chaos_sweep(
            seeds=2,
            seed=7,
            workers=2,
            stream_dir=str(tmp_path),
            metrics=True,
            **SOAK_KW
        )
        for index, result in enumerate(results):
            path = str(tmp_path / "soak{}-healon.jsonl".format(index))
            events = read_run_log(path)
            assert validate_run_log(events) == len(events)
            assert merge_stream_metrics(events) == result.metrics

    def test_streaming_does_not_perturb_the_run(self, tmp_path):
        plain = run_chaos_point(seed=3, metrics=True, **SOAK_KW)
        streamed = run_chaos_point(
            seed=3,
            metrics=True,
            stream_path=str(tmp_path / "run.jsonl"),
            **SOAK_KW
        )
        assert streamed.windows == plain.windows
        assert streamed.metrics == plain.metrics
        assert streamed.undeliverable == plain.undeliverable


class TestWindowStats:
    def test_windows_carry_slo_percentiles(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        run_chaos_point(seed=1, stream_path=path, metrics=True, **SOAK_KW)
        windows = [
            event for event in read_run_log(path)
            if event["event"] == "window.stats"
        ]
        assert len(windows) >= SOAK_KW["n_windows"]
        busy = [w for w in windows if w["delivered"]]
        assert busy
        for window in busy:
            assert window["p50_latency"] <= window["p95_latency"]
            assert window["p95_latency"] <= window["p99_latency"]
        # Windows tile the run: starts are strictly increasing.
        starts = [w["start_cycle"] for w in windows]
        assert starts == sorted(starts)
        assert len(set(starts)) == len(starts)


class TestEngineHints:
    def test_stream_preserves_idle_compression(self):
        network = figure1_network(seed=5, backend="events")
        stream = TelemetryStream(
            io.StringIO(), flush_every=500, window_cycles=1000
        )
        stream.bind(network)
        network.run(5000)
        stream.close()
        # The stream's next_event_cycle hint lets the events backend
        # keep jumping between flush boundaries on an idle network.
        assert network.engine.compressed_cycles > 0.9 * 5000

    def test_hintless_observer_still_disables_compression(self):
        network = figure1_network(seed=5, backend="events")

        class Opaque:
            enabled = True
            name = "opaque"

            def tick(self, cycle):
                pass

        network.engine.add_observer(Opaque())
        network.run(2000)
        assert network.engine.compressed_cycles == 0

    def test_closed_stream_never_wakes_the_engine(self):
        stream = TelemetryStream(io.StringIO(), flush_every=10)
        stream.closed = True
        assert stream.next_event_cycle() == float("inf")
