"""Simulator profiler: wrapping, accounting, restoration."""

import pytest

from repro.endpoint.messages import Message
from repro.network.builder import build_network
from repro.network.topology import figure1_plan
from repro.telemetry import SimProfiler, profile_engine


def _network(seed=21):
    return build_network(figure1_plan(), seed=seed)


def test_profile_accounts_all_component_classes():
    network = _network()
    report = profile_engine(network.engine, cycles=50)
    assert report.cycles == 50
    assert report.wall_seconds > 0
    names = set(report.classes)
    assert {"MetroRouter", "Endpoint", "Channel.advance"} <= names
    routers = report.classes["MetroRouter"]
    assert routers.instances == sum(len(s) for s in network.routers)
    assert routers.ticks == routers.instances * 50
    assert report.classes["Channel.advance"].instances == len(
        network.engine.channels
    )


def test_profile_restores_engine_state():
    network = _network()
    profile_engine(network.engine, cycles=10)
    # Instance-level wrappers are gone: ticks resolve to class methods.
    for component in network.engine.components:
        assert "tick" not in vars(component)
    assert all(
        not type(ch).__name__.startswith("_Channel")
        or hasattr(ch, "delay")
        for ch in network.engine.channels
    )
    # And the simulation still works end to end.
    message = network.send(0, Message(dest=5, payload=[1]))
    assert network.run_until_quiet(max_cycles=5000)
    assert message.outcome == "delivered"


def test_profile_restores_on_error():
    network = _network()
    network.engine.set_deadline(network.engine.cycle + 5)
    with pytest.raises(Exception):
        profile_engine(network.engine, cycles=50)
    for component in network.engine.components:
        assert "tick" not in vars(component)
    assert all(hasattr(ch, "dead") for ch in network.engine.channels)


def test_profile_with_custom_run_callable():
    network = _network()
    network.send(3, Message(dest=12, payload=[1, 2]))
    profiler = SimProfiler(network.engine)
    report = profiler.profile(run=lambda: network.run_until_quiet(5000))
    assert report.cycles > 0
    assert report.total_ticks > 0


def test_profile_argument_validation():
    profiler = SimProfiler(_network().engine)
    with pytest.raises(ValueError):
        profiler.profile()
    with pytest.raises(ValueError):
        profiler.profile(cycles=10, run=lambda: None)


def test_report_rows_and_format():
    network = _network()
    report = profile_engine(network.engine, cycles=20)
    rows = report.rows()
    assert rows == sorted(rows, key=lambda r: -r["total_ms"])
    shares = sum(row["share_pct"] for row in rows)
    assert shares == pytest.approx(100.0)
    text = report.format()
    assert "cycles/s" in text
    assert "MetroRouter" in text
    assert repr(report).startswith("<ProfileReport")
