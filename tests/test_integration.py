"""End-to-end integration: messages across whole METRO networks."""

import pytest

from repro.core.parameters import RouterParameters
from repro.endpoint.messages import DELIVERED, Message
from repro.network.builder import build_network
from repro.network.topology import NetworkPlan, StageSpec, figure1_plan, figure3_plan
from repro.verify import attach_oracle


def _deliver_one(network, src, dest, payload):
    """Send one message under the conformance oracle and drain."""
    oracle = getattr(network, "_test_oracle", None)
    if oracle is None:
        oracle = network._test_oracle = attach_oracle(network)
    message = network.send(src, Message(dest=dest, payload=payload))
    assert network.run_until_quiet(max_cycles=5000)
    oracle.check_quiescent(network.engine.cycle)
    oracle.assert_clean()
    return message


class TestSingleMessage:
    def test_figure1_paper_path_endpoint_6_to_16(self):
        """The bold path of Figure 1: endpoint 6 to endpoint 16 (1-based)."""
        network = build_network(figure1_plan(), seed=3)
        message = _deliver_one(network, 5, 15, [0x1, 0x2, 0x3, 0x4])
        assert message.outcome == DELIVERED
        assert message.attempts == 1
        assert message.latency > 0

    def test_every_pair_delivers(self):
        network = build_network(figure1_plan(), seed=5)
        for src in range(16):
            for dest in range(16):
                if src == dest:
                    continue
                message = network.send(src, Message(dest=dest, payload=[src, dest]))
                assert network.run_until_quiet(max_cycles=5000), (src, dest)
                assert message.outcome == DELIVERED, (src, dest, message)

    def test_payload_integrity_at_receiver(self):
        network = build_network(figure1_plan(), seed=7)
        message = _deliver_one(network, 0, 9, [0xA, 0xB, 0xC])
        assert message.outcome == DELIVERED
        assert network.log.receiver_deliveries == 1
        assert network.log.receiver_checksum_failures == 0

    def test_self_message(self):
        network = build_network(figure1_plan(), seed=11)
        message = _deliver_one(network, 4, 4, [1])
        assert message.outcome == DELIVERED

    def test_long_message(self):
        # "(Unlimited) Variable Length Message Support"
        network = build_network(figure1_plan(), seed=13)
        payload = [v & 0xF for v in range(200)]
        message = _deliver_one(network, 2, 14, payload)
        assert message.outcome == DELIVERED

    def test_empty_payload(self):
        network = build_network(figure1_plan(), seed=17)
        message = _deliver_one(network, 1, 8, [])
        assert message.outcome == DELIVERED

    def test_network_quiescent_after_delivery(self):
        network = build_network(figure1_plan(), seed=19)
        _deliver_one(network, 3, 12, [5, 6])
        for router in network.all_routers():
            assert router.is_quiescent()
            assert router.busy_backward_ports() == []


class TestFigure3Network:
    def test_unloaded_latency_near_paper_28_cycles(self):
        """Paper: 'The unloaded message latency is 28 clock cycles from
        message injection to acknowledgment receipt' for 20-byte
        messages on the 3-stage radix-4 network."""
        network = build_network(figure3_plan(), seed=23)
        payload = list(range(20))  # 20 bytes at w=8
        message = _deliver_one(network, 10, 53, payload)
        assert message.outcome == DELIVERED
        # Our protocol details differ slightly (explicit checksum word,
        # close handshake); require the same regime, not the exact value.
        assert 25 <= message.latency <= 45, message.latency

    def test_many_random_pairs(self):
        import random

        rng = random.Random(99)
        network = build_network(figure3_plan(), seed=29)
        for _ in range(40):
            src = rng.randrange(64)
            dest = rng.randrange(64)
            message = network.send(src, Message(dest=dest, payload=[1, 2, 3, 4]))
            assert network.run_until_quiet(max_cycles=5000)
            assert message.outcome == DELIVERED


class TestConcurrentTraffic:
    def test_simultaneous_messages_all_deliver(self):
        network = build_network(figure1_plan(), seed=31)
        msgs = []
        for src in range(16):
            dest = (src + 7) % 16
            msgs.append(network.send(src, Message(dest=dest, payload=[src])))
        assert network.run_until_quiet(max_cycles=20000)
        for message in msgs:
            assert message.outcome == DELIVERED
        # Retries may occur under contention, but everything lands.
        assert len(network.log.delivered()) == 16

    def test_hotspot_contention_resolves_by_retry(self):
        """Everyone sends to endpoint 0: heavy blocking, but source-
        responsible retry + random selection eventually delivers all."""
        network = build_network(figure1_plan(), seed=37)
        oracle = attach_oracle(network)
        msgs = [
            network.send(src, Message(dest=0, payload=[src]))
            for src in range(1, 16)
        ]
        assert network.run_until_quiet(max_cycles=50000)
        oracle.check_quiescent(network.engine.cycle)
        oracle.assert_clean()
        for message in msgs:
            assert message.outcome == DELIVERED
        causes = network.log.failure_cause_counts()
        assert causes.get("blocked", 0) > 0  # contention really happened


class TestFastReclamation:
    def test_hotspot_with_fast_reclaim(self):
        network = build_network(figure1_plan(), seed=37, fast_reclaim=True)
        msgs = [
            network.send(src, Message(dest=0, payload=[src]))
            for src in range(1, 16)
        ]
        assert network.run_until_quiet(max_cycles=50000)
        for message in msgs:
            assert message.outcome == DELIVERED
        causes = network.log.failure_cause_counts()
        assert causes.get("blocked-fast", 0) > 0
        assert causes.get("blocked", 0) == 0


class TestHwSetupPipelining:
    def test_hw1_network_delivers(self):
        params = RouterParameters(i=4, o=4, w=4, max_d=2, hw=1)
        plan = NetworkPlan(
            16,
            2,
            2,
            [StageSpec(params, 2), StageSpec(params, 2), StageSpec(params, 1)],
        )
        network = build_network(plan, seed=41)
        message = _deliver_one(network, 3, 9, [0x1, 0x2])
        assert message.outcome == DELIVERED

    def test_hw2_network_delivers(self):
        params = RouterParameters(i=4, o=4, w=4, max_d=2, hw=2)
        plan = NetworkPlan(
            16,
            2,
            2,
            [StageSpec(params, 2), StageSpec(params, 2), StageSpec(params, 1)],
        )
        network = build_network(plan, seed=43)
        message = _deliver_one(network, 3, 9, [0x1, 0x2])
        assert message.outcome == DELIVERED


class TestVariableTurnDelay:
    @pytest.mark.parametrize("delay", [1, 2, 3])
    def test_uniform_link_delays(self, delay):
        network = build_network(figure1_plan(), seed=47, link_delay=delay)
        message = _deliver_one(network, 2, 13, [9, 9])
        assert message.outcome == DELIVERED

    def test_nonuniform_link_delays(self):
        """Per-port wire lengths may differ (Section 5.1)."""
        import random

        rng = random.Random(53)
        network = build_network(
            figure1_plan(), seed=53, link_delay=lambda link: rng.choice([1, 2, 3])
        )
        for src, dest in [(0, 15), (7, 8), (3, 3)]:
            message = network.send(src, Message(dest=dest, payload=[src]))
            assert network.run_until_quiet(max_cycles=10000)
            assert message.outcome == DELIVERED


class TestDeterministicWiring:
    def test_butterfly_wiring_delivers(self):
        network = build_network(figure1_plan(), seed=59, randomize_wiring=False)
        message = _deliver_one(network, 6, 10, [3])
        assert message.outcome == DELIVERED


class TestStageChecksums:
    def test_stage_checksum_verification_passes_clean_network(self):
        network = build_network(
            figure1_plan(),
            seed=61,
            endpoint_kwargs={"verify_stage_checksums": True},
        )
        message = _deliver_one(network, 1, 14, [7, 7, 7])
        assert message.outcome == DELIVERED
        assert "corrupted" not in message.failure_causes


class TestRequestReplyConvenience:
    def test_request_returns_reply_payload(self):
        network = build_network(figure1_plan(), seed=63)
        network.endpoints[9].reply_handler = (
            lambda payload, ok: ([v ^ 0xF for v in payload], 3)
        )
        reply = network.request(2, 9, [0x1, 0x2, 0x3])
        assert reply == [0xE, 0xD, 0xC]

    def test_request_ack_only_is_empty(self):
        network = build_network(figure1_plan(), seed=64)
        assert network.request(0, 5, [7]) == []

    def test_request_raises_on_undeliverable(self):
        import pytest as _pytest

        from repro.faults.injector import FaultInjector
        from repro.faults.model import DeadRouter

        network = build_network(
            figure1_plan(), seed=65,
            endpoint_kwargs={"max_attempts": 2, "reply_timeout": 60},
        )
        injector = FaultInjector(network)
        # Kill every final-stage router serving dest 3's block: dest 3
        # becomes unreachable.
        for (stage, block, index) in list(network.router_grid):
            if stage == 2 and block == 0:
                injector.now(DeadRouter(stage, block, index))
        with _pytest.raises(RuntimeError):
            network.request(9, 3, [1])
