"""Table 5: contemporary comparisons bracket the paper's estimates."""

import pytest

from repro.latency_model.contemporaries import table5_contemporaries
from repro.latency_model.implementations import metrojr_orbit

ROWS = {c.name: c for c in table5_contemporaries()}


def test_seven_rows():
    assert len(ROWS) == 7


@pytest.mark.parametrize("name", sorted(ROWS))
def test_estimates_near_paper_values(name):
    """Our recipe must land within 15% of the printed bounds (the
    paper itself rounds: e.g. KSR-1 prints 3.5us for 3us + 0.6us)."""
    row = ROWS[name]
    est_lo, est_hi = row.estimate_t_20_32()
    paper_lo, paper_hi = row.paper_t_20_32_ns
    assert est_lo == pytest.approx(paper_lo, rel=0.15)
    assert est_hi == pytest.approx(paper_hi, rel=0.15)


def test_exact_rows():
    """Rows whose recipe reproduces the printed number exactly."""
    assert ROWS["DEC/GIGAswitch"].estimate_t_20_32()[0] == pytest.approx(16600, rel=0.05)
    assert ROWS["Mercury/Race"].estimate_t_20_32() == (pytest.approx(500), pytest.approx(500))
    assert ROWS["MIT/J-Machine"].estimate_t_20_32() == (
        pytest.approx(660),
        pytest.approx(1020),
    )
    assert ROWS["TMC/CM-5 Router"].estimate_t_20_32() == (
        pytest.approx(1500),
        pytest.approx(3500),
    )


def test_paper_headline_claim():
    """Section 7: 'even the minimal gate-array implementation of METRO
    compares favorably with the existing field' — METROJR-ORBIT's
    1250 ns beats every Table 5 row except the top of none."""
    orbit = metrojr_orbit().t_20_32()
    for row in ROWS.values():
        paper_lo, _hi = row.paper_t_20_32_ns
        if row.name in ("Caltech/MRC", "Mercury/Race", "MIT/J-Machine"):
            # The fastest full-custom mesh routers can beat the
            # gate-array METRO at favourable hop counts...
            continue
        assert orbit < paper_lo

    # ...but METRO's std-cell and full-custom rows beat everything.
    from repro.latency_model.implementations import table3_implementations

    std_cell_best = min(
        i.t_20_32() for i in table3_implementations() if "Std" in i.technology
    )
    assert all(std_cell_best < row.paper_t_20_32_ns[0] for row in ROWS.values())


def test_serialization_term():
    ksr = ROWS["KSR/KSR-1"]
    assert ksr.serialization_ns() == pytest.approx(600)
