"""Generalized analytical model: arbitrary messages and networks."""

import pytest

from repro.latency_model import general as G
from repro.latency_model.implementations import table3_implementations
from repro.network.topology import figure1_plan, figure3_plan

IMPLS = {(i.name, i.technology): i for i in table3_implementations()}
ORBIT = IMPLS[("METROJR-ORBIT", "1.2u Gate Array")]
ORBIT2 = IMPLS[("METROJR-ORBIT 2-cascade", "1.2u Gate Array")]
ORBIT4 = IMPLS[("METROJR-ORBIT 4-cascade", "1.2u Gate Array")]


class TestTMessage:
    def test_reduces_to_t_20_32(self):
        assert G.t_message(ORBIT, 20) == pytest.approx(1250)
        assert G.t_message(ORBIT2, 20) == pytest.approx(750)

    def test_scales_linearly_in_payload(self):
        base = G.t_message(ORBIT, 20)
        double = G.t_message(ORBIT, 40)
        # +160 bits at 6.25 ns/bit.
        assert double - base == pytest.approx(1000)

    def test_custom_radices(self):
        # A 64-node, 3-stage radix-4 network (the Figure 3 shape).
        radices = G.plan_radices(figure3_plan())
        assert radices == (4, 4, 4)
        t = G.t_message(ORBIT, 20, stage_radices=radices)
        # 3 stages x 50 ns + (160 + hbits) bits x 6.25; hbits: 6 bits
        # in one 4-bit... two 4-bit words -> 8 bits.
        assert t == pytest.approx(3 * 50 + 168 * 6.25)

    def test_plan_radices_figure1(self):
        assert G.plan_radices(figure1_plan()) == (2, 2, 4)


class TestBandwidth:
    def test_orbit_port_bandwidth(self):
        # 4 bits per 25 ns = 160 Mbit/s.
        assert G.bandwidth_per_port(ORBIT) == pytest.approx(160)

    def test_cascade_multiplies_bandwidth(self):
        assert G.bandwidth_per_port(ORBIT4) == pytest.approx(640)

    def test_saturation_rate(self):
        # 20 bytes + 8 header bits = 168 bits -> 42 words -> 1050 ns.
        rate = G.saturation_messages_per_us(ORBIT, 20)
        assert rate == pytest.approx(1000.0 / 1050, rel=1e-6)

    def test_saturation_rate_cascade(self):
        # 160 + 16 = 176 bits over 8-bit words -> 22 cycles -> 550 ns.
        rate = G.saturation_messages_per_us(ORBIT2, 20)
        assert rate == pytest.approx(1000.0 / 550, rel=1e-6)


class TestCrossover:
    def test_cascade_always_wins_here(self):
        # With hw=0, header replication costs little: the 2-cascade
        # wins from the first byte.
        assert G.crossover_message_bytes(ORBIT, ORBIT2) == 1

    def test_hw_crossover(self):
        """hw=1 at 2 ns vs hw=0 at 5 ns (full custom): the faster clock
        wins immediately for any realistic message."""
        hw0 = IMPLS[("METROJR", "0.8u Full Custom")]
        hw1 = IMPLS[("METROJR hw=1", "0.8u Full Custom")]
        assert G.crossover_message_bytes(hw0, hw1) == 1

    def test_no_crossover_returns_none(self):
        # An implementation never beats itself.
        assert G.crossover_message_bytes(ORBIT, ORBIT, limit=64) is None
