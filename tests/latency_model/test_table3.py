"""Table 3: every row must reproduce the paper's numbers exactly."""

import pytest

from repro.latency_model.implementations import (
    metrojr_orbit,
    table3_implementations,
)

IMPLS = table3_implementations()


def test_sixteen_rows():
    assert len(IMPLS) == 16


@pytest.mark.parametrize("impl", IMPLS, ids=[i.name + "/" + i.technology for i in IMPLS])
def test_t_stg_matches_paper(impl):
    assert impl.t_stg() == pytest.approx(impl.expected_t_stg)


@pytest.mark.parametrize("impl", IMPLS, ids=[i.name + "/" + i.technology for i in IMPLS])
def test_t_20_32_matches_paper(impl):
    assert impl.t_20_32() == pytest.approx(impl.expected_t_20_32)


def test_orbit_prototype_headline_numbers():
    """Section 6.1: 40 MHz, 50 ns router-to-router, 25 ns nibble."""
    orbit = metrojr_orbit()
    assert orbit.t_clk == 25  # 40 MHz
    assert orbit.t_stg() == 50
    assert orbit.t_bit() * 4 == pytest.approx(25)  # 25 ns per nibble


def test_rows_ordered_fastest_last_within_technology():
    """Within each technology group the table progresses toward lower
    t_20,32 as width/cascading/pipelining are applied."""
    ga = [i.t_20_32() for i in IMPLS if i.technology.startswith("1.2")]
    assert ga[0] == max(ga)


def test_row_dict_shape():
    row = IMPLS[0].row()
    assert row["t_stg_ns"] == 50
    assert row["t_20_32_ns"] == pytest.approx(1250)
    assert row["stages"] == 4
    assert row["t_bit"] == "25 ns/4 b"


def test_cascading_never_hurts():
    """For every base row with a cascaded variant, the cascade is
    strictly faster despite its larger header."""
    by_name = {(i.name, i.technology): i for i in IMPLS}
    pairs = [
        (("METROJR-ORBIT", "1.2u Gate Array"),
         ("METROJR-ORBIT 2-cascade", "1.2u Gate Array")),
        (("METROJR-ORBIT 2-cascade", "1.2u Gate Array"),
         ("METROJR-ORBIT 4-cascade", "1.2u Gate Array")),
        (("METROJR", "0.8u Std. Cell"), ("METROJR 2-cascade", "0.8u Std. Cell")),
        (("METROJR hw=1", "0.8u Full Custom"),
         ("METROJR hw=1 2-cascade", "0.8u Full Custom")),
    ]
    for base_key, cascade_key in pairs:
        assert by_name[cascade_key].t_20_32() < by_name[base_key].t_20_32()


def test_setup_pipelining_tradeoff():
    """hw=1 cuts t_stg (8 vs 10 ns) relative to dp=2 at the same clock
    but pays in header bits; the paper's rows show the net win."""
    by_name = {(i.name, i.technology): i for i in IMPLS}
    dp2 = by_name[("METROJR dp=2", "0.8u Full Custom")]
    hw1 = by_name[("METROJR hw=1", "0.8u Full Custom")]
    assert hw1.t_stg() < dp2.t_stg()
    assert hw1.hbits() > dp2.hbits()
    assert hw1.t_20_32() < dp2.t_20_32()


class TestRN1Ancestor:
    """Section 6.1's RN1 context: one pipeline stage per routing stage,
    clock capped near 50 MHz."""

    def test_rn1_numbers(self):
        from repro.latency_model.implementations import rn1

        ancestor = rn1()
        assert ancestor.t_clk == 20  # ~50 MHz
        assert ancestor.t_stg() == 20  # single pipeline stage, no vtd
        # 2 stages x 20 ns + (160 + 8) bits x 2.5 ns/bit.
        assert ancestor.t_20_32() == pytest.approx(40 + 168 * 2.5)

    def test_metro_lesson_pipelined_interconnect_clocks_faster(self):
        """At the same 1.2u process, METROJR-ORBIT's separately
        pipelined interconnect buys a faster usable clock per bit of
        datapath than RN1's single-stage design would scale to; and
        METRO's full-custom rows leave RN1 far behind."""
        from repro.latency_model.implementations import rn1

        ancestor = rn1()
        full_custom = [
            i for i in IMPLS if i.technology == "0.8u Full Custom"
        ]
        assert min(i.t_20_32() for i in full_custom) < ancestor.t_20_32() / 4
