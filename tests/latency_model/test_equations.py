"""Table 4 equations, pinned to the quantities the paper states."""

import pytest

from repro.latency_model import equations as EQ


class TestVtd:
    def test_orbit_interconnect_is_one_cycle(self):
        # t_io=10, t_wire=3, t_clk=25: ceil(13/25) = 1.
        assert EQ.vtd(10, 3, 25) == 1

    def test_fast_clock_needs_more_stages(self):
        # t_io=3, t_wire=3, t_clk=2: ceil(6/2) = 3.
        assert EQ.vtd(3, 3, 2) == 3

    def test_exact_division(self):
        assert EQ.vtd(5, 3, 4) == 2

    def test_five_ns_full_custom(self):
        assert EQ.vtd(3, 3, 5) == 2


class TestStageLatency:
    def test_orbit_t_stg_50ns(self):
        # Section 6.1: "a 50 ns router-to-router latency".
        assert EQ.t_stg(25, 10, dp=1) == 50

    def test_std_cell_20ns(self):
        assert EQ.t_stg(10, 5, dp=1) == 20

    def test_full_custom_15ns(self):
        assert EQ.t_stg(5, 3, dp=1) == 15

    def test_dp2_at_2ns(self):
        assert EQ.t_stg(2, 3, dp=2) == 10

    def test_dp1_at_2ns(self):
        assert EQ.t_stg(2, 3, dp=1) == 8


class TestTBit:
    def test_orbit_nibble(self):
        # "25 ns nibble (4-bit) latency" -> 25/4 ns per bit.
        assert EQ.t_bit(25, 4) == pytest.approx(6.25)

    def test_cascade_doubles_rate(self):
        assert EQ.t_bit(25, 4, c=2) == pytest.approx(3.125)


class TestHbits:
    def test_hw0_four_stage(self):
        assert EQ.hbits(4, 0, EQ.RADICES_32_NODE_4_STAGE) == 8

    def test_hw0_two_stage(self):
        assert EQ.hbits(4, 0, EQ.RADICES_32_NODE_2_STAGE) == 8

    def test_hw1(self):
        assert EQ.hbits(4, 1, EQ.RADICES_32_NODE_4_STAGE) == 16

    def test_hw2_cascade4_two_stage(self):
        assert EQ.hbits(4, 2, EQ.RADICES_32_NODE_2_STAGE, c=4) == 64

    def test_radix_products_cover_32_nodes(self):
        import math
        assert math.prod(EQ.RADICES_32_NODE_4_STAGE) == 32
        assert math.prod(EQ.RADICES_32_NODE_2_STAGE) == 32


class TestT2032:
    def test_orbit(self):
        assert EQ.t_20_32(25, 10) == pytest.approx(1250)

    def test_message_bits_constant(self):
        assert EQ.MESSAGE_BITS_20_BYTES == 160

    def test_monotone_in_clock(self):
        slow = EQ.t_20_32(25, 10)
        fast = EQ.t_20_32(10, 5)
        assert fast < slow

    def test_cascading_helps_long_messages_most(self):
        base = EQ.t_20_32(25, 10, c=1)
        cascaded = EQ.t_20_32(25, 10, c=2)
        # Stage latency is unchanged; only serialization halves (plus
        # the header grows), so the gain is bounded by the bit time.
        assert cascaded < base
        assert base - cascaded == pytest.approx(500)
