"""Pin-budget cost model: the cascading economics of Section 5.1."""

import pytest

from repro.latency_model import cost as C


class TestPinCount:
    def test_metrojr_class_part_is_small(self):
        # 4+4 ports x (4+2) pins + 4 TAP + 1 random + 3 misc = 56.
        assert C.pin_count(4, 4, 4) == 56

    def test_wider_datapath_costs_port_pins(self):
        narrow = C.pin_count(8, 8, 4)
        wide = C.pin_count(8, 8, 16)
        assert wide - narrow == 16 * 12

    def test_multitap_costs_four_pins_each(self):
        assert C.pin_count(4, 4, 4, sp=2) - C.pin_count(4, 4, 4, sp=1) == 4


class TestBudgetedPorts:
    def test_ports_shrink_with_width(self):
        for pins in (100, 150, 220):
            assert C.max_ports_for_budget(pins, 4) >= C.max_ports_for_budget(
                pins, 8
            ) >= C.max_ports_for_budget(pins, 16)

    def test_power_of_two(self):
        for pins in range(60, 300, 17):
            ports = C.max_ports_for_budget(pins, 8)
            assert ports == 0 or (ports & (ports - 1)) == 0

    def test_known_point(self):
        # 150 pins, w=8: (150-8)/10 = 14 total ports -> 7/side -> 4.
        assert C.max_ports_for_budget(150, 8) == 4

    def test_tiny_budget_unbuildable(self):
        assert C.max_ports_for_budget(10, 8) == 0


class TestStages:
    def test_eight_port_parts_need_two_stages(self):
        assert C.stages_for_32_nodes(8) == (4, 8)

    def test_four_port_parts_need_four_stages(self):
        assert C.stages_for_32_nodes(4) == (2, 2, 2, 4)

    def test_two_port_parts_unbuildable_at_dilation_2(self):
        assert C.stages_for_32_nodes(2) is None


class TestDesignPoints:
    def test_cascading_wins_at_fixed_pins(self):
        """The paper's claim: at one pin budget, narrow-slice cascaded
        parts deliver lower t_20,32 at equal-or-wider datapath than a
        single wide chip."""
        rows = C.cascade_tradeoff_table(pins=150)
        by_config = {(r["w"], r["cascade_c"]): r for r in rows}
        wide_chip = by_config[(8, 1)]
        cascaded = by_config[(4, 2)]
        assert cascaded["datapath_bits"] == wide_chip["datapath_bits"]
        # Narrow slices afford more ports -> fewer stages.
        assert cascaded["ports_per_side"] > wide_chip["ports_per_side"]
        assert cascaded["stages"] < wide_chip["stages"]
        assert cascaded["t_20_32_ns"] < wide_chip["t_20_32_ns"]

    def test_budget_respected(self):
        for pins in (120, 150, 200):
            for row in C.cascade_tradeoff_table(pins=pins):
                assert row["pins_used"] <= pins

    def test_unbuildable_returns_none(self):
        assert C.design_point(40, 16) is None

    def test_w_log2_o_constraint_enforced(self):
        # A giant budget at w=4 would afford 32 ports, but w=4 < log2(32).
        point = C.design_point(1000, 4)
        assert point is None or point["ports_per_side"] <= 16
