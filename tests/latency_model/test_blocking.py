"""Lee's blocking approximation, analytically and against simulation."""

import pytest

from repro.latency_model import blocking as B


class TestFormulas:
    def test_zero_load_never_blocks(self):
        assert B.path_blocking(0.0, [2, 2, 1]) == 0.0
        assert B.expected_attempts(0.0, [2, 2, 1]) == 1.0

    def test_full_load_always_blocks(self):
        assert B.path_blocking(1.0, [2, 2, 1]) == 1.0
        assert B.expected_attempts(1.0, [2, 2, 1]) == float("inf")

    def test_dilation_reduces_blocking(self):
        u = 0.4
        assert B.stage_blocking(u, 2) < B.stage_blocking(u, 1)
        assert B.path_blocking(u, [2, 2, 2]) < B.path_blocking(u, [1, 1, 1])

    def test_stage_blocking_is_u_to_the_d(self):
        assert B.stage_blocking(0.5, 2) == pytest.approx(0.25)
        assert B.stage_blocking(0.3, 1) == pytest.approx(0.3)

    def test_path_blocking_composes(self):
        u = 0.5
        # dilations [2, 1]: survive = (1 - .25)(1 - .5) = .375.
        assert B.path_blocking(u, [2, 1]) == pytest.approx(0.625)

    def test_monotone_in_utilization(self):
        values = [B.path_blocking(u / 10, [2, 2, 1]) for u in range(11)]
        assert values == sorted(values)

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            B.stage_blocking(1.5, 2)
        with pytest.raises(ValueError):
            B.wire_utilization(0.5, 0)


class TestAgainstSimulation:
    """Lee's formula must track the simulator at light-to-moderate load."""

    @pytest.fixture(scope="class")
    def measured(self):
        from repro.harness.load_sweep import figure3_network, run_load_point

        return [
            run_load_point(rate, seed=6, warmup_cycles=500, measure_cycles=2500)
            for rate in (0.01, 0.04)
        ]

    def test_predicted_attempts_in_the_right_regime(self, measured):
        from repro.network.topology import figure3_plan

        plan = figure3_plan()
        for result in measured:
            _u, _p, predicted = B.predict_from_result(result, plan)
            ratio = result.mean_attempts / predicted
            # Within 2.5x at these loads: Lee's independence assumption
            # is crude, but the scale and trend must be right.
            assert 1 / 2.5 < ratio < 2.5, (result.label, predicted, result.mean_attempts)

    def test_prediction_tracks_load_direction(self, measured):
        from repro.network.topology import figure3_plan

        plan = figure3_plan()
        light, heavy = measured
        _ul, p_light, _ = B.predict_from_result(light, plan)
        _uh, p_heavy, _ = B.predict_from_result(heavy, plan)
        assert p_heavy > p_light
        assert heavy.mean_attempts > light.mean_attempts
