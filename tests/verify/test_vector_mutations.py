"""Backend-layer seeded mutations are caught by *both* provers.

Each ``VEC_*`` mutation plants a subtle bug in the vector backend's
fast path — the kind of off-by-one or stale-cache slip a structure-of-
arrays rewrite invites:

``vector-roll-off-by-one``
    The SoA head-kind mirror rolls one column short, so the arrays
    disagree with the wires by one slot.
``vector-drop-status-kind``
    STATUS words are mirrored as empty slots, losing the reply-leading
    kind bit from the decision layer.
``vector-stale-ownership``
    The cached backward-port ownership mask is not rebuilt after
    wiring changes, so BCB fast-reclamation pulses land on ports the
    gate no longer watches.
``vector-skip-wake``
    Parked components are not woken on word arrival.

For every one of them this module asserts that

* :func:`repro.verify.backend_diff.diff_point` reports a byte-level
  divergence from the reference backend on a known-sensitive seeded
  workload, and
* the protocol :class:`~repro.verify.oracle.Oracle` records a
  violation — a concrete rule, not merely a failed run.

That is the point of the exercise: the equivalence prover must be
demonstrably sensitive to single-site bugs in the array layer, not
just green on correct code.  The clean-control tests pin the other
half of the claim — with no mutation seeded, the identical workloads
are silent.

Where each mutation shows up differs, and deliberately so:

* The first two and the wake skip stall or corrupt traffic directly,
  so a random scenario under the oracle fails to drain and
  :meth:`Oracle.check_quiescent` inventories the stuck FSMs
  (``quiescence-leak``).
* The stale ownership mask is the subtle one: a missed BCB pulse is
  self-healing (the source's reply timeout tears the circuit down the
  slow way), so drained-network checks see nothing.  It is caught in
  the act by the ``bcb-ignored`` rule — the oracle observes the
  pre-advance pulse and the untouched owner — on the open-ended
  traffic workload where fast reclamation actually fires.
"""

import pytest

from repro.core import mutation
from repro.endpoint.messages import Message
from repro.verify import attach_oracle
from repro.verify.backend_diff import _build_traffic, diff_point
from repro.verify.oracle import RULE_BCB_IGNORED, RULE_LEAK
from repro.verify.scenario import random_scenario

TRAFFIC_CYCLES = 2400


def _scenario_oracle_run(seed=0, max_cycles=8000):
    """A random scenario on the vector backend, oracle attached.

    Mirrors :meth:`Scenario.run` but checks quiescence
    unconditionally: on a run that failed to drain, the leak
    inventory is exactly what the oracle should report.
    """
    scenario = random_scenario(seed=seed, n_messages=3)
    network = scenario.build(backend="vector", verify_stage_checksums=True)
    oracle = attach_oracle(network)
    for message in scenario.messages:
        network.send(
            message["src"],
            Message(dest=message["dest"], payload=list(message["payload"])),
        )
    network.run_until_quiet(max_cycles=max_cycles)
    oracle.check_quiescent(network.engine.cycle)
    return oracle


def _traffic_oracle_run(seed=0):
    """The backend-diff traffic workload on the vector backend, oracle
    attached, driven across the same run boundaries as the differ."""
    network, _telemetry, _ = _build_traffic(
        seed, "vector", TRAFFIC_CYCLES, False
    )
    oracle = attach_oracle(network)
    remaining = TRAFFIC_CYCLES
    while remaining > 0:
        span = min(remaining, max(1, TRAFFIC_CYCLES // 3))
        network.run(span)
        remaining -= span
    return oracle


#: (mutation, diff family, seed) — a seeded workload on which the
#: backend differ observably diverges under that mutation.
DIFF_CASES = [
    (mutation.VEC_ROLL_OFF_BY_ONE, "scenario", 1),
    (mutation.VEC_DROP_STATUS_KIND, "scenario", 0),
    (mutation.VEC_STALE_OWNERSHIP, "traffic", 0),
    (mutation.VEC_SKIP_WAKE, "scenario", 0),
]

#: (mutation, oracle harness, expected rule).
ORACLE_CASES = [
    (mutation.VEC_ROLL_OFF_BY_ONE, _scenario_oracle_run, RULE_LEAK),
    (mutation.VEC_DROP_STATUS_KIND, _scenario_oracle_run, RULE_LEAK),
    (mutation.VEC_STALE_OWNERSHIP, _traffic_oracle_run, RULE_BCB_IGNORED),
    (mutation.VEC_SKIP_WAKE, _scenario_oracle_run, RULE_LEAK),
]


def test_every_backend_mutation_is_covered():
    assert {name for name, _, _ in DIFF_CASES} == set(
        mutation.BACKEND_MUTATIONS
    )
    assert {name for name, _, _ in ORACLE_CASES} == set(
        mutation.BACKEND_MUTATIONS
    )


def test_backend_mutations_are_registered_but_separate():
    # The backend layer's mutations are known to the seeding machinery
    # but must not bleed into ALL_MUTATIONS: the reference-protocol
    # coverage test enumerates that set exactly.
    assert mutation.BACKEND_MUTATIONS <= mutation.KNOWN_MUTATIONS
    assert not (mutation.BACKEND_MUTATIONS & mutation.ALL_MUTATIONS)
    with pytest.raises(ValueError):
        with mutation.seeded("vector-no-such-mutation"):
            pass


@pytest.mark.parametrize("name,kind,seed", DIFF_CASES,
                         ids=[c[0] for c in DIFF_CASES])
def test_backend_diff_catches_mutation(name, kind, seed):
    with mutation.seeded(name):
        result = diff_point(kind, seed, backend="vector")
    assert not result.ok, (
        "backend_diff missed mutation {!r} on {}:{}".format(name, kind, seed)
    )
    assert result.mismatches


@pytest.mark.parametrize("name,run,expected_rule", ORACLE_CASES,
                         ids=[c[0] for c in ORACLE_CASES])
def test_oracle_catches_mutation(name, run, expected_rule):
    with mutation.seeded(name):
        oracle = run()
    assert not oracle.ok, "oracle missed mutation {!r}".format(name)
    assert expected_rule in oracle.violation_rules(), (
        name, oracle.violation_rules())


def test_diff_points_clean_without_mutation():
    for kind, seed in {(kind, seed) for _, kind, seed in DIFF_CASES}:
        result = diff_point(kind, seed, backend="vector")
        assert result.ok, (kind, seed, result.mismatches)


def test_oracle_workloads_clean_without_mutation():
    for run in (_scenario_oracle_run, _traffic_oracle_run):
        oracle = run()
        oracle.assert_clean()
