"""Mutation smoke test: the oracle catches deliberately broken routers.

Each case enables one protocol bug behind the test-only hooks in
:mod:`repro.core.mutation`, replays a workload that exercises the
broken path, and asserts the conformance oracle flags it with the
expected rule.  Together with test_oracle.py (zero violations when the
hooks are off) this bounds the oracle from both sides: it is silent on
correct routers and loud on each known way to break the protocol.
"""

import pytest

from repro.core import mutation
from repro.endpoint.messages import Message
from repro.network.builder import build_network
from repro.network.topology import figure1_plan
from repro.verify import attach_oracle


def _uniform_run(max_cycles=6000):
    """Unloaded all-to-all traffic: exercises routing, TURN, STATUS."""
    network = build_network(figure1_plan(), seed=3)
    oracle = attach_oracle(network)
    for src in range(12):
        network.send(src, Message(dest=(src + 7) % 16, payload=[src % 16] * 6))
    network.run_until_quiet(max_cycles=max_cycles)
    return oracle


def _converging_run(max_cycles=6000):
    """Everyone to endpoint 15 with fast reclaim: heavy blocking, so
    DROPs, drains and the backward-channel-busy path all fire."""
    network = build_network(figure1_plan(), seed=3, fast_reclaim=True)
    oracle = attach_oracle(network)
    for src in range(15):
        network.send(src, Message(dest=15, payload=[src % 16] * 6))
    network.run_until_quiet(max_cycles=max_cycles)
    return oracle


CASES = [
    (mutation.SKIP_STATUS, _uniform_run, "missing-status"),
    (mutation.CORRUPT_STATUS_CHECKSUM, _uniform_run, "status-checksum-mismatch"),
    (mutation.WRONG_DIRECTION, _uniform_run, "wrong-dilation-group"),
    (mutation.FREE_PORT_EARLY, _converging_run, "ownership"),
    (mutation.LEAK_PORT_ON_DROP, _converging_run, "ownership"),
    (mutation.DOUBLE_ALLOCATE, _converging_run, "ownership"),
    (mutation.SKIP_BCB_RELEASE, _converging_run, "ownership"),
]


def test_every_known_mutation_is_covered():
    assert {name for name, _, _ in CASES} == set(mutation.ALL_MUTATIONS)


@pytest.mark.parametrize("name,run,expected_rule",
                         CASES, ids=[c[0] for c in CASES])
def test_oracle_catches_mutation(name, run, expected_rule):
    with mutation.seeded(name):
        oracle = run()
    assert not oracle.ok, "oracle missed mutation {!r}".format(name)
    assert expected_rule in oracle.violation_rules(), (
        name, oracle.violation_rules())


@pytest.mark.parametrize("run", [_uniform_run, _converging_run],
                         ids=["uniform", "converging"])
def test_workloads_are_clean_without_mutations(run):
    oracle = run(max_cycles=50000)
    oracle.assert_clean()


def test_seeded_restores_previous_state():
    assert mutation.ACTIVE == frozenset()
    with mutation.seeded(mutation.SKIP_STATUS):
        assert mutation.enabled(mutation.SKIP_STATUS)
        assert not mutation.enabled(mutation.DOUBLE_ALLOCATE)
    assert mutation.ACTIVE == frozenset()


def test_seeded_rejects_unknown_names():
    with pytest.raises(ValueError):
        with mutation.seeded("no-such-bug"):
            pass
